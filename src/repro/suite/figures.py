"""Regeneration of the paper's Figures 4-9 as data series.

Plotting libraries are not available offline, so each function returns the
*series a plot would draw* — per-matrix values, scatter points, fitted
lines — as ``(headers, rows, data)`` triples rendered by the benchmark
drivers.  Shape claims (who is above whom, where the fit lands) live in the
numbers, not the pixels.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..metrics.correlation import LinearFit, linear_fit
from .harness import RunRecord
from .tables import HIGH_PARALLELISM_THRESHOLD, LARGE_NNZ_THRESHOLD, index_records

__all__ = [
    "fig4_pgp_vs_pg",
    "fig5_per_matrix_speedups",
    "fig6_performance_metrics",
    "fig7_imbalance_ratio",
    "fig8_speedup_vs_locality",
    "fig9_nre",
]


def fig4_pgp_vs_pg(
    records: Sequence[RunRecord], *, kernel: str = "sptrsv", machine: str = "intel20"
) -> Tuple[List[str], List[list], dict]:
    """Figure 4: PGP (inspector estimate) vs measured PG scatter + R².

    The paper reports R² = 0.83 for SpTRSV over its dataset; the scatter is
    taken across all algorithms' schedules to span the balance spectrum.
    """
    pts = [
        r
        for r in records
        if r.kernel == kernel and r.machine == machine and np.isfinite(r.pgp)
    ]
    headers = ["matrix", "algorithm", "PGP", "measured PG"]
    rows = [[r.matrix, r.algorithm, r.pgp, r.potential_gain] for r in pts]
    x = np.array([r.pgp for r in pts])
    y = np.array([r.potential_gain for r in pts])
    fit: LinearFit | None = None
    if x.shape[0] >= 2 and float(x.std()) > 0:
        fit = linear_fit(x, y)
    data = {
        "points": [(r.matrix, r.algorithm, r.pgp, r.potential_gain) for r in pts],
        "r_squared": fit.r_squared if fit else float("nan"),
        "slope": fit.slope if fit else float("nan"),
        "intercept": fit.intercept if fit else float("nan"),
    }
    return headers, rows, data


def fig5_per_matrix_speedups(
    records: Sequence[RunRecord], *, machine: str = "intel20"
) -> Dict[str, Tuple[List[str], List[list], dict]]:
    """Figure 5: per-matrix speedup of HDagg vs each algorithm, per kernel."""
    out: Dict[str, Tuple[List[str], List[list], dict]] = {}
    idx = index_records(records)
    kernels = sorted({r.kernel for r in records if r.machine == machine})
    for kernel in kernels:
        recs = [r for r in records if r.kernel == kernel and r.machine == machine]
        baselines = sorted({r.algorithm for r in recs if r.algorithm != "hdagg"})
        matrices = sorted({r.matrix for r in recs})
        headers = ["matrix"] + [f"vs {b}" for b in baselines]
        rows = []
        data: dict = {}
        for mtx in matrices:
            h = idx.get((mtx, kernel, "hdagg", machine))
            if h is None:
                continue
            row: list = [mtx]
            for b in baselines:
                r = idx.get((mtx, kernel, b, machine))
                ratio = h.speedup / r.speedup if r and r.speedup > 0 else float("nan")
                row.append(ratio)
                data.setdefault(b, {})[mtx] = ratio
            rows.append(row)
        out[kernel] = (headers, rows, data)
    return out


def fig6_performance_metrics(
    records: Sequence[RunRecord], *, kernel: str = "spilu0", machine: str = "intel20"
) -> Tuple[List[str], List[list], dict]:
    """Figure 6: per-matrix locality / potential gain / sync per algorithm."""
    recs = [r for r in records if r.kernel == kernel and r.machine == machine]
    headers = ["matrix", "algorithm", "avg mem latency", "potential gain", "equiv p2p syncs"]
    rows = [
        [r.matrix, r.algorithm, r.avg_memory_access_latency, r.potential_gain, r.equivalent_syncs]
        for r in sorted(recs, key=lambda r: (r.matrix, r.algorithm))
    ]
    data = {
        (r.matrix, r.algorithm): {
            "latency": r.avg_memory_access_latency,
            "pg": r.potential_gain,
            "syncs": r.equivalent_syncs,
        }
        for r in recs
    }
    return headers, rows, data


def fig7_imbalance_ratio(
    records: Sequence[RunRecord], *, kernel: str = "spilu0", machine: str = "intel20"
) -> Tuple[List[str], List[list], dict]:
    """Figure 7: per-matrix load-imbalance ratio per algorithm (lower better)."""
    recs = [r for r in records if r.kernel == kernel and r.machine == machine]
    algos = sorted({r.algorithm for r in recs})
    matrices = sorted({r.matrix for r in recs})
    idx = index_records(recs)
    headers = ["matrix"] + algos
    rows = []
    data: dict = {}
    for mtx in matrices:
        row: list = [mtx]
        for a in algos:
            r = idx.get((mtx, kernel, a, machine))
            val = r.imbalance_ratio if r else float("nan")
            row.append(val)
            data.setdefault(a, {})[mtx] = val
        rows.append(row)
    return headers, rows, data


def fig8_speedup_vs_locality(
    records: Sequence[RunRecord], *, kernel: str = "spilu0", machine: str = "intel20"
) -> Tuple[List[str], List[list], dict]:
    """Figure 8: HDagg-vs-SpMP/Wavefront speedup against locality improvement.

    Restricted (as in the paper) to the first two Table III categories —
    large matrices and small high-parallelism matrices — where locality is
    the differentiator; R² was 0.95 on the paper's testbed.
    """
    recs = [r for r in records if r.kernel == kernel and r.machine == machine]
    idx = index_records(recs)
    eps = 1e-9
    headers = ["matrix", "locality improvement", "speedup vs SpMP/Wavefront"]
    rows = []
    for r in recs:
        if r.algorithm != "hdagg":
            continue
        in_cat12 = r.nnz > LARGE_NNZ_THRESHOLD or r.average_parallelism > HIGH_PARALLELISM_THRESHOLD
        if not in_cat12:
            continue
        comp = [idx.get((r.matrix, kernel, a, machine)) for a in ("spmp", "wavefront")]
        comp = [c for c in comp if c is not None]
        if not comp:
            continue
        best = max(comp, key=lambda c: c.speedup)
        loc = (best.avg_memory_access_latency + eps) / (r.avg_memory_access_latency + eps)
        spd = r.speedup / best.speedup
        rows.append([r.matrix, loc, spd])
    x = np.array([row[1] for row in rows])
    y = np.array([row[2] for row in rows])
    fit = linear_fit(x, y) if x.shape[0] >= 2 and float(x.std()) > 0 else None
    data = {
        "points": [(row[0], row[1], row[2]) for row in rows],
        "r_squared": fit.r_squared if fit else float("nan"),
        "slope": fit.slope if fit else float("nan"),
    }
    return headers, rows, data


def fig9_nre(
    records: Sequence[RunRecord], *, machine: str = "intel20"
) -> Tuple[List[str], List[list], dict]:
    """Figure 9: inspector amortisation (NRE) per matrix for SpTRSV, plus
    per-kernel averages (the paper reports SpIC0/SpILU0 as averages)."""
    algos = ("lbc", "wavefront", "spmp", "hdagg")
    recs = [r for r in records if r.machine == machine]
    idx = index_records(recs)
    matrices = sorted({r.matrix for r in recs if r.kernel == "sptrsv"})
    headers = ["matrix"] + [f"NRE {a}" for a in algos]
    rows = []
    for mtx in matrices:
        row: list = [mtx]
        for a in algos:
            r = idx.get((mtx, "sptrsv", a, machine))
            row.append(r.nre if r else float("nan"))
        rows.append(row)
    data: dict = {"sptrsv": {}}
    for a in algos + ("dagp",):
        vals = [r.nre for r in recs if r.kernel == "sptrsv" and r.algorithm == a and np.isfinite(r.nre)]
        data["sptrsv"][a] = float(np.mean(vals)) if vals else float("nan")
    for kernel in ("spic0", "spilu0"):
        vals = [
            r.nre
            for r in recs
            if r.kernel == kernel and r.algorithm == "hdagg" and np.isfinite(r.nre)
        ]
        data[kernel] = {"hdagg": float(np.mean(vals)) if vals else float("nan")}
    return headers, rows, data
