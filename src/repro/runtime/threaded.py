"""Threaded executor: real concurrent schedule execution.

The paper's executor is OpenMP; this is the closest Python equivalent — one
worker thread per core, each executing its width-partitions in level order
with a :class:`threading.Barrier` between coarsened wavefronts (barrier
sync) or per-vertex completion flags (p2p sync).  CPython's GIL serialises
the numeric work, so this executor demonstrates *correctness under true
concurrency* (no dependence ordering is enforced by the interpreter — only
by the schedule and its synchronisation), not speedup; the performance
claims live in :mod:`repro.runtime.simulator`.

The p2p path spins on a shared ``done`` flag array exactly like SpMP's
point-to-point synchronisation; the barrier path mirrors the wavefront /
HDagg executors.  Any kernel-level dependence violation would surface as a
read of a not-yet-written value and fail the numeric comparison in tests;
additionally each vertex's dependences are checked against the flags.

Failures carry context: :class:`ThreadedExecutionError` names the core and
vertex (and, for dependence problems, the unmet dependence) so a refuted
run is debuggable without re-execution.  A p2p spin that stops making
global progress raises a *deadlock* error naming the stuck (core, vertex,
dependence) triple instead of hanging the process.

Passing ``trace=`` (any object with a ``record(kind, core, arg)`` method,
canonically :class:`repro.analysis.tracecheck.TraceRecorder`) records the
happens-before event log — ``exec`` before the completion flag is
published, ``acquire`` after a p2p spin observes a flag, ``barrier`` after
each wavefront barrier — which
:func:`repro.analysis.tracecheck.check_trace` replays through vector
clocks to certify the ordering of the run itself.

Passing ``timeline=`` (a
:class:`repro.observability.TimelineRecorder`) collects the per-core
wall-clock timeline instead: ``busy`` per vertex, ``barrier_wait`` at each
level barrier, and ``p2p_wait`` carrying the ``(vertex, dependence)`` pair
a spin was blocked on — point-to-point wait attribution.  When the ambient
observability state is enabled (``hdagg-bench trace``), workers also emit
``execute/wavefront[k]`` / ``execute/partition[k,core]`` spans.  Both are
strictly opt-in; the dormant cost is one ``None``/attribute check per
guarded site.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.schedule import Schedule
from ..graph.dag import DAG
from ..observability.state import STATE as _OBS_STATE
from ..observability.timeline import TimelineRecorder
from ..resilience.faults import fault_point
from .simulator import bind_dynamic_partitions

__all__ = ["run_threaded", "ThreadedExecutionError"]

#: p2p spins between global-progress probes (keeps ``done.sum()`` off the
#: hot path while bounding deadlock-detection latency).
_PROBE_INTERVAL = 256

#: shared reusable no-op context manager for the disabled-tracer path
_NULL_CM = nullcontext()


class ThreadedExecutionError(RuntimeError):
    """A worker observed a dependence violation, deadlock, or peer failure.

    Attributes ``core``, ``vertex``, and ``dependence`` locate the failure
    (``None``/``-1`` where not applicable) so callers — the trace checker,
    CI harnesses — can report without parsing the message.
    """

    def __init__(
        self,
        message: str,
        *,
        core: Optional[int] = None,
        vertex: Optional[int] = None,
        dependence: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.core = core
        self.vertex = vertex
        self.dependence = dependence


def run_threaded(
    schedule: Schedule,
    g: DAG,
    process_vertex: Callable[[int], None],
    *,
    cost: np.ndarray | None = None,
    spin_yield: bool = True,
    deadlock_timeout: float = 30.0,
    trace=None,
    timeline: Optional[TimelineRecorder] = None,
) -> None:
    """Execute ``process_vertex(v)`` for every vertex under the schedule.

    ``process_vertex`` must be thread-compatible in the way kernel row
    updates are: writes touch only vertex-owned state, reads touch state
    owned by dependences.  Dynamic (core = -1) partitions are bound first
    (requires ``cost``; unit costs assumed otherwise).

    Raises :class:`ThreadedExecutionError` — carrying the (core, vertex,
    dependence) context — if any worker observes an unsatisfied dependence,
    a p2p spin makes no global progress for ``deadlock_timeout`` seconds
    (an invalid p2p schedule would otherwise hang forever), or a worker
    raises.
    """
    if cost is None:
        cost = np.ones(schedule.n, dtype=np.float64)
    schedule = bind_dynamic_partitions(schedule, cost)
    p = max((part.core for _, part in schedule.iter_partitions()), default=0) + 1
    p = max(p, 1)

    done = np.zeros(schedule.n, dtype=bool)
    #: (core, vertex, exception) triples collected from failed workers
    errors: List[Tuple[int, int, BaseException]] = []
    errors_lock = threading.Lock()
    barrier = threading.Barrier(p)
    in_ptr, in_idx = g.in_ptr, g.in_idx
    use_barrier = schedule.sync == "barrier"

    # per-core, per-level partition lists
    plan: List[List[List[np.ndarray]]] = [
        [[] for _ in range(p)] for _ in schedule.levels
    ]
    for k, level in enumerate(schedule.levels):
        for part in level:
            plan[k][part.core % p].append(part.vertices)

    def wait_for(v: int, core: int) -> None:
        deps = in_idx[in_ptr[v] : in_ptr[v + 1]]
        for u in deps:
            if use_barrier:
                # with barrier sync, deps must already be done — anything
                # else is a schedule bug, not a timing matter
                if not done[u]:
                    raise ThreadedExecutionError(
                        f"core {core}: vertex {v} scheduled before dependence {int(u)}",
                        core=core,
                        vertex=v,
                        dependence=int(u),
                    )
            else:
                # p2p wait attribution: only an actual stall (flag not yet
                # published) opens a segment — satisfied deps cost nothing
                wait_t0 = (
                    timeline.clock() if timeline is not None and not done[u] else None
                )
                spins = 0
                stall_t0 = time.monotonic()
                stall_done = -1
                while not done[u]:  # SpMP-style spin on the flag
                    if errors:
                        raise ThreadedExecutionError(
                            f"core {core}: aborting vertex {v}, a peer worker failed",
                            core=core,
                            vertex=v,
                        )
                    spins += 1
                    if spins % _PROBE_INTERVAL == 0:
                        finished = int(done.sum())
                        now = time.monotonic()
                        if finished != stall_done:
                            stall_done, stall_t0 = finished, now
                        elif now - stall_t0 > deadlock_timeout:
                            raise ThreadedExecutionError(
                                f"deadlock: core {core} spent {deadlock_timeout:.1f}s "
                                f"waiting on dependence {int(u)} of vertex {v} "
                                f"({finished}/{schedule.n} vertices done)",
                                core=core,
                                vertex=v,
                                dependence=int(u),
                            )
                    if spin_yield:
                        threading.Event().wait(0)  # yield
                if wait_t0 is not None:
                    timeline.record(
                        core, "p2p_wait", wait_t0, timeline.clock(),
                        vertex=v, dependence=int(u),
                    )
                if trace is not None:
                    trace.record("acquire", core, int(u))

    def worker(core: int) -> None:
        current = -1
        tracer = _OBS_STATE.tracer if _OBS_STATE.enabled else None
        try:
            for k in range(len(plan)):
                wf_cm = (
                    tracer.span(f"execute/wavefront[{k}]", level=k, sync=schedule.sync)
                    if tracer is not None and core == 0
                    else _NULL_CM
                )
                with wf_cm:
                    for vertices in plan[k][core]:
                        part_cm = (
                            tracer.span(
                                f"execute/partition[{k},{core}]",
                                level=k, core=core,
                                n_vertices=int(vertices.shape[0]),
                            )
                            if tracer is not None
                            else _NULL_CM
                        )
                        with part_cm:
                            for v in vertices.tolist():
                                current = v
                                # chaos hooks: a targeted core can be stalled
                                # (the peers' p2p deadlock detector must then
                                # fire with the stuck triple) or crashed
                                fault_point("executor.stall", label=str(core))
                                fault_point("executor.worker", label=str(core))
                                wait_for(v, core)
                                busy_t0 = (
                                    timeline.clock() if timeline is not None else None
                                )
                                process_vertex(v)
                                if busy_t0 is not None:
                                    timeline.record(
                                        core, "busy", busy_t0, timeline.clock(),
                                        vertex=v, level=k,
                                    )
                                if trace is not None:
                                    # exec is recorded before the flag is
                                    # published so any observed flag implies a
                                    # logged exec event
                                    trace.record("exec", core, v)
                                done[v] = True
                if use_barrier:
                    barrier_t0 = timeline.clock() if timeline is not None else None
                    barrier.wait()
                    if barrier_t0 is not None:
                        timeline.record(
                            core, "barrier_wait", barrier_t0, timeline.clock(),
                            level=k,
                        )
                    if trace is not None:
                        trace.record("barrier", core, k)
        except BaseException as exc:  # propagate to the caller
            with errors_lock:
                errors.append((core, current, exc))
            if use_barrier:
                barrier.abort()

    threads = [threading.Thread(target=worker, args=(c,)) for c in range(p)]
    if timeline is not None:
        timeline.open(p)
        timeline.wall_t0 = timeline.clock()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if timeline is not None:
        timeline.wall_t1 = timeline.clock()
    if errors:
        core, vertex, first = errors[0]
        if isinstance(first, threading.BrokenBarrierError):
            core, vertex, first = next(
                (
                    (c, v, e)
                    for c, v, e in errors
                    if not isinstance(e, threading.BrokenBarrierError)
                ),
                errors[0],
            )
        if isinstance(first, ThreadedExecutionError):
            raise first
        raise ThreadedExecutionError(
            f"core {core} failed at vertex {vertex}: {first}",
            core=core,
            vertex=vertex,
        ) from first
    if not bool(done.all()):
        missing = np.nonzero(~done)[0][:5].tolist()
        raise ThreadedExecutionError(f"vertices never executed: {missing}")
