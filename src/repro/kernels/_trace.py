"""Shared memory-trace construction for factorisation kernels.

Both SpIC0 and SpILU0 have the access shape "iteration ``i`` streams its own
row, then the previously-factored row ``k`` for every stored entry
``(i, k)`` with ``k < i``".  This module builds that ragged trace fully
vectorized (the construction itself is O(total trace length) NumPy work).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..sparse.csr import CSRMatrix, INDEX_DTYPE
from .base import lines_of_rows

__all__ = ["trace_self_plus_lower_neighbors"]


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """For parallel (starts, counts): flat positions and per-position offsets.

    Returns ``(base, within)`` so that ``base + within`` enumerates
    ``starts[k] .. starts[k] + counts[k] - 1`` for every ``k`` in order.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=INDEX_DTYPE), np.empty(0, dtype=INDEX_DTYPE)
    cum = np.cumsum(counts)
    within = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(cum - counts, counts)
    return np.repeat(starts, counts), within


def trace_self_plus_lower_neighbors(
    a: CSRMatrix, *, line_elems: int = 8
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-iteration cache-line trace for up-looking factorisations.

    ``a`` supplies both the row storage (own-row lines) and the dependence
    pattern (stored ``(i, k)`` with ``k < i`` pulls in row ``k``'s lines).
    Returns ``(ptr, lines)`` ragged CSR: iteration ``i`` touches
    ``lines[ptr[i]:ptr[i+1]]`` in order (own row first, then neighbours in
    ascending ``k``).
    """
    n = a.n_rows
    per_row_lines, line_base = lines_of_rows(a, line_elems=line_elems)

    row_of = np.repeat(np.arange(n, dtype=INDEX_DTYPE), a.row_nnz())
    below = a.indices < row_of
    edge_row = row_of[below]           # iteration i  (sorted, CSR order)
    edge_k = a.indices[below]          # neighbour row k < i (ascending per i)

    neighbor_lines_per_edge = per_row_lines[edge_k]
    neighbor_total_per_row = np.zeros(n, dtype=INDEX_DTYPE)
    np.add.at(neighbor_total_per_row, edge_row, neighbor_lines_per_edge)

    tot = per_row_lines + neighbor_total_per_row
    ptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    np.cumsum(tot, out=ptr[1:])
    lines = np.empty(int(ptr[-1]), dtype=INDEX_DTYPE)

    # Part A: own-row lines at the start of each iteration's trace.
    baseA, withinA = _expand_ranges(ptr[:-1], per_row_lines)
    lines[baseA + withinA] = (
        np.repeat(line_base[:-1], per_row_lines) + withinA
    )

    # Part B: neighbour rows, packed after part A in edge (CSR) order.
    if edge_row.size:
        excl = np.cumsum(neighbor_lines_per_edge) - neighbor_lines_per_edge
        # rebase the exclusive cumsum to restart at each iteration's first edge
        first_of_row = np.concatenate(([True], np.diff(edge_row) != 0))
        edges_per_row = np.bincount(edge_row, minlength=n)[edge_row[first_of_row]]
        row_base = np.repeat(excl[first_of_row], edges_per_row)
        offset_within_iter = excl - row_base
        edge_start = ptr[edge_row] + per_row_lines[edge_row] + offset_within_iter
        baseB, withinB = _expand_ranges(edge_start, neighbor_lines_per_edge)
        valB_base, valB_within = _expand_ranges(line_base[edge_k], neighbor_lines_per_edge)
        lines[baseB + withinB] = valB_base + valB_within
    return ptr, lines
