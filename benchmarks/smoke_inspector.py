"""Quick inspector smoke benchmark for CI.

Runs the full HDagg inspector on poisson2d(64) a few times and fails when
the best run exceeds a generous wall-clock budget.  The budget is ~5x the
warm time measured on a developer laptop, so it only trips on genuine
regressions (an accidentally reintroduced quadratic loop), never on CI
jitter.

Usage::

    PYTHONPATH=src python benchmarks/smoke_inspector.py [budget_ms]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.core import hdagg
from repro.graph import dag_from_matrix_lower
from repro.kernels import KERNELS
from repro.sparse import apply_ordering, poisson2d

DEFAULT_BUDGET_MS = 250.0
ROUNDS = 3


def main(budget_ms: float = DEFAULT_BUDGET_MS) -> int:
    a, _ = apply_ordering(poisson2d(64, seed=1), "nd")
    g = dag_from_matrix_lower(a)
    cost = np.asarray(KERNELS["sptrsv"].cost(a), dtype=float)[: g.n]
    hdagg(g, cost, 20)  # warm-up: imports, allocator, BLAS thread spin-up
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        schedule = hdagg(g, cost, 20)
        best = min(best, time.perf_counter() - t0)
    schedule.validate(g)
    best_ms = best * 1e3
    stages = schedule.meta.get("stage_seconds", {})
    detail = ", ".join(f"{k}={v * 1e3:.1f}ms" for k, v in stages.items())
    print(f"poisson2d(64) inspector: best of {ROUNDS} = {best_ms:.1f} ms ({detail})")
    if best_ms > budget_ms:
        print(f"FAIL: exceeds budget of {budget_ms:.0f} ms", file=sys.stderr)
        return 1
    print(f"OK: within budget of {budget_ms:.0f} ms")
    return 0


if __name__ == "__main__":
    try:
        budget = float(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_BUDGET_MS
    except ValueError:
        print(
            f"usage: {sys.argv[0]} [budget_ms]  (budget_ms must be a number, "
            f"got {sys.argv[1]!r})",
            file=sys.stderr,
        )
        raise SystemExit(2)
    raise SystemExit(main(budget))
