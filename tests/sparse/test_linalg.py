"""Tests for the dense reference solvers and conjugate gradient."""

import numpy as np
import pytest

from repro.kernels import SpIC0
from repro.sparse import (
    conjugate_gradient,
    dense_lower_solve,
    dense_upper_solve,
    lower_triangle,
    residual_norm,
    upper_triangle,
)
from repro.kernels.sptrsv import sptrsv_levelwise


def test_dense_lower_solve(rng):
    low = np.tril(rng.random((6, 6))) + 2 * np.eye(6)
    b = rng.random(6)
    x = dense_lower_solve(low, b)
    np.testing.assert_allclose(low @ x, b, rtol=1e-12)


def test_dense_upper_solve(rng):
    up = np.triu(rng.random((6, 6))) + 2 * np.eye(6)
    b = rng.random(6)
    x = dense_upper_solve(up, b)
    np.testing.assert_allclose(up @ x, b, rtol=1e-12)


def test_zero_diagonal_raises():
    low = np.array([[0.0, 0], [1, 1]])
    with pytest.raises(ZeroDivisionError):
        dense_lower_solve(low, np.ones(2))
    with pytest.raises(ZeroDivisionError):
        dense_upper_solve(low.T, np.ones(2))


def test_residual_norm(mesh, rng):
    x = rng.random(mesh.n_rows)
    b = mesh.matvec(x)
    assert residual_norm(mesh, x, b) < 1e-10
    assert residual_norm(mesh, x + 1.0, b) > 0.1


def test_cg_converges(mesh, rng):
    b = rng.random(mesh.n_rows)
    res = conjugate_gradient(mesh, b, tol=1e-10)
    assert res.converged
    assert residual_norm(mesh, res.x, b) < 1e-8 * np.linalg.norm(b)
    assert res.residuals[-1] < res.residuals[0]


def test_preconditioned_cg_converges_faster(mesh, rng):
    b = rng.random(mesh.n_rows)
    plain = conjugate_gradient(mesh, b, tol=1e-10)

    factor = SpIC0().reference(mesh)
    upper = factor.transpose()

    def precond(r):
        y = sptrsv_levelwise(factor, r)
        # back substitution with L^T via the dense path (test-sized input)
        from repro.sparse import dense_upper_solve as dus

        return dus(upper.to_dense(), y)

    pcg = conjugate_gradient(mesh, b, preconditioner=precond, tol=1e-10)
    assert pcg.converged
    assert pcg.iterations < plain.iterations


def test_cg_detects_indefinite():
    from repro.sparse import csr_from_dense

    a = csr_from_dense(np.array([[1.0, 0], [0, -1.0]]))
    res = conjugate_gradient(a, np.array([1.0, 1.0]), max_iter=10)
    assert not res.converged


def test_cg_max_iter():
    from repro.sparse import poisson2d

    a = poisson2d(10, seed=1)
    res = conjugate_gradient(a, np.ones(100), max_iter=1, tol=1e-16)
    assert not res.converged
    assert res.iterations == 1
