"""Lint engine: every L-rule fires on its seeded fixture, the repo is clean,
suppression and baseline plumbing behave, and the CLI exit codes hold.
"""

import dataclasses
import json
from pathlib import Path
from textwrap import dedent

import pytest

from repro.statan import ALL_RULES, run_lint
from repro.statan.cli import lint_main
from repro.statan.engine import suppressed_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


def _write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dedent(text))
    return path


def _rule(rule_id):
    return next(r for r in ALL_RULES if r.id == rule_id)


def _findings(root, rel, rule_id):
    return [d for d in run_lint(root, paths=[rel]) if d.rule == rule_id]


# ----------------------------------------------------------------------
# the repo itself gates clean
# ----------------------------------------------------------------------
def test_repo_lints_clean():
    assert run_lint(REPO_ROOT) == []


# ----------------------------------------------------------------------
# one seeded fixture per AST rule
# ----------------------------------------------------------------------
def test_l001_unregistered_fault_site(tmp_path):
    rel = "src/repro/core/bad_fault.py"
    _write(tmp_path, rel, """\
        from repro.resilience.faults import fault_point


        def trip(site):
            fault_point("totally.unregistered")
            fault_point(site)
    """)
    found = _findings(tmp_path, rel, "L001")
    assert len(found) == 2
    assert "'totally.unregistered' is not registered" in found[0].message
    assert "string literal" in found[1].message
    assert found[0].hint and "FAULT_SITES" in found[0].hint


def test_l001_registered_site_is_clean(tmp_path):
    rel = "src/repro/core/ok_fault.py"
    _write(tmp_path, rel, """\
        from repro.resilience.faults import fault_point


        def trip():
            fault_point("inspector.stage", label="lbp")
    """)
    assert _findings(tmp_path, rel, "L001") == []


def test_l003_unguarded_observability_state(tmp_path):
    rel = "src/repro/core/bad_obs.py"
    _write(tmp_path, rel, """\
        from repro.observability.state import STATE


        def traced(x):
            with STATE.tracer.span("x"):
                return x


        def traced_guarded(x):
            if not STATE.enabled:
                return x
            with STATE.tracer.span("x"):
                return x


        def traced_inline(x):
            if STATE.enabled:
                STATE.registry.counter("calls").inc()
            return x
    """)
    found = _findings(tmp_path, rel, "L003")
    assert len(found) == 1
    assert "STATE.tracer used without an .enabled guard" in found[0].message
    assert found[0].line == 5


def test_l004_float_reduction_over_set(tmp_path):
    rel = "src/repro/core/bad_sum.py"
    _write(tmp_path, rel, """\
        import math


        def total(xs):
            return sum({float(x) for x in xs})


        def total_gen(xs):
            return math.fsum(float(x) for x in set(xs))


        def total_ok(xs):
            return sum(sorted(xs))
    """)
    found = _findings(tmp_path, rel, "L004")
    assert len(found) == 2
    assert "unordered container" in found[0].message


def test_l005_wall_clock_and_unseeded_rng(tmp_path):
    rel = "src/repro/core/bad_rng.py"
    _write(tmp_path, rel, """\
        import time

        import numpy as np


        def stamp():
            return time.time()


        def shuffle(a):
            np.random.shuffle(a)
            return np.random.default_rng()


        def ok():
            t = time.perf_counter()
            return t, np.random.default_rng(0)
    """)
    found = _findings(tmp_path, rel, "L005")
    assert [d.message for d in found] == [
        "time.time() wall clock in inspector code",
        "global numpy RNG call np.random.shuffle()",
        "default_rng() without an explicit seed",
    ]


def test_l007_pass_input_mutation(tmp_path):
    rel = "src/repro/passes/bad_mutate.py"
    _write(tmp_path, rel, """\
        def run(ctx):
            g = ctx["DAG"]
            g.n = 0
            ctx["Cost"][0] = 1.0
            cost = ctx.get("Cost")
            cost[1] += 2.0
            fresh = list(ctx["Cost"])
            fresh[0] = 0.0
            return {"Schedule": g}
    """)
    found = _findings(tmp_path, rel, "L007")
    assert [d.line for d in found] == [3, 4, 6]
    assert all("artifact read from the pass context" in d.message for d in found)


def test_l008_suppression_hygiene(tmp_path):
    rel = "src/repro/core/bad_suppress.py"
    _write(tmp_path, rel, """\
        X = 1  # statan: ignore
        Y = 2  # statan: ignore[L999]
    """)
    found = _findings(tmp_path, rel, "L008")
    assert [d.line for d in found] == [1, 2]
    assert "blanket" in found[0].message
    assert "unknown rule 'L999'" in found[1].message


def test_l009_undeclared_metric_names(tmp_path):
    rel = "src/repro/core/bad_metrics.py"
    _write(tmp_path, rel, """\
        from repro.observability.state import STATE


        def emit(reg, label):
            if STATE.enabled and STATE.registry is not None:
                STATE.registry.counter("totally.undeclared").inc()
            reg.gauge(f"{label}.depth").set(1)
            reg.histogram(f"service.latency.tier.{label}").observe(0.5)
            reg.counter("store.hits").inc()
            reg.counter("perflab.adhoc.seconds").inc()
            reg.counter(label).inc()
    """)
    found = _findings(tmp_path, rel, "L009")
    assert len(found) == 2
    assert "'totally.undeclared' is not declared" in found[0].message
    assert "family prefix" in found[1].message
    assert found[0].hint and "metric_catalog" in found[0].hint


# ----------------------------------------------------------------------
# project rules fire when the live registries drift (simulated)
# ----------------------------------------------------------------------
def test_l002_fires_when_a_backend_tier_is_dropped(monkeypatch):
    from repro.core import backends

    monkeypatch.delitem(backends._LOADERS, ("reduce", "numpy"))
    found = [d for d in _rule("L002").check_project(REPO_ROOT)]
    assert len(found) == 1
    assert "backend stage 'reduce' has no 'numpy' tier" in found[0].message
    assert "register_backend" in found[0].hint


def test_l006_fires_when_runrecord_schema_drifts(monkeypatch):
    import repro.suite.harness as harness_mod

    @dataclasses.dataclass
    class FakeRecord:
        matrix: str
        surprise: int  # new required field: an API break for stored blobs

    monkeypatch.setattr(harness_mod, "RunRecord", FakeRecord)
    found = [d for d in _rule("L006").check_project(REPO_ROOT)]
    messages = "\n".join(d.message for d in found)
    assert "new RunRecord field 'surprise' has no default" in messages
    assert "pinned RunRecord field 'kernel' was removed or defaulted" in messages


def test_runrecord_pin_matches_the_live_dataclass():
    from repro.statan import RUNRECORD_REQUIRED_FIELDS
    from repro.suite.harness import RunRecord

    required = tuple(
        f.name
        for f in dataclasses.fields(RunRecord)
        if f.default is dataclasses.MISSING and f.default_factory is dataclasses.MISSING
    )
    assert required == RUNRECORD_REQUIRED_FIELDS


# ----------------------------------------------------------------------
# suppression and engine plumbing
# ----------------------------------------------------------------------
def test_inline_suppression_silences_exactly_that_rule(tmp_path):
    rel = "src/repro/core/suppressed.py"
    _write(tmp_path, rel, """\
        from repro.resilience.faults import fault_point


        def trip():
            fault_point("nope")  # statan: ignore[L001]
    """)
    assert run_lint(tmp_path, paths=[rel]) == []


def test_suppression_for_a_different_rule_does_not_apply(tmp_path):
    rel = "src/repro/core/missuppressed.py"
    _write(tmp_path, rel, """\
        from repro.resilience.faults import fault_point


        def trip():
            fault_point("nope")  # statan: ignore[L004]
    """)
    rules = {d.rule for d in run_lint(tmp_path, paths=[rel])}
    assert rules == {"L001"}


def test_suppressed_rules_parser():
    assert suppressed_rules("x = 1") is None
    assert suppressed_rules("x = 1  # statan: ignore[L001]") == {"L001"}
    assert suppressed_rules("x = 1  # statan: ignore[L001, L004]") == {"L001", "L004"}
    assert suppressed_rules("x = 1  # statan: ignore[]") == set()


def test_syntax_error_becomes_a_structured_finding(tmp_path):
    rel = "src/repro/core/broken.py"
    _write(tmp_path, rel, "def broken(:\n")
    found = run_lint(tmp_path, paths=[rel])
    assert [d.rule for d in found] == ["E000"]
    assert found[0].path == rel


def test_unknown_rule_ids_raise():
    with pytest.raises(ValueError, match="unknown rule ids"):
        run_lint(REPO_ROOT, rule_ids=["L001", "BOGUS"])


# ----------------------------------------------------------------------
# CLI: exit codes, formats, baseline
# ----------------------------------------------------------------------
def _seed_violation(tmp_path):
    _write(tmp_path, "src/repro/core/bad_sum.py", """\
        def total(xs):
            return sum({float(x) for x in xs})
    """)


def test_cli_is_clean_on_the_repo(capsys):
    assert lint_main(["--root", str(REPO_ROOT), "--strict"]) == 0
    assert "statan: clean" in capsys.readouterr().out


def test_cli_fails_on_a_seeded_fixture(tmp_path, capsys):
    _seed_violation(tmp_path)
    assert lint_main(["--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "L004" in out and "bad_sum.py" in out


def test_cli_rule_subset_and_usage_errors(tmp_path):
    _seed_violation(tmp_path)
    assert lint_main(["--root", str(tmp_path), "--rules", "L004"]) == 1
    assert lint_main(["--root", str(tmp_path), "--rules", "L003"]) == 0
    assert lint_main(["--root", str(tmp_path), "--rules", "BOGUS"]) == 2
    assert lint_main(["--root", str(tmp_path / "does-not-exist")]) == 2


def test_cli_json_format_is_machine_readable(tmp_path, capsys):
    _seed_violation(tmp_path)
    assert lint_main(["--root", str(tmp_path), "--format", "json"]) == 1
    blob = json.loads(capsys.readouterr().out)
    assert blob["errors"] == 1 and blob["warnings"] == 0
    assert [d["rule"] for d in blob["diagnostics"]] == ["L004"]
    assert blob["diagnostics"][0]["path"] == "src/repro/core/bad_sum.py"


def test_cli_baseline_grandfathers_existing_findings(tmp_path, capsys):
    _seed_violation(tmp_path)
    assert lint_main(["--root", str(tmp_path), "--write-baseline"]) == 0
    assert (tmp_path / "statan-baseline.json").exists()
    capsys.readouterr()
    # the recorded finding is suppressed on the next run ...
    assert lint_main(["--root", str(tmp_path)]) == 0
    # ... but a new violation still fails
    _write(tmp_path, "src/repro/core/bad_rng.py", """\
        import time


        def stamp():
            return time.time()
    """)
    assert lint_main(["--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "L005" in out and "L004" not in out


def test_baseline_fingerprints_survive_line_moves(tmp_path):
    _seed_violation(tmp_path)
    assert lint_main(["--root", str(tmp_path), "--write-baseline"]) == 0
    # push the violation down two lines; the fingerprint must still match
    path = tmp_path / "src/repro/core/bad_sum.py"
    path.write_text("# moved\n# moved again\n" + path.read_text())
    assert lint_main(["--root", str(tmp_path)]) == 0
