"""Connected components via a vectorized Shiloach-Vishkin variant.

HDagg's step 2 repeatedly finds the connected components (edges treated as
undirected) of the subgraph induced by a *range of wavefronts* (Algorithm 1,
Line 25).  The paper uses a Shiloach-Vishkin [12] variant; we implement the
classic hook-and-jump scheme with NumPy array operations so each round is a
constant number of vectorized passes over the edge arrays — the same
data-parallel structure as the original PRAM algorithm.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..sparse.csr import INDEX_DTYPE
from .dag import DAG

__all__ = [
    "shiloach_vishkin",
    "connected_components_of_subset",
    "components_as_lists",
]


def shiloach_vishkin(n: int, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Component label of each of ``n`` vertices given undirected edges.

    Labels are the minimum vertex id of the component, so they are
    deterministic and stable across runs.

    Implementation: iterated *hooking* (point the parent of the larger-rooted
    endpoint at the smaller root) followed by full *pointer jumping* until a
    fixed point.  Each round is O(E + V) vectorized work and at least halves
    the depth of the parent forest, giving the familiar O(E log V) total.
    """
    parent = np.arange(n, dtype=INDEX_DTYPE)
    if src.size == 0:
        return parent
    src = np.asarray(src, dtype=INDEX_DTYPE)
    dst = np.asarray(dst, dtype=INDEX_DTYPE)
    while True:
        ps, pd = parent[src], parent[dst]
        lo = np.minimum(ps, pd)
        hi = np.maximum(ps, pd)
        active = lo != hi
        if not np.any(active):
            break
        # Hook: parent[hi] = min over all incident lo.  np.minimum.at gives a
        # deterministic result regardless of edge order.
        np.minimum.at(parent, hi[active], lo[active])
        # Pointer jumping to full compression.
        while True:
            pp = parent[parent]
            if np.array_equal(pp, parent):
                break
            parent = pp
    return parent


def connected_components_of_subset(g: DAG, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Components of the subgraph of ``g`` induced by ``vertices``.

    Returns ``(labels, verts)`` where ``verts`` is ``vertices`` sorted
    ascending and ``labels[k]`` is the component label (a *local* index,
    0-based, ordered by smallest member id) of ``verts[k]``.

    Only edges with both endpoints inside the subset are considered, matching
    ``CC(W[cut:i])`` in Algorithm 1.
    """
    verts = np.sort(np.asarray(vertices, dtype=INDEX_DTYPE))
    m = verts.shape[0]
    if m == 0:
        return np.empty(0, dtype=INDEX_DTYPE), verts
    # local re-indexing: global id -> position in verts
    local = np.full(g.n, -1, dtype=INDEX_DTYPE)
    local[verts] = np.arange(m, dtype=INDEX_DTYPE)
    # gather out-edges of subset vertices
    starts = g.indptr[verts]
    counts = g.indptr[verts + 1] - starts
    total = int(counts.sum())
    if total:
        cum = np.cumsum(counts)
        within = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(cum - counts, counts)
        dst_g = g.indices[np.repeat(starts, counts) + within]
        src_l = np.repeat(np.arange(m, dtype=INDEX_DTYPE), counts)
        dst_l = local[dst_g]
        keep = dst_l >= 0
        src_l, dst_l = src_l[keep], dst_l[keep]
    else:
        src_l = dst_l = np.empty(0, dtype=INDEX_DTYPE)
    roots = shiloach_vishkin(m, src_l, dst_l)
    # densify root labels to 0..k-1 ordered by root (== smallest member id)
    uniq, labels = np.unique(roots, return_inverse=True)
    return labels.astype(INDEX_DTYPE), verts


def components_as_lists(g: DAG, vertices: np.ndarray) -> List[np.ndarray]:
    """Components of the induced subgraph as a list of sorted id arrays.

    Ordered by smallest member id, which keeps downstream bin packing
    deterministic ("smallest ID first" spatial-locality rule, Section IV-C).
    """
    labels, verts = connected_components_of_subset(g, vertices)
    if verts.size == 0:
        return []
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    sorted_verts = verts[order]
    boundaries = np.nonzero(np.diff(sorted_labels))[0] + 1
    return [np.ascontiguousarray(part) for part in np.split(sorted_verts, boundaries)]
