"""Reuse-distance profiling: *why* a schedule has the locality it has.

The simulator reports hit/miss totals; this profiler explains them.  For
every dependence edge it computes, under a given (bound) schedule, the
consumer's distance from the data source — same-core accesses measured in
intervening line accesses, cross-core accesses flagged as coherence
traffic — and folds them into a histogram.  Comparing two schedulers'
histograms shows exactly where HDagg's merged coarsened wavefronts turn
long-distance or cross-core reuse into short-distance reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.schedule import Schedule
from ..graph.dag import DAG
from ..kernels.memory import MemoryModel
from ..runtime.machine import MachineConfig
from ..runtime.simulator import bind_dynamic_partitions

__all__ = ["ReuseProfile", "reuse_profile"]

#: Histogram bucket upper bounds (in line accesses); the last is open.
_BUCKETS = (16, 64, 256, 1024, 4096, 16384)


@dataclass(frozen=True)
class ReuseProfile:
    """Distribution of dependence reuse for one schedule."""

    same_core_hist: Dict[str, float]  # bucket label -> line volume
    cross_core_lines: float
    total_lines: float

    @property
    def cross_core_fraction(self) -> float:
        """Share of dependence traffic that crosses cores (coherence)."""
        if self.total_lines <= 0:
            return 0.0
        return self.cross_core_lines / self.total_lines

    def within(self, capacity: int) -> float:
        """Line volume with same-core reuse distance <= capacity."""
        total = 0.0
        for label, vol in self.same_core_hist.items():
            bound = float("inf") if label.endswith("+") else int(label.split("-")[1])
            if bound <= capacity:
                total += vol
        return total


def _bucket_label(k: int) -> str:
    lo = 0 if k == 0 else _BUCKETS[k - 1] + 1
    if k == len(_BUCKETS):
        return f"{lo}+"
    return f"{lo}-{_BUCKETS[k]}"


def reuse_profile(
    schedule: Schedule,
    g: DAG,
    memory: MemoryModel,
    machine: MachineConfig,
    cost: np.ndarray | None = None,
) -> ReuseProfile:
    """Profile dependence reuse distances under ``schedule`` on ``machine``.

    Uses the simulator's consumer-chaining rule: an edge's distance is
    measured to the producer or to the latest earlier same-core consumer of
    the same data, whichever is nearer — matching what the cache actually
    sees.
    """
    memory.validate(g)
    if cost is None:
        cost = np.ones(g.n, dtype=np.float64)
    schedule = bind_dynamic_partitions(schedule, cost)
    p = machine.n_cores
    core = schedule.core_assignment() % p

    src, dst = g.edge_list()
    acc = memory.stream_lines.astype(np.float64).copy()
    if src.size:
        np.add.at(acc, dst, memory.edge_lines)
    position = np.zeros(g.n, dtype=np.float64)
    for c in np.unique(core):
        chunks = [part.vertices for _, part in schedule.iter_partitions() if part.core % p == c]
        verts = np.concatenate(chunks)
        position[verts] = np.cumsum(acc[verts])

    hist = {_bucket_label(k): 0.0 for k in range(len(_BUCKETS) + 1)}
    cross = 0.0
    total = float(memory.edge_lines.sum()) if src.size else 0.0
    if src.size:
        order = np.lexsort((position[dst], core[dst], src))
        s_o, d_o = src[order], dst[order]
        w_o = memory.edge_lines[order]
        first = np.ones(order.shape[0], dtype=bool)
        first[1:] = (s_o[1:] != s_o[:-1]) | (core[d_o[1:]] != core[d_o[:-1]])
        prev_pos = np.empty(order.shape[0], dtype=np.float64)
        prev_pos[0] = 0.0
        prev_pos[1:] = position[d_o[:-1]]
        same_core_producer = core[s_o] == core[d_o]
        dist = np.where(
            first,
            np.where(same_core_producer, position[d_o] - position[s_o], np.inf),
            position[d_o] - prev_pos,
        )
        cross = float(w_o[np.isinf(dist)].sum())
        finite = ~np.isinf(dist)
        if finite.any():
            idx = np.searchsorted(np.array(_BUCKETS, dtype=np.float64), dist[finite])
            for k in range(len(_BUCKETS) + 1):
                hist[_bucket_label(k)] = float(w_o[finite][idx == k].sum())
    return ReuseProfile(same_core_hist=hist, cross_core_lines=cross, total_lines=total)
