"""``repro.statan``: static analysis for this repo's own invariants.

Two prongs over one diagnostics model:

* :func:`verify_pipeline` — dataflow analysis over declared pass
  contracts (:mod:`repro.passes`): artifact availability, invariant
  propagation, dead artifacts, backend-tier coverage.  Rejects
  ill-formed pipelines with structured diagnostics before anything runs.
* :func:`run_lint` — an AST rule engine (``hdagg-bench lint``) enforcing
  repo disciplines generic linters cannot see: registered fault sites,
  observability guards, bit-identity hygiene, frozen record schemas,
  immutable pass inputs.

Both share :class:`Diagnostic` (rule id, message, location, fix hint),
inline ``statan: ignore[RULE]`` suppression, and a fingerprint baseline.
"""

from .diagnostics import Baseline, Diagnostic, render_json, render_text
from .engine import AstRule, ModuleUnit, ProjectRule, run_lint
from .rules import ALL_RULES, RUNRECORD_REQUIRED_FIELDS
from .verify import assert_valid, verify_pipeline, verify_registered_groups

__all__ = [
    "Diagnostic",
    "Baseline",
    "render_text",
    "render_json",
    "AstRule",
    "ProjectRule",
    "ModuleUnit",
    "run_lint",
    "ALL_RULES",
    "RUNRECORD_REQUIRED_FIELDS",
    "verify_pipeline",
    "verify_registered_groups",
    "assert_valid",
]
