"""Perf-lab benchmark definitions: what `perf run` actually measures.

One *cell* is (matrix, kernel, algorithm, machine); one rep of the
``inspector`` benchmark runs the full inspector-executor pipeline for the
cell and reports:

* ``inspect`` — wall-clock seconds of the scheduler call, with the
  inspector's own :class:`~repro.runtime.perf.StageTimer` sub-stages
  re-exported as ``inspect/<stage>`` (HDagg: transitive_reduction,
  aggregation, coarsen, lbp, expand — other schedulers report no
  sub-stages and the residual ``inspect/other`` covers them);
* ``execute`` — wall-clock seconds of simulating the schedule on the
  cell's machine model (a deterministic, schedule-shaped python workload:
  slower schedule expansion or a fatter schedule shows up here).

The total per rep is ``inspect + execute``.  Stalls injected through the
``inspector.stage`` fault site (``perf run --stall-stage``) land inside
the named stage's timer, which is how the regression gate's stage
attribution is exercised end to end.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .protocol import (
    MeasurementProtocol,
    Observation,
    ObservationKey,
    RepResult,
)

__all__ = ["PERF_SMOKE", "inspector_rep", "run_inspector_benchmarks"]

#: Default `perf run` subset: three small cells from different families
#: (2D mesh, 3D mesh, clique chain) that exercise all inspector stages in
#: a few milliseconds each — small enough for CI, shaped enough to matter.
PERF_SMOKE = ("mesh2d-s", "mesh3d-s", "kite-small")


def inspector_rep(
    cell,
    algorithm: str,
    *,
    epsilon: Optional[float] = None,
) -> Callable[[], RepResult]:
    """One-rep callable for the ``inspector`` benchmark on a built cell.

    ``cell`` is a :class:`~repro.suite.harness.BenchCell`.
    """
    from ..runtime.simulator import simulate
    from ..schedulers import SCHEDULERS

    if algorithm not in SCHEDULERS:
        raise KeyError(f"unknown scheduler {algorithm!r}; available: {sorted(SCHEDULERS)}")
    g = cell.dag
    cost = np.asarray(cell.cost, dtype=np.float64)[: g.n]
    p = cell.machine.n_cores
    kwargs = {}
    if epsilon is not None and algorithm in ("hdagg", "lbc"):
        kwargs["epsilon"] = epsilon

    def rep() -> RepResult:
        t0 = time.perf_counter()
        schedule = SCHEDULERS[algorithm](g, cost, p, **kwargs)
        t_inspect = time.perf_counter() - t0
        stages: Dict[str, float] = {"inspect": t_inspect}
        for name, seconds in schedule.meta.get("stage_seconds", {}).items():
            stages[f"inspect/{name}"] = float(seconds)
        t1 = time.perf_counter()
        simulate(schedule, g, cost, cell.memory, cell.machine)
        t_execute = time.perf_counter() - t1
        stages["execute"] = t_execute
        return t_inspect + t_execute, stages

    return rep


def _record_metrics(obs: Observation) -> None:
    """Mirror an observation into the ambient metrics registry (if on)."""
    from ..observability.state import STATE

    if not STATE.enabled or STATE.registry is None:
        return
    reg = STATE.registry
    reg.histogram(f"perflab.{obs.key.label()}.seconds").observe_many(obs.timings)
    if obs.stats is not None:
        reg.gauge(f"perflab.{obs.key.label()}.median_seconds").set(obs.stats.statistic)


def run_inspector_benchmarks(
    matrices: Sequence[str] = PERF_SMOKE,
    *,
    kernel: str = "sptrsv",
    algorithm: str = "hdagg",
    machine: str = "intel20",
    cores: Optional[int] = None,
    ordering: str = "nd",
    epsilon: Optional[float] = None,
    protocol: Optional[MeasurementProtocol] = None,
    note: str = "",
    progress: Optional[Callable[[Observation], None]] = None,
) -> List[Observation]:
    """Measure the inspector benchmark over a set of matrices.

    The environment fingerprint is collected once and shared by every
    observation of the run (it cannot change mid-process), so all cells of
    one run land on the same history series key.
    """
    from ..suite.harness import build_cell
    from .fingerprint import collect_fingerprint

    proto = protocol if protocol is not None else MeasurementProtocol()
    fingerprint = collect_fingerprint()
    out: List[Observation] = []
    for name in matrices:
        cell = build_cell(name, kernel=kernel, machine=machine,
                          cores=cores, ordering=ordering)
        key = ObservationKey(
            benchmark="inspector",
            matrix=name,
            kernel=kernel,
            algorithm=algorithm,
            machine=cell.machine.name,
        )
        obs = proto.measure(
            key,
            inspector_rep(cell, algorithm, epsilon=epsilon),
            fingerprint=fingerprint,
            note=note,
        )
        _record_metrics(obs)
        out.append(obs)
        if progress is not None:
            progress(obs)
    return out
