"""Tests for the SpTRSV kernel."""

import numpy as np
import pytest

from repro.kernels import KernelError, SpTRSV, check_solvable, sptrsv_levelwise, sptrsv_reference
from repro.sparse import csr_from_dense, dense_lower_solve, lower_triangle


@pytest.fixture
def kernel():
    return SpTRSV()


def lower_of(a):
    return lower_triangle(a)


class TestReference:
    def test_matches_dense_solver(self, mesh, rng, kernel):
        low = lower_of(mesh)
        b = rng.normal(size=mesh.n_rows)
        x = sptrsv_reference(low, b)
        np.testing.assert_allclose(x, dense_lower_solve(low.to_dense(), b), rtol=1e-12)

    def test_identity(self, kernel):
        low = csr_from_dense(np.eye(4) * 2.0)
        np.testing.assert_allclose(sptrsv_reference(low, np.ones(4)), 0.5 * np.ones(4))

    def test_residual_zero(self, mesh, rng, kernel):
        low = lower_of(mesh)
        b = rng.normal(size=mesh.n_rows)
        assert kernel.verify(low, sptrsv_reference(low, b), b) < 1e-12

    def test_b_shape_checked(self, mesh):
        with pytest.raises(ValueError):
            sptrsv_reference(lower_of(mesh), np.ones(3))


class TestValidation:
    def test_upper_entries_rejected(self):
        a = csr_from_dense(np.array([[1.0, 1], [0, 1]]))
        with pytest.raises(KernelError, match="above the diagonal"):
            check_solvable(a)

    def test_missing_diagonal_rejected(self):
        a = csr_from_dense(np.array([[1.0, 0], [1, 0]]))
        with pytest.raises(KernelError, match="diagonal"):
            check_solvable(a)

    def test_zero_diagonal_rejected(self):
        a = csr_from_dense(np.array([[1.0, 0.0], [1.0, 1.0]]))
        bad = a.with_data(np.array([0.0, 1.0, 1.0]))
        with pytest.raises(KernelError, match="zero"):
            check_solvable(bad)

    def test_non_square_rejected(self):
        with pytest.raises(KernelError, match="square"):
            check_solvable(csr_from_dense(np.tril(np.ones((2, 3)))))


class TestLevelwise:
    def test_matches_reference(self, all_small_matrices, rng):
        for name, a in all_small_matrices.items():
            low = lower_of(a)
            b = rng.normal(size=a.n_rows)
            np.testing.assert_allclose(
                sptrsv_levelwise(low, b), sptrsv_reference(low, b), rtol=1e-10, err_msg=name
            )

    def test_accepts_precomputed_waves(self, mesh, rng):
        from repro.graph import compute_wavefronts, dag_from_lower_triangular

        low = lower_of(mesh)
        waves = compute_wavefronts(dag_from_lower_triangular(low))
        b = rng.normal(size=mesh.n_rows)
        np.testing.assert_allclose(
            sptrsv_levelwise(low, b, waves), sptrsv_reference(low, b), rtol=1e-10
        )


class TestExecuteInOrder:
    def test_identity_order(self, mesh, rng, kernel):
        low = lower_of(mesh)
        b = rng.normal(size=mesh.n_rows)
        x = kernel.execute_in_order(low, np.arange(mesh.n_rows), b)
        np.testing.assert_allclose(x, sptrsv_reference(low, b), rtol=1e-12)

    def test_any_topological_order(self, irregular, rng, kernel):
        from repro.graph import topological_order

        low = lower_of(irregular)
        order = topological_order(kernel.dag(low))
        b = rng.normal(size=irregular.n_rows)
        x = kernel.execute_in_order(low, order, b)
        np.testing.assert_allclose(x, sptrsv_reference(low, b), rtol=1e-10)

    def test_violation_raises(self, mesh, kernel):
        low = lower_of(mesh)
        order = np.arange(mesh.n_rows)[::-1].copy()
        with pytest.raises(KernelError, match="dependences"):
            kernel.execute_in_order(low, order)

    def test_non_permutation_rejected(self, mesh, kernel):
        low = lower_of(mesh)
        with pytest.raises(KernelError, match="permutation"):
            kernel.execute_in_order(low, np.zeros(mesh.n_rows, dtype=int))

    def test_default_rhs_is_ones(self, mesh, kernel):
        low = lower_of(mesh)
        x = kernel.execute_in_order(low, np.arange(mesh.n_rows))
        np.testing.assert_allclose(x, sptrsv_reference(low, np.ones(mesh.n_rows)))


class TestInspectorInterface:
    def test_dag_matches_pattern(self, mesh, kernel):
        low = lower_of(mesh)
        g = kernel.dag(low)
        assert g.n_edges == low.nnz - mesh.n_rows  # off-diagonal lower entries

    def test_cost_is_row_nnz(self, mesh, kernel):
        low = lower_of(mesh)
        np.testing.assert_array_equal(kernel.cost(low), low.row_nnz().astype(float))

    def test_memory_trace_shape(self, mesh, kernel):
        low = lower_of(mesh)
        ptr, lines = kernel.memory_trace(low)
        assert ptr.shape[0] == mesh.n_rows + 1
        assert int(ptr[-1]) == lines.shape[0]
        assert lines.min() >= 0

    def test_memory_model(self, mesh, kernel):
        low = lower_of(mesh)
        g = kernel.dag(low)
        m = kernel.memory_model(low, g)
        m.validate(g)
        assert np.all(m.edge_lines == 1.0)  # one x-line per dependence
        assert np.all(m.stream_lines >= 2.0)  # own row + x write
