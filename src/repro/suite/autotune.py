"""Scheduler auto-selection driven by the NRE economics of Section V-B.

An inspector only pays off when its cost is amortised over enough kernel
executions (Equation 2).  A library user typically knows roughly how many
times the kernel will run — MKL exposes exactly this knob as
``expected_calls`` (the paper sets it to 1000).  :func:`choose_scheduler`
makes the same decision explicit: given the DAG, costs, machine, and the
expected execution count, it picks the algorithm with the lowest *total*
modelled time::

    total(algo) = inspector_cycles(algo) + executions * makespan(algo)

Candidates default to the cheap-to-expensive inspector ladder
(serial -> wavefront -> spmp -> hdagg); DAGP-class inspectors only make
sense at execution counts far beyond typical solver runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.schedule import Schedule
from ..graph.dag import DAG
from ..kernels.memory import MemoryModel
from ..metrics.nre import inspector_cost_model
from ..runtime.machine import MachineConfig
from ..runtime.simulator import simulate
from ..schedulers import SCHEDULERS

__all__ = ["SchedulerChoice", "choose_scheduler", "DEFAULT_CANDIDATES"]

#: Default candidate ladder, cheapest inspector first.
DEFAULT_CANDIDATES = ("serial", "wavefront", "spmp", "hdagg")


@dataclass(frozen=True)
class SchedulerChoice:
    """Outcome of :func:`choose_scheduler`."""

    algorithm: str
    schedule: Schedule
    total_cycles: float
    inspector_cycles: float
    makespan_cycles: float
    breakdown: dict  # algorithm -> total cycles

    @property
    def amortised(self) -> bool:
        """True when the chosen inspector beats plain serial execution."""
        return self.algorithm != "serial"


def choose_scheduler(
    g: DAG,
    cost: np.ndarray,
    memory: MemoryModel,
    machine: MachineConfig,
    expected_executions: int,
    *,
    candidates: Sequence[str] = DEFAULT_CANDIDATES,
) -> SchedulerChoice:
    """Pick the scheduler minimising inspector + expected execution time.

    ``expected_executions`` plays the role of MKL's ``expected_calls``.
    Ties break toward the earlier (cheaper-inspector) candidate.
    """
    if expected_executions < 1:
        raise ValueError("expected_executions must be >= 1")
    best: SchedulerChoice | None = None
    breakdown: dict = {}
    for name in candidates:
        builder = SCHEDULERS[name]
        if name == "serial":
            schedule = builder(g, cost)
            sim = simulate(schedule, g, cost, memory, machine.scaled(1))
        else:
            schedule = builder(g, cost, machine.n_cores)
            sim = simulate(schedule, g, cost, memory, machine)
        insp = inspector_cost_model(name, g, schedule)
        total = insp + expected_executions * sim.makespan_cycles
        breakdown[name] = total
        if best is None or total < best.total_cycles:
            best = SchedulerChoice(
                algorithm=name,
                schedule=schedule,
                total_cycles=total,
                inspector_cycles=insp,
                makespan_cycles=sim.makespan_cycles,
                breakdown=breakdown,
            )
    assert best is not None
    # breakdown dict is shared/mutated during the loop; freeze a copy
    object.__setattr__(best, "breakdown", dict(breakdown))
    return best
