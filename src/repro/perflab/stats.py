"""Statistics core: BCa bootstrap CIs, shift verdicts, change points.

Scheduling papers rank algorithms by percent-level runtime deltas, and
wall-clock timings are noisy and heavy-tailed (OS jitter produces a long
right tail).  Three tools turn per-rep timing samples into defensible
claims:

* :func:`bootstrap_ci` — bias-corrected and accelerated (BCa) bootstrap
  confidence interval of a statistic (default: the median, which is robust
  to the right tail) over one sample;
* :func:`shift_verdict` — the regression decision between two samples:
  bootstrap the *relative shift* of medians, combine it with the
  per-sample BCa intervals, and emit a verdict
  (``regressed`` / ``improved`` / ``unchanged`` / ``indeterminate``)
  plus a ``confirmed`` flag that only fires when the shift interval
  clears the noise floor **and** the two per-sample intervals do not
  overlap — the bootstrap-overlap rule;
* :func:`detect_change_point` — rank-based CUSUM change-point detector
  over a longitudinal series of medians, with a seeded permutation test
  for significance (ranks keep heavy tails from dominating the statistic).

Everything is seeded and deterministic: the same samples and seed always
produce the same interval, verdict, and change point — a regression gate
that flickers is worse than no gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BootstrapCI",
    "ShiftVerdict",
    "ChangePoint",
    "bootstrap_ci",
    "shift_verdict",
    "detect_change_point",
    "VERDICTS",
]

#: the closed set of verdicts :func:`shift_verdict` can emit.
VERDICTS = ("regressed", "improved", "unchanged", "indeterminate")

#: default bootstrap resample count — enough for stable 95% intervals on
#: the 5-30 rep samples the measurement protocol produces.
DEFAULT_N_BOOT = 2000


def _ndtr(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF (scipy-free via erf)."""
    try:
        from scipy.special import ndtr

        return np.asarray(ndtr(x))
    except Exception:  # pragma: no cover - scipy is available in the image
        from math import erf

        return np.asarray([0.5 * (1.0 + erf(v / np.sqrt(2.0))) for v in np.atleast_1d(x)])


def _ndtri(p: float) -> float:
    """Standard normal inverse CDF, clamped away from 0/1."""
    p = min(max(p, 1e-9), 1.0 - 1e-9)
    try:
        from scipy.special import ndtri

        return float(ndtri(p))
    except Exception:  # pragma: no cover - scipy is available in the image
        # Acklam's rational approximation is overkill here; a bisection on
        # the CDF is accurate enough for bootstrap alpha adjustment.
        lo, hi = -8.0, 8.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if float(_ndtr(np.asarray(mid))) < p:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


@dataclass(frozen=True)
class BootstrapCI:
    """A statistic with its bootstrap confidence interval."""

    statistic: float
    lo: float
    hi: float
    confidence: float
    n_samples: int
    method: str = "bca"

    @property
    def halfwidth(self) -> float:
        return 0.5 * (self.hi - self.lo)

    @property
    def rel_halfwidth(self) -> float:
        """Halfwidth relative to the statistic (0 when the statistic is 0)."""
        return self.halfwidth / abs(self.statistic) if self.statistic else 0.0

    def overlaps(self, other: "BootstrapCI") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi

    def as_dict(self) -> dict:
        return {
            "statistic": self.statistic,
            "lo": self.lo,
            "hi": self.hi,
            "confidence": self.confidence,
            "n_samples": self.n_samples,
            "method": self.method,
        }


def bootstrap_ci(
    samples: Sequence[float],
    *,
    stat: Callable[[np.ndarray], float] = np.median,
    confidence: float = 0.95,
    n_boot: int = DEFAULT_N_BOOT,
    seed: int = 0,
    method: str = "bca",
) -> BootstrapCI:
    """BCa (or percentile) bootstrap CI of ``stat`` over ``samples``.

    BCa corrects the percentile interval for median bias (``z0``, from the
    share of bootstrap statistics below the observed one) and for skewness
    (acceleration ``a``, from the jackknife) — both matter for small
    heavy-tailed timing samples.  Degenerate inputs collapse gracefully: a
    single sample or an all-identical sample yields a zero-width interval.
    """
    x = np.asarray(list(samples), dtype=np.float64)
    if x.size == 0:
        raise ValueError("bootstrap_ci needs at least one sample")
    theta = float(stat(x))
    if x.size == 1 or np.all(x == x[0]):
        return BootstrapCI(theta, theta, theta, confidence, int(x.size), method)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, x.size, size=(n_boot, x.size))
    if stat is np.median:  # the default — vectorize the resample loop
        boot = np.median(x[idx], axis=1)
    else:
        boot = np.asarray([float(stat(row)) for row in x[idx]])
    alpha = 0.5 * (1.0 - confidence)
    if method == "percentile":
        lo, hi = np.quantile(boot, [alpha, 1.0 - alpha])
        return BootstrapCI(theta, float(lo), float(hi), confidence, int(x.size), method)
    if method != "bca":
        raise ValueError(f"unknown bootstrap method {method!r}")
    # bias correction: the normal quantile of the sub-theta share
    below = float(np.mean(boot < theta))
    z0 = _ndtri(below)
    # acceleration from the jackknife skewness
    jack = np.asarray(
        [float(stat(np.delete(x, i))) for i in range(x.size)], dtype=np.float64
    )
    d = jack.mean() - jack
    denom = float(np.sum(d**2)) ** 1.5
    a = float(np.sum(d**3)) / (6.0 * denom) if denom > 0 else 0.0
    z_lo, z_hi = _ndtri(alpha), _ndtri(1.0 - alpha)

    def adjusted(z: float) -> float:
        num = z0 + z
        return float(_ndtr(np.asarray(z0 + num / max(1.0 - a * num, 1e-9))))

    q_lo, q_hi = adjusted(z_lo), adjusted(z_hi)
    if q_lo > q_hi:  # extreme z0/a can invert the pair; keep it an interval
        q_lo, q_hi = q_hi, q_lo
    lo, hi = np.quantile(boot, [q_lo, q_hi])
    return BootstrapCI(theta, float(lo), float(hi), confidence, int(x.size), method)


@dataclass(frozen=True)
class ShiftVerdict:
    """Outcome of one old-vs-new sample comparison.

    ``rel_shift`` is ``(median(new) - median(old)) / median(old)`` —
    positive means *slower* for timing samples.  ``confirmed`` is True
    only when the shift interval clears ``min_effect`` entirely and the
    two per-sample intervals are disjoint; an unconfirmed ``regressed``
    verdict is a suspicion, not a gate failure.
    """

    verdict: str
    confirmed: bool
    rel_shift: float
    shift_lo: float
    shift_hi: float
    old_ci: Optional[BootstrapCI] = None
    new_ci: Optional[BootstrapCI] = None
    reason: str = ""

    @property
    def cis_overlap(self) -> bool:
        if self.old_ci is None or self.new_ci is None:
            return True
        return self.old_ci.overlaps(self.new_ci)

    def as_dict(self) -> dict:
        out = {
            "verdict": self.verdict,
            "confirmed": self.confirmed,
            "rel_shift": self.rel_shift,
            "shift_lo": self.shift_lo,
            "shift_hi": self.shift_hi,
            "reason": self.reason,
        }
        if self.old_ci is not None:
            out["old_ci"] = self.old_ci.as_dict()
        if self.new_ci is not None:
            out["new_ci"] = self.new_ci.as_dict()
        return out


def shift_verdict(
    old: Sequence[float],
    new: Sequence[float],
    *,
    min_effect: float = 0.05,
    confidence: float = 0.95,
    n_boot: int = DEFAULT_N_BOOT,
    seed: int = 0,
) -> ShiftVerdict:
    """Classify the move from ``old`` to ``new`` timing samples.

    The decision statistic is the relative shift of medians; its interval
    comes from bootstrapping both samples independently.  Verdicts:

    * ``indeterminate`` — either side has fewer than 2 samples, or the old
      median is non-positive (a ratio against it is meaningless);
    * ``unchanged`` — the shift interval straddles zero;
    * ``regressed`` / ``improved`` — the interval is strictly one-sided;
      ``confirmed`` additionally requires ``|shift|`` past ``min_effect``
      with the whole interval beyond it, and disjoint per-sample CIs.
    """
    old_arr = np.asarray(list(old), dtype=np.float64)
    new_arr = np.asarray(list(new), dtype=np.float64)
    if old_arr.size < 2 or new_arr.size < 2:
        return ShiftVerdict(
            "indeterminate", False, float("nan"), float("nan"), float("nan"),
            reason=f"too few samples (old={old_arr.size}, new={new_arr.size})",
        )
    old_med = float(np.median(old_arr))
    new_med = float(np.median(new_arr))
    if not np.isfinite(old_med) or old_med <= 0:
        return ShiftVerdict(
            "indeterminate", False, float("nan"), float("nan"), float("nan"),
            reason=f"non-positive old median ({old_med!r})",
        )
    rng = np.random.default_rng(seed)
    o_idx = rng.integers(0, old_arr.size, size=(n_boot, old_arr.size))
    n_idx = rng.integers(0, new_arr.size, size=(n_boot, new_arr.size))
    o_boot = np.median(old_arr[o_idx], axis=1)
    n_boot_meds = np.median(new_arr[n_idx], axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        shifts = (n_boot_meds - o_boot) / o_boot
    shifts = shifts[np.isfinite(shifts)]
    if shifts.size == 0:
        return ShiftVerdict(
            "indeterminate", False, float("nan"), float("nan"), float("nan"),
            reason="degenerate bootstrap (all old medians zero)",
        )
    alpha = 0.5 * (1.0 - confidence)
    lo, hi = (float(q) for q in np.quantile(shifts, [alpha, 1.0 - alpha]))
    rel = (new_med - old_med) / old_med
    old_ci = bootstrap_ci(old_arr, confidence=confidence, n_boot=n_boot, seed=seed)
    new_ci = bootstrap_ci(new_arr, confidence=confidence, n_boot=n_boot, seed=seed + 1)
    if lo <= 0.0 <= hi:
        return ShiftVerdict("unchanged", False, rel, lo, hi, old_ci, new_ci)
    direction = "regressed" if rel > 0 else "improved"
    cleared = (lo > min_effect) if direction == "regressed" else (hi < -min_effect)
    confirmed = bool(cleared and not old_ci.overlaps(new_ci))
    reason = ""
    if not confirmed:
        if not cleared:
            reason = f"shift interval within the {min_effect:.0%} noise floor"
        else:
            reason = "per-sample intervals overlap"
    return ShiftVerdict(direction, confirmed, rel, lo, hi, old_ci, new_ci, reason)


@dataclass(frozen=True)
class ChangePoint:
    """A detected distribution shift inside a longitudinal series.

    ``index`` is the first observation of the *new* regime (the series
    split is ``series[:index]`` vs ``series[index:]``); ``p_value`` comes
    from the seeded permutation test.
    """

    index: int
    statistic: float
    p_value: float
    before_median: float
    after_median: float

    @property
    def rel_shift(self) -> float:
        if self.before_median == 0:
            return float("nan")
        return (self.after_median - self.before_median) / self.before_median

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "statistic": self.statistic,
            "p_value": self.p_value,
            "before_median": self.before_median,
            "after_median": self.after_median,
            "rel_shift": self.rel_shift,
        }


def _rank_cusum(ranks: np.ndarray, min_segment: int) -> Tuple[int, float]:
    """Best split index and its standardized rank-CUSUM statistic."""
    n = ranks.size
    total = ranks.sum()
    best_k, best_stat = -1, -1.0
    cum = np.cumsum(ranks)
    for k in range(min_segment, n - min_segment + 1):
        left_mean = cum[k - 1] / k
        right_mean = (total - cum[k - 1]) / (n - k)
        stat = abs(left_mean - right_mean) * np.sqrt(k * (n - k) / n)
        if stat > best_stat:
            best_stat, best_k = float(stat), k
    return best_k, best_stat


def detect_change_point(
    series: Sequence[float],
    *,
    min_segment: int = 3,
    n_permutations: int = 500,
    alpha: float = 0.05,
    seed: int = 0,
) -> Optional[ChangePoint]:
    """Locate one distribution shift in a series of per-run medians.

    Rank-based CUSUM: replace values by their ranks (heavy-tailed noise
    then contributes bounded increments), scan every split with at least
    ``min_segment`` observations per side, and keep the split maximizing
    the standardized mean-rank difference.  Significance comes from a
    seeded permutation test — the split statistic is recomputed over
    ``n_permutations`` shuffles and the change point is reported only when
    the observed statistic's permutation p-value is below ``alpha``.

    Returns ``None`` for series too short to split or shifts that do not
    reach significance.
    """
    x = np.asarray(list(series), dtype=np.float64)
    if x.size < 2 * min_segment:
        return None
    ranks = np.argsort(np.argsort(x, kind="stable"), kind="stable").astype(np.float64)
    k, stat = _rank_cusum(ranks, min_segment)
    if k < 0:
        return None
    rng = np.random.default_rng(seed)
    exceed = 0
    for _ in range(n_permutations):
        perm = rng.permutation(ranks)
        _, perm_stat = _rank_cusum(perm, min_segment)
        if perm_stat >= stat:
            exceed += 1
    p_value = (exceed + 1) / (n_permutations + 1)
    if p_value > alpha:
        return None
    return ChangePoint(
        index=int(k),
        statistic=float(stat),
        p_value=float(p_value),
        before_median=float(np.median(x[:k])),
        after_median=float(np.median(x[k:])),
    )
