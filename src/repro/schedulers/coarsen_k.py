"""Fixed-window wavefront coarsening — the prior art LBP improves on.

The paper cites wavefront-coarsening approaches [5], [6] that "merge
vertices across wavefronts to create well-balanced coarsened wavefronts"
with a *fixed* policy, contrasting them with LBP's balance-preserving
cuts.  This baseline merges every ``k`` consecutive wavefronts regardless
of what that does to the component structure, then packs the merged
range's connected components into ``p`` bins (packing components is
mandatory for correctness — partitions of one level must not depend on
each other).

Its failure mode is exactly what Section IV-C predicts: a window that
crosses a connectivity bottleneck produces a single giant component and a
serialised level.  The ablation benchmark uses it to quantify what the
PGP-driven cut policy is worth.
"""

from __future__ import annotations

import numpy as np

from ..core.binpack import first_fit_pack
from ..core.schedule import Schedule, WidthPartition
from ..graph.connected_components import components_as_lists
from ..graph.dag import DAG
from ..graph.wavefronts import compute_wavefronts
from .base import register_scheduler

__all__ = ["coarsen_k_schedule", "DEFAULT_WINDOW"]

#: Default merge window (levels per coarsened wavefront).
DEFAULT_WINDOW = 4


@register_scheduler("coarsenk")
def coarsen_k_schedule(g: DAG, cost: np.ndarray, p: int, k: int = DEFAULT_WINDOW) -> Schedule:
    """Merge every ``k`` wavefronts; pack each window's components into ``p`` bins."""
    if k < 1:
        raise ValueError("window k must be >= 1")
    cost = np.asarray(cost, dtype=np.float64)
    waves = compute_wavefronts(g)
    levels = []
    for lo in range(0, waves.n_levels, k):
        hi = min(lo + k, waves.n_levels)
        verts = waves.vertices_in_range(lo, hi)
        comps = components_as_lists(g, verts)
        packing = first_fit_pack([float(cost[c].sum()) for c in comps], p)
        parts = []
        for core, items in enumerate(packing.items_per_bin(p)):
            if items.size == 0:
                continue
            members = np.sort(np.concatenate([comps[int(t)] for t in items]))
            parts.append(WidthPartition(core=core, vertices=members))
        if parts:
            levels.append(parts)
    return Schedule(
        n=g.n,
        levels=levels,
        sync="barrier",
        algorithm="coarsenk",
        n_cores=p,
        meta={"window": k, "n_wavefronts": waves.n_levels},
    )
