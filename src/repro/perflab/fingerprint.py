"""Environment fingerprinting: *what machine produced this number?*

Every perf-lab observation is stamped with an
:class:`EnvironmentFingerprint` so longitudinal comparisons never silently
mix machines.  The fingerprint splits into two parts:

* the **environment key** — hardware and library identity (CPU model,
  core count, frequency governor, python/numpy/scipy/BLAS, OS) — hashed
  into ``digest``, which keys the history store.  Two observations are
  longitudinally comparable iff their digests match;
* **provenance** — per-observation facts that legitimately change between
  runs of the same environment (git SHA, armed fault plans, the ambient
  observability switch).  These are stamped alongside but excluded from
  the digest, because a timing shift they cause is exactly what the
  regression gate exists to detect and explain, not to key away.

Collection never raises: every probe degrades to ``""`` on platforms
without the corresponding source (no ``/proc/cpuinfo``, no git checkout,
no scipy), so the digest stays stable and meaningful on what *was*
readable.
"""

from __future__ import annotations

import os
import platform
import subprocess
from dataclasses import asdict, dataclass, field
from hashlib import sha256
from typing import Dict, Optional

__all__ = [
    "PERF_SCHEMA_VERSION",
    "EnvironmentFingerprint",
    "collect_fingerprint",
    "cpu_model",
    "cpu_governor",
    "blas_backend",
    "git_sha",
]

#: Schema version stamped into every perf-lab artifact (history lines,
#: BENCH_trajectory.json, benchmarks/output JSON payloads).  Version 1 is
#: the pre-perf-lab ``BENCH_inspector.json`` layout (no fingerprint, no
#: per-rep samples); bump this when the observation layout changes.
PERF_SCHEMA_VERSION = 2


def cpu_model() -> str:
    """CPU model string (``/proc/cpuinfo`` on Linux, else platform API)."""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine()


def cpu_governor() -> str:
    """Frequency governor of cpu0 (empty when sysfs does not expose it)."""
    path = "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor"
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read().strip()
    except OSError:
        return ""


def blas_backend() -> str:
    """Best-effort name of the BLAS numpy links against."""
    try:
        import numpy as np

        cfg = np.show_config(mode="dicts")  # numpy >= 1.26
        blas = cfg.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "")
        version = blas.get("version", "")
        return f"{name} {version}".strip()
    except Exception:
        pass
    try:  # pragma: no cover - legacy numpy fallback
        from numpy import __config__ as npcfg

        for key in ("blas_ilp64_opt_info", "blas_opt_info", "blas_info"):
            info = getattr(npcfg, key, None)
            if info:
                libs = info.get("libraries")
                if libs:
                    return ",".join(libs)
    except Exception:
        pass
    return ""


def git_sha(cwd: Optional[str] = None) -> str:
    """Short git SHA of the working tree (empty outside a checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


@dataclass(frozen=True)
class EnvironmentFingerprint:
    """Machine + library identity, with per-run provenance alongside.

    ``digest`` hashes only the environment-key fields; provenance fields
    (``git_sha``, ``observability_enabled``, ``faults_armed``) ride along
    in serialized form but never change the key.
    """

    # --- environment key (hashed into the digest) ---------------------
    cpu_model: str
    cpu_count: int
    governor: str
    os: str
    python: str
    numpy: str
    scipy: str
    blas: str
    #: inspector backend spec the observations ran under (canonical
    #: ``BackendSpec.describe()`` form).  Part of the environment key:
    #: compiled- and numpy-tier timings must never be longitudinally
    #: compared as if one machine produced both.  Empty (the default, and
    #: the value for every pre-backend history line) is excluded from the
    #: digest payload so existing histories and blessed baselines keep
    #: their digests.
    backend: str = ""
    # --- provenance (stamped, not hashed) ------------------------------
    git_sha: str = ""
    observability_enabled: bool = False
    faults_armed: bool = False
    extra: Dict[str, str] = field(default_factory=dict)

    _KEY_FIELDS = (
        "cpu_model",
        "cpu_count",
        "governor",
        "os",
        "python",
        "numpy",
        "scipy",
        "blas",
    )

    @property
    def digest(self) -> str:
        """Short stable hash of the environment-key fields."""
        parts = tuple(getattr(self, f) for f in self._KEY_FIELDS)
        if self.backend:
            parts = parts + (self.backend,)
        payload = repr(parts)
        return sha256(payload.encode("utf-8")).hexdigest()[:12]

    def as_dict(self) -> dict:
        """JSON-ready form, digest included for self-describing files."""
        out = asdict(self)
        out["digest"] = self.digest
        return out

    @classmethod
    def from_dict(cls, blob: dict) -> "EnvironmentFingerprint":
        """Inverse of :meth:`as_dict` (ignores the stored digest)."""
        data = {k: v for k, v in blob.items() if k != "digest"}
        return cls(**data)

    def describe(self) -> str:
        """One-line human summary for CLI headers."""
        return (
            f"{self.cpu_model or 'unknown cpu'} x{self.cpu_count}"
            f"{' (' + self.governor + ')' if self.governor else ''}, "
            f"python {self.python}, numpy {self.numpy}"
            f"{', scipy ' + self.scipy if self.scipy else ''}"
            f"{', ' + self.blas if self.blas else ''}"
            f"{', backend ' + self.backend if self.backend else ''}"
            f"{', git ' + self.git_sha if self.git_sha else ''}"
            f" [{self.digest}]"
        )


def collect_fingerprint(backend: str = "", **extra: str) -> EnvironmentFingerprint:
    """Probe the current process's environment; never raises.

    ``backend`` is the canonical inspector backend description the run
    measures under (environment key; leave empty for backend-agnostic
    artifacts).  ``extra`` key/values are stamped into provenance (e.g.
    ``collect_fingerprint(benchmark="perf-smoke")``).
    """
    import numpy as np

    try:
        import scipy

        scipy_version = scipy.__version__
    except Exception:  # pragma: no cover - scipy is baked into the image
        scipy_version = ""
    # provenance switches read from the ambient layers (guarded so a
    # stripped-down install can still fingerprint itself)
    try:
        from ..observability.state import STATE as _obs_state

        obs_enabled = bool(_obs_state.enabled)
    except Exception:  # pragma: no cover
        obs_enabled = False
    try:
        from ..resilience.faults import active_plan

        faults = active_plan() is not None
    except Exception:  # pragma: no cover
        faults = False
    return EnvironmentFingerprint(
        cpu_model=cpu_model(),
        cpu_count=os.cpu_count() or 0,
        governor=cpu_governor(),
        os=platform.platform(),
        python=platform.python_version(),
        numpy=np.__version__,
        scipy=scipy_version,
        blas=blas_backend(),
        backend=str(backend),
        git_sha=git_sha(),
        observability_enabled=obs_enabled,
        faults_armed=faults,
        extra={k: str(v) for k, v in extra.items()},
    )
