"""Tests for the record A/B diff tool."""

import dataclasses

import pytest

from repro.runtime import LAPTOP4
from repro.suite import Harness, suite_by_name
from repro.suite.regression import RecordDelta, diff_records, regression_report


@pytest.fixture(scope="module")
def records():
    h = Harness(machines=(LAPTOP4,), kernels=("sptrsv",), algorithms=("hdagg", "wavefront"))
    return h.run_matrix(suite_by_name()["mesh2d-s"])


def test_identical_runs_have_unit_ratios(records):
    deltas, gone, added = diff_records(records, records)
    assert not gone and not added
    assert len(deltas) == len(records)
    assert all(d.ratio == pytest.approx(1.0) for d in deltas)
    assert not any(d.regressed for d in deltas)


def test_detects_regression(records):
    slowed = [
        dataclasses.replace(r, speedup=r.speedup * (0.5 if r.algorithm == "hdagg" else 1.0))
        for r in records
    ]
    deltas, _, _ = diff_records(records, slowed)
    regressed = [d for d in deltas if d.regressed]
    assert len(regressed) == sum(1 for r in records if r.algorithm == "hdagg")
    report = regression_report(records, slowed)
    assert "regression(s)" in report
    assert "hdagg" in report


def test_detects_added_and_removed_cells(records):
    deltas, gone, added = diff_records(records[:-1], records[1:])
    assert len(gone) == 1 and len(added) == 1
    report = regression_report(records[:-1], records[1:])
    assert "only in OLD" in report and "only in NEW" in report


def test_clean_report(records):
    report = regression_report(records, records)
    assert "no regressions" in report
    assert "mean ratio 1.000" in report


def test_delta_properties():
    d = RecordDelta(key=("m", "k", "a", "x"), old_speedup=2.0, new_speedup=1.0)
    assert d.ratio == 0.5
    assert d.regressed
    z = RecordDelta(key=("m", "k", "a", "x"), old_speedup=0.0, new_speedup=1.0)
    assert z.ratio == float("inf")
