"""MKL-style vendor baseline for SpTRSV.

Substitution note (see DESIGN.md): Intel MKL is closed source, so the paper's
MKL column is modelled by what ``mkl_sparse_optimize`` + parallel
``mkl_sparse_d_trsv`` publicly do for triangular solves: level-set
scheduling with a barrier per level and *cost-oblivious* static chunking of
each level across threads (equal row counts, not equal work).  The
cost-obliviousness is the behavioural difference from the tuned Wavefront
baseline and is what makes the vendor column weaker on skewed matrices, in
line with the paper's larger average speedup over MKL (3.56x) than over
Wavefront (1.95x).  MKL's inspection is also the most expensive of the
level-set family (the paper sets ``expected_calls = 1000``); the harness
models that with a higher per-edge inspector constant.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import Schedule
from ..graph.dag import DAG
from ..passes.registry import run_scheduler_group
from .base import register_scheduler

__all__ = ["mkl_like_schedule"]


@register_scheduler("mkl")
def mkl_like_schedule(g: DAG, cost: np.ndarray, p: int) -> Schedule:
    """Level-set schedule with equal-count chunking and barrier sync.

    Runs the ``"mkl"`` pass group (shared ``wavefronts`` pass + a
    count-chunking emit pass — see :mod:`repro.passes.baselines`).
    """
    return run_scheduler_group("mkl", g, cost, p)
