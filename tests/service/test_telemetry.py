"""Request telemetry through the serving stack: span propagation under load.

The cross-thread contract under test: every request the front door admits
owns exactly one ``service.request`` root span (opened on the event
loop), every span the broker's worker thread opens parents under it, and
the resulting tree passes the structural validator — under coalescing,
shedding, deadline degradation, and injected faults alike.  The
hypothesis suite drives randomized request mixes so the interleavings
are not hand-picked.
"""

import asyncio
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.observability import observed
from repro.observability.telemetry import (
    catalog_violations,
    request_trees,
    validate_request_trees,
)
from repro.resilience.faults import FaultPlan, FaultSpec, armed
from repro.service import FrontDoor, ScheduleBroker, ServiceRejected
from repro.store import ScheduleStore


def _serve(requests, *, max_workers=4, max_pending=64, max_inflight=8, store=None):
    """Drive a batch through a fresh door under observation; return
    (results, spans, registry)."""
    broker = ScheduleBroker(store, max_inflight=max_inflight, retry_base_delay=0.0)

    async def drive(door):
        return await door.submit_many(requests)

    with observed() as (tracer, registry):
        with FrontDoor(broker, max_workers=max_workers, max_pending=max_pending) as door:
            results = asyncio.run(drive(door))
    return results, tracer.spans, registry


class TestPropagation:
    def test_every_request_gets_a_valid_tree(self, request_a, request_b):
        requests = [request_a, request_b] * 4
        results, spans, registry = _serve(requests)
        assert all(not isinstance(r, BaseException) for r in results)
        assert validate_request_trees(spans, expect=len(requests)) == []
        trees = request_trees(spans)
        assert len(trees) == len(requests)
        assert catalog_violations(registry.names()) == []

    def test_worker_spans_parent_under_the_event_loop_root(self, request_a):
        _, spans, _ = _serve([request_a])
        trees = request_trees(spans)
        (tree,) = trees.values()
        brokers = tree.named("service.broker")
        assert len(brokers) == 1
        assert brokers[0].parent_span_id == tree.root.span_id
        # the handoff crossed threads: root on the loop, broker on a worker
        assert brokers[0].tid != tree.root.tid

    def test_tier_attribution_matches_the_outcome(self, request_a):
        # same structure twice: first inspected, second from memory
        _, spans, _ = _serve([request_a])
        _, spans2, _ = _serve([request_a, replace(request_a)])
        for sp, expected in ((spans, {"inspected"}), (spans2, {"inspected", "memory"})):
            trees = request_trees(sp)
            outcomes = {t.outcome for t in trees.values()}
            assert outcomes <= expected | {"coalesced"}
            for t in trees.values():
                if t.outcome == "memory":
                    assert t.named("service.memory")
                if t.outcome == "inspected":
                    assert t.named("service.inspect")

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        picks=st.lists(st.booleans(), min_size=1, max_size=10),
        workers=st.integers(min_value=1, max_value=4),
    )
    def test_random_mixes_always_validate(self, request_a, request_b, picks, workers):
        requests = [request_a if pick else request_b for pick in picks]
        results, spans, registry = _serve(requests, max_workers=workers)
        assert all(not isinstance(r, BaseException) for r in results)
        assert validate_request_trees(spans, expect=len(requests)) == []
        assert catalog_violations(registry.names()) == []


class TestOutcomePaths:
    def test_shed_requests_still_close_their_root_span(self, request_a):
        requests = [request_a] * 12
        results, spans, registry = _serve(
            requests, max_workers=1, max_pending=1
        )
        shed = sum(isinstance(r, ServiceRejected) for r in results)
        assert shed > 0
        assert validate_request_trees(spans, expect=len(requests)) == []
        trees = request_trees(spans)
        assert sum(t.outcome == "shed" for t in trees.values()) == shed
        assert registry.counter("service.sheds.frontdoor").value == shed

    def test_deadline_degradation_is_tagged(self, request_a):
        # a microscopic budget forces the degradation chain (or a
        # deadline miss) — both are legal, both must validate
        tight = replace(request_a, deadline=1e-4)
        results, spans, _ = _serve([tight])
        assert validate_request_trees(spans, expect=1) == []
        (tree,) = request_trees(spans).values()
        if isinstance(results[0], BaseException):
            assert tree.outcome == "deadline"
        else:
            assert tree.root.attrs.get("degraded") or tree.outcome in (
                "inspected", "memory",
            )

    def test_worker_crash_retry_keeps_the_tree_valid(self, request_a):
        plan = FaultPlan([FaultSpec("service.worker_crash", "raise", at=0)])
        with armed(plan):
            results, spans, registry = _serve([request_a])
        assert not isinstance(results[0], BaseException)
        assert validate_request_trees(spans, expect=1) == []
        (tree,) = request_trees(spans).values()
        # the crashed attempt and the successful retry both ran inside
        # the single inspect span's window
        assert tree.named("service.inspect")
        assert registry.counter("service.retries").value == 1
        assert registry.counter("resilience.faults_fired.service.worker_crash").value == 1
        assert catalog_violations(registry.names()) == []

    def test_quarantined_store_record_is_traced(self, tmp_path, request_a):
        store = ScheduleStore(tmp_path / "store", durable=False)
        plan = FaultPlan([FaultSpec("store.bit_flip", "corrupt", at=0)])
        with armed(plan):
            # first serve writes a corrupted record through the broker
            results, _, _ = _serve([request_a], store=store)
        assert not isinstance(results[0], BaseException)
        # a fresh broker (cold L1) must fall back to re-inspection and
        # quarantine the bad record, all inside a valid request tree
        results, spans, registry = _serve([request_a], store=store)
        assert not isinstance(results[0], BaseException)
        assert results[0].source == "inspected"
        assert validate_request_trees(spans, expect=1) == []
        assert store.stats.quarantined == 1
        assert registry.counter("store.quarantined").value == 1
        assert registry.gauge("store.quarantine_count").value == 1
        assert catalog_violations(registry.names()) == []


class TestDormantPath:
    def test_no_spans_and_no_kwarg_without_the_switch(self, request_a):
        broker = ScheduleBroker()

        async def drive(door):
            return await door.submit(request_a)

        with FrontDoor(broker, max_workers=2) as door:
            result = asyncio.run(drive(door))
        assert result.schedule is not None

    def test_telemetry_kwarg_is_optional_for_direct_broker_calls(self, request_a):
        broker = ScheduleBroker()
        with observed() as (tracer, _):
            result = broker.request(request_a)
        assert result.source == "inspected"
        # broker-only callers get a tree rooted at the broker span
        assert validate_request_trees(tracer.spans) == []
