"""NRE: Number of Required kernel Executions to amortise inspection.

Equation 2 of the paper::

    NRE = inspector_time / (sequential_time - parallel_time)

Kernel times come from the execution simulator.  Inspector times need care:
the paper's inspectors are optimised C++, so wall-clocking our Python
implementations would mis-rank them (Python constant factors differ wildly
from C++ ones).  Instead each inspector's cost is *modelled* from its
asymptotic operation count (the same complexity analysis as Section IV-E)
with per-algorithm constants calibrated once against the paper's reported
SpTRSV averages (DAGP ≈ 5305, LBC ≈ 24, SpMP ≈ 21, HDagg ≈ 16,
Wavefront ≈ 9.4).  The calibration fixes scale only; the *growth* with
|V|, |E|, D and wavefront count is structural.
"""

from __future__ import annotations

import math
import warnings

from ..core.schedule import Schedule
from ..graph.dag import DAG
from ..runtime.simulator import SimulationResult

__all__ = ["two_hop_ops", "inspector_operations", "inspector_cost_model", "nre", "INSPECTOR_CONSTANTS"]

#: Calibrated cycles-per-operation constants per inspector (one global
#: calibration against the paper's reported SpTRSV NRE averages; the
#: operation counts below them are structural).
INSPECTOR_CONSTANTS = {
    "wavefront": 860.0,   # one Kahn/level sweep over V + E
    "mkl": 2000.0,        # vendor inspector: several analysis sweeps
    "spmp": 490.0,        # two-hop reduction + level grouping
    "lbc": 107.0,         # etree + cut scan + packing
    "hdagg": 225.0,       # two-hop reduction + BFS grouping + per-merge CC
    "dagp": 30000.0,      # multilevel partitioning + refinement passes
}


def two_hop_ops(g: DAG) -> float:
    """Exact operation count of the two-hop transitive reduction.

    ``sum over vertices f of sum over parents j of indeg(j)`` — the
    ``|E| * E[D]`` term of Section IV-E, computed exactly.
    """
    indeg = g.in_degree()
    return float(indeg[g.in_idx].sum()) + g.n + g.n_edges


def inspector_operations(algorithm: str, g: DAG, schedule: Schedule | None = None) -> float:
    """Structural operation count of one inspector (the Section IV-E terms)."""
    v, e = g.n, g.n_edges
    base = v + e
    if algorithm in ("wavefront", "mkl"):
        return float(base)
    if algorithm == "spmp":
        return two_hop_ops(g) + base
    if algorithm == "lbc":
        return float(e + 48 * v + base)
    if algorithm == "hdagg":
        merges = 1
        if schedule is not None and "n_wavefronts" in schedule.meta:
            merges = max(1, int(schedule.meta["n_wavefronts"]))
        coarse_e = e
        if schedule is not None and "n_coarse_vertices" in schedule.meta:
            # merged-range CC runs on the coarsened DAG
            coarse_e = min(e, max(1, int(schedule.meta["n_coarse_vertices"]) * 4))
        return (
            two_hop_ops(g)
            + 2 * base
            + merges * coarse_e / max(1.0, math.log2(v + 2))
        )
    if algorithm == "dagp":
        return e * math.log2(v + 2)
    if algorithm == "serial":
        return 0.0
    raise ValueError(f"no inspector cost model for {algorithm!r}")


def inspector_cost_model(algorithm: str, g: DAG, schedule: Schedule | None = None) -> float:
    """Modelled inspector cost in machine cycles for one algorithm/DAG pair."""
    ops = inspector_operations(algorithm, g, schedule)
    if algorithm == "serial":
        return 0.0
    return INSPECTOR_CONSTANTS[algorithm] * ops


def nre(
    inspector_cycles: float,
    serial_result: SimulationResult,
    parallel_result: SimulationResult,
) -> float:
    """Equation 2.  Returns ``inf`` when the schedule gives no speedup.

    A *zero-cycle* pair (both makespans 0 — an empty DAG) makes the ratio
    0/0; that degenerate case returns 1.0 with a warning rather than
    ``inf``, so empty matrices do not poison NRE aggregates.
    """
    if serial_result.makespan_cycles <= 0.0 and parallel_result.makespan_cycles <= 0.0:
        warnings.warn(
            "zero-cycle simulation: NRE is undefined, returning 1.0",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1.0
    gain = serial_result.makespan_cycles - parallel_result.makespan_cycles
    if gain <= 0.0:
        return float("inf")
    return inspector_cycles / gain
