"""Unit tests for per-core timelines: recording, idle derivation, invariants."""

import numpy as np
import pytest

from repro.observability.timeline import (
    SEGMENT_KINDS,
    CoreTimeline,
    Segment,
    TimelineRecorder,
)


def test_segment_kinds_order_and_membership():
    assert SEGMENT_KINDS == ("busy", "barrier_wait", "p2p_wait", "idle")


def test_record_rejects_idle_and_unknown_kinds():
    rec = TimelineRecorder()
    with pytest.raises(ValueError):
        rec.record(0, "idle", 0.0, 1.0)
    with pytest.raises(ValueError):
        rec.record(0, "working", 0.0, 1.0)


def test_finalize_derives_idle_gaps_and_covers_wall():
    rec = TimelineRecorder()
    rec.open(2)
    rec.wall_t0, rec.wall_t1 = 0.0, 10.0
    rec.record(0, "busy", 1.0, 4.0, vertex=7, level=0)
    rec.record(0, "barrier_wait", 4.0, 6.0, level=0)
    rec.record(1, "busy", 0.0, 2.0, vertex=3, level=0)
    tl = rec.finalize()
    tl.check_invariants()
    assert tl.wall == 10.0
    assert tl.n_cores == 2
    kinds0 = [s.kind for s in tl.cores[0]]
    assert kinds0 == ["idle", "busy", "barrier_wait", "idle"]
    kinds1 = [s.kind for s in tl.cores[1]]
    assert kinds1 == ["busy", "idle"]
    # derived idle exactly complements the recorded segments
    assert tl.seconds_by_kind(0) == {"busy": 3.0, "barrier_wait": 2.0,
                                     "p2p_wait": 0.0, "idle": 5.0}
    assert tl.seconds_by_kind(1)["idle"] == 8.0


def test_finalize_sorts_out_of_order_records():
    rec = TimelineRecorder()
    rec.open(1)
    rec.wall_t0, rec.wall_t1 = 0.0, 5.0
    rec.record(0, "busy", 3.0, 4.0)
    rec.record(0, "busy", 1.0, 2.0)
    tl = rec.finalize()
    tl.check_invariants()
    assert [(s.t0, s.t1) for s in tl.cores[0] if s.kind == "busy"] == [(1.0, 2.0), (3.0, 4.0)]


def test_finalize_without_wall_stamps_uses_segment_envelope():
    rec = TimelineRecorder()
    rec.record(0, "busy", 2.0, 3.0)
    rec.record(1, "busy", 1.0, 5.0)
    tl = rec.finalize()
    assert tl.wall_t0 == 1.0 and tl.wall_t1 == 5.0
    tl.check_invariants()


def test_finalize_empty_recorder_is_degenerate_but_valid():
    tl = TimelineRecorder().finalize()
    assert tl.wall == 0.0
    assert tl.n_cores == 0
    tl.check_invariants()
    assert tl.measured_pg() == 0.0
    assert tl.busy_per_core().size == 0


def test_open_preregisters_empty_cores():
    rec = TimelineRecorder()
    rec.open(3)
    rec.wall_t0, rec.wall_t1 = 0.0, 1.0
    rec.record(0, "busy", 0.0, 1.0)
    tl = rec.finalize()
    assert sorted(tl.cores) == [0, 1, 2]
    # cores that never worked are pure idle
    assert [s.kind for s in tl.cores[2]] == ["idle"]
    assert tl.utilization() == {0: 1.0, 1: 0.0, 2: 0.0}


def test_busy_per_core_and_measured_pg():
    rec = TimelineRecorder()
    rec.open(2)
    rec.wall_t0, rec.wall_t1 = 0.0, 4.0
    rec.record(0, "busy", 0.0, 4.0)
    rec.record(1, "busy", 0.0, 2.0)
    tl = rec.finalize()
    assert np.array_equal(tl.busy_per_core(), np.array([4.0, 2.0]))
    # PG = 1 - mean/max = 1 - 3/4
    assert tl.measured_pg() == pytest.approx(0.25)


def test_wait_attribution_lists_p2p_segments_with_dependences():
    rec = TimelineRecorder()
    rec.open(2)
    rec.wall_t0, rec.wall_t1 = 0.0, 3.0
    rec.record(1, "p2p_wait", 0.0, 1.0, vertex=5, dependence=2)
    rec.record(1, "busy", 1.0, 2.0, vertex=5)
    tl = rec.finalize()
    (w,) = tl.wait_attribution()
    assert w.kind == "p2p_wait"
    assert (w.vertex, w.dependence) == (5, 2)


def test_check_invariants_catches_overlap():
    tl = CoreTimeline(
        cores={0: [Segment(0, "busy", 0.0, 2.0), Segment(0, "busy", 1.0, 3.0)]},
        wall_t0=0.0,
        wall_t1=3.0,
    )
    with pytest.raises(AssertionError):
        tl.check_invariants()


def test_check_invariants_catches_gap():
    tl = CoreTimeline(
        cores={0: [Segment(0, "busy", 0.0, 1.0)]},  # [1,3] uncovered
        wall_t0=0.0,
        wall_t1=3.0,
    )
    with pytest.raises(AssertionError):
        tl.check_invariants()


def test_segment_as_dict_omits_unset_attributions():
    full = Segment(0, "p2p_wait", 0.0, 1.0, vertex=4, dependence=1, level=2)
    assert full.as_dict() == {"core": 0, "kind": "p2p_wait", "t0": 0.0, "t1": 1.0,
                              "vertex": 4, "dependence": 1, "level": 2}
    bare = Segment(1, "idle", 0.0, 1.0)
    assert bare.as_dict() == {"core": 1, "kind": "idle", "t0": 0.0, "t1": 1.0}


def test_timeline_as_dict_is_json_shaped():
    rec = TimelineRecorder()
    rec.open(1)
    rec.wall_t0, rec.wall_t1 = 0.0, 2.0
    rec.record(0, "busy", 0.0, 1.0, vertex=0)
    d = rec.finalize().as_dict()
    assert d["wall_t0"] == 0.0 and d["wall_t1"] == 2.0
    assert list(d["cores"]) == ["0"]
    assert [s["kind"] for s in d["cores"]["0"]] == ["busy", "idle"]
