"""Tests for the record A/B diff tool."""

import dataclasses
import math

import pytest

from repro.runtime import LAPTOP4
from repro.suite import Harness, suite_by_name
from repro.suite.regression import RecordDelta, diff_records, regression_report


@pytest.fixture(scope="module")
def records():
    h = Harness(machines=(LAPTOP4,), kernels=("sptrsv",), algorithms=("hdagg", "wavefront"))
    return h.run_matrix(suite_by_name()["mesh2d-s"])


def test_identical_runs_have_unit_ratios(records):
    deltas, gone, added = diff_records(records, records)
    assert not gone and not added
    assert len(deltas) == len(records)
    assert all(d.ratio == pytest.approx(1.0) for d in deltas)
    assert not any(d.regressed for d in deltas)


def test_detects_regression(records):
    slowed = [
        dataclasses.replace(r, speedup=r.speedup * (0.5 if r.algorithm == "hdagg" else 1.0))
        for r in records
    ]
    deltas, _, _ = diff_records(records, slowed)
    regressed = [d for d in deltas if d.regressed]
    assert len(regressed) == sum(1 for r in records if r.algorithm == "hdagg")
    report = regression_report(records, slowed)
    assert "regression(s)" in report
    assert "hdagg" in report


def test_detects_added_and_removed_cells(records):
    deltas, gone, added = diff_records(records[:-1], records[1:])
    assert len(gone) == 1 and len(added) == 1
    report = regression_report(records[:-1], records[1:])
    assert "only in OLD" in report and "only in NEW" in report


def test_clean_report(records):
    report = regression_report(records, records)
    assert "no regressions" in report
    assert "mean ratio 1.000" in report


def test_delta_properties():
    d = RecordDelta(key=("m", "k", "a", "x"), old_speedup=2.0, new_speedup=1.0)
    assert d.ratio == 0.5
    assert d.regressed
    assert not d.indeterminate


def test_bad_baseline_is_indeterminate_not_infinite():
    # a zero/negative/non-finite baseline supports no ratio: the cell is
    # flagged, never silently waved through as an infinite "improvement"
    for bad in (0.0, -1.0, float("nan"), float("inf")):
        z = RecordDelta(key=("m", "k", "a", "x"), old_speedup=bad, new_speedup=1.0)
        assert z.indeterminate
        assert math.isnan(z.ratio)
        assert not z.regressed


def test_report_surfaces_indeterminate_cells(records):
    broken = [
        dataclasses.replace(r, speedup=0.0 if r.algorithm == "hdagg" else r.speedup)
        for r in records
    ]
    report = regression_report(broken, records)
    assert "indeterminate" in report
    n_bad = sum(1 for r in records if r.algorithm == "hdagg")
    assert f"{n_bad} cell(s) indeterminate" in report
