"""Tests for schedule analysis reports."""

import numpy as np
import pytest

from repro.core import hdagg, level_table, schedule_report, utilization_chart
from repro.graph import dag_from_matrix_lower
from repro.kernels import KERNELS
from repro.runtime import LAPTOP4, simulate
from repro.schedulers import SCHEDULERS


@pytest.fixture(scope="module")
def prepared(request):
    mesh_nd = request.getfixturevalue("mesh_nd")
    kernel = KERNELS["spilu0"]
    g = kernel.dag(mesh_nd)
    cost = kernel.cost(mesh_nd)
    s = hdagg(g, cost, 4)
    return g, cost, s, kernel.memory_model(mesh_nd, g)


def test_level_table_shape(prepared):
    g, cost, s, _ = prepared
    rows = level_table(s, cost)
    assert len(rows) == s.n_levels
    total_vertices = sum(r["vertices"] for r in rows)
    assert total_vertices == g.n
    for r in rows:
        assert 0.0 <= r["pgp"] <= 1.0
        assert r["max_load"] >= r["mean_load"] - 1e-9
        assert 1 <= r["width"]


def test_schedule_report_content(prepared):
    g, cost, s, _ = prepared
    text = schedule_report(s, cost)
    assert "hdagg" in text
    assert f"n={g.n}" in text
    assert "PGP" in text
    assert len(text.splitlines()) >= 3


def test_schedule_report_truncates(prepared):
    g, cost, _, _ = prepared
    s = SCHEDULERS["wavefront"](g, cost, 4)
    text = schedule_report(s, cost, max_rows=5)
    assert "more levels" in text


def test_utilization_chart(prepared):
    g, cost, s, mem = prepared
    r = simulate(s, g, cost, mem, LAPTOP4)
    chart = utilization_chart(r, width=20)
    lines = chart.splitlines()
    assert len(lines) == LAPTOP4.n_cores + 2  # header + cores + summary
    assert "potential gain" in lines[-1]
    # the busiest core's bar is full width
    assert "#" * 20 in chart
