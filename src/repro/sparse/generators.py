"""Seeded generators for symmetric positive definite (SPD) test matrices.

The paper evaluates on 34 SuiteSparse SPD matrices chosen for *diversity of
DAG structure* (Section V): some have chain-heavy DAGs (favouring DAGP), some
have large average parallelism (favouring Wavefront/SpMP), and some are close
to chordal (favouring LBC).  Those matrices are not redistributable inside
this repository, so this module provides deterministic generators that span
the same structural axes; :mod:`repro.suite.matrices` assembles the concrete
34-matrix dataset from them.

Every generator returns a full (both triangles stored) symmetric CSR matrix
that is strictly diagonally dominant, hence SPD, so SpIC0 is numerically
stable exactly as the paper requires.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix, csr_from_coo

__all__ = [
    "spd_from_pattern",
    "poisson2d",
    "poisson3d",
    "banded_spd",
    "random_spd",
    "tridiagonal_spd",
    "block_diagonal_spd",
    "arrowhead_spd",
    "power_law_spd",
    "ladder_spd",
    "kite_chain_spd",
]


def spd_from_pattern(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    *,
    seed: int = 0,
    dominance: float = 1.0,
) -> CSRMatrix:
    """Turn a strictly-lower-triangular pattern into a full SPD matrix.

    The pattern is mirrored to the upper triangle, off-diagonal values are
    drawn from ``U(-1, -0.05)`` (negative, Stieltjes-like, matching discretised
    PDE operators), and each diagonal entry is set to the absolute row sum
    plus ``dominance`` which guarantees strict diagonal dominance and hence
    positive definiteness.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.size and not np.all(rows > cols):
        raise ValueError("pattern must be strictly lower triangular (rows > cols)")
    rng = np.random.default_rng(seed)
    vals = -rng.uniform(0.05, 1.0, size=rows.shape[0])

    all_rows = np.concatenate([rows, cols, np.arange(n, dtype=np.int64)])
    all_cols = np.concatenate([cols, rows, np.arange(n, dtype=np.int64)])
    diag = np.zeros(n, dtype=np.float64)
    np.add.at(diag, rows, np.abs(vals))
    np.add.at(diag, cols, np.abs(vals))
    diag += dominance
    all_vals = np.concatenate([vals, vals, diag])
    return csr_from_coo(n, n, all_rows, all_cols, all_vals, sum_duplicates=False)


def _grid_index_2d(nx: int, ny: int) -> np.ndarray:
    return np.arange(nx * ny, dtype=np.int64).reshape(ny, nx)


def poisson2d(nx: int, ny: int | None = None, *, seed: int = 0) -> CSRMatrix:
    """5-point Laplacian stencil on an ``nx x ny`` grid (classic banded SPD).

    Its elimination DAG has moderate parallelism with long dependence chains
    along grid lines — a middle-of-the-road workload for every scheduler.
    """
    ny = nx if ny is None else ny
    idx = _grid_index_2d(nx, ny)
    right_r = idx[:, 1:].ravel()
    right_c = idx[:, :-1].ravel()
    down_r = idx[1:, :].ravel()
    down_c = idx[:-1, :].ravel()
    rows = np.concatenate([right_r, down_r])
    cols = np.concatenate([right_c, down_c])
    return spd_from_pattern(nx * ny, rows, cols, seed=seed)


def poisson3d(nx: int, ny: int | None = None, nz: int | None = None, *, seed: int = 0) -> CSRMatrix:
    """7-point Laplacian stencil on an ``nx x ny x nz`` grid.

    3D problems have wider wavefronts (more average parallelism) than 2D for
    the same nnz — they populate the high-parallelism bucket of Table III.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    idx = np.arange(nx * ny * nz, dtype=np.int64).reshape(nz, ny, nx)
    pairs = [
        (idx[:, :, 1:].ravel(), idx[:, :, :-1].ravel()),
        (idx[:, 1:, :].ravel(), idx[:, :-1, :].ravel()),
        (idx[1:, :, :].ravel(), idx[:-1, :, :].ravel()),
    ]
    rows = np.concatenate([p[0] for p in pairs])
    cols = np.concatenate([p[1] for p in pairs])
    return spd_from_pattern(nx * ny * nz, rows, cols, seed=seed)


def banded_spd(n: int, half_bandwidth: int, *, fill: float = 1.0, seed: int = 0) -> CSRMatrix:
    """Random symmetric matrix confined to a band ``|i - j| <= half_bandwidth``.

    Dense bands are chordal-ish after RCM, which is the structure class the
    paper notes as favourable to LBC.  ``fill`` in (0, 1] keeps that fraction
    of the in-band entries.
    """
    if half_bandwidth < 1 or half_bandwidth >= n:
        raise ValueError("half_bandwidth must be in [1, n)")
    rng = np.random.default_rng(seed)
    rows_list = []
    cols_list = []
    for off in range(1, half_bandwidth + 1):
        r = np.arange(off, n, dtype=np.int64)
        keep = rng.random(r.shape[0]) < fill
        rows_list.append(r[keep])
        cols_list.append(r[keep] - off)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return spd_from_pattern(n, rows, cols, seed=seed + 1)


def random_spd(n: int, avg_degree: float, *, seed: int = 0) -> CSRMatrix:
    """Erdos-Renyi-like symmetric pattern with ``avg_degree`` off-diagonals/row.

    Uniformly random structure produces irregular, non-tree DAGs — the class
    HDagg targets.
    """
    rng = np.random.default_rng(seed)
    m = int(round(n * avg_degree / 2))
    rows = rng.integers(1, n, size=2 * m + 16, dtype=np.int64)
    cols = (rng.random(rows.shape[0]) * rows).astype(np.int64)  # col < row
    pair = np.unique(np.stack([rows, cols], axis=1), axis=0)
    pair = pair[pair[:, 0] != pair[:, 1]][:m]
    return spd_from_pattern(n, pair[:, 0], pair[:, 1], seed=seed + 1)


def tridiagonal_spd(n: int, *, seed: int = 0) -> CSRMatrix:
    """Tridiagonal SPD matrix: the DAG is one long chain (zero parallelism).

    Chains are the paper's "favours DAGP" class — partitioners can cut them
    into contiguous pieces with minimal edge cut, while level-set methods
    degenerate to fully sequential execution.
    """
    r = np.arange(1, n, dtype=np.int64)
    return spd_from_pattern(n, r, r - 1, seed=seed)


def block_diagonal_spd(n_blocks: int, block_size: int, *, seed: int = 0) -> CSRMatrix:
    """Many independent dense-ish SPD blocks: embarrassingly parallel DAG.

    Maximal average parallelism — the structure class that favours
    Wavefront/SpMP in the paper's taxonomy.
    """
    rows_list = []
    cols_list = []
    for b in range(n_blocks):
        base = b * block_size
        # Dense strictly-lower pattern inside each block.
        tri = np.tril_indices(block_size, k=-1)
        rows_list.append(tri[0].astype(np.int64) + base)
        cols_list.append(tri[1].astype(np.int64) + base)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return spd_from_pattern(n_blocks * block_size, rows, cols, seed=seed)


def arrowhead_spd(n: int, n_heads: int, *, seed: int = 0) -> CSRMatrix:
    """Arrowhead: a diagonal body coupled to ``n_heads`` dense final rows.

    Produces a few extremely heavy vertices at the bottom of the DAG — a
    load-balance stress test (first-fit bin packing must isolate them).
    """
    if n_heads >= n:
        raise ValueError("n_heads must be < n")
    body = n - n_heads
    rows_list = []
    cols_list = []
    for k in range(n_heads):
        r = body + k
        rows_list.append(np.full(r, r, dtype=np.int64))
        cols_list.append(np.arange(r, dtype=np.int64))
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return spd_from_pattern(n, rows, cols, seed=seed)


def power_law_spd(n: int, avg_degree: float, *, exponent: float = 2.2, seed: int = 0) -> CSRMatrix:
    """Scale-free symmetric pattern (preferential-attachment flavour).

    Degree skew yields non-uniform per-iteration cost, exercising the PGP
    metric and the fine-grained fallback of HDagg (Lines 36-38, Algorithm 1).
    """
    rng = np.random.default_rng(seed)
    m = int(round(n * avg_degree / 2))
    # Zipf-like weights over vertex ids; heavy vertices get most edges.
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-1.0 / (exponent - 1.0))
    weights /= weights.sum()
    a = rng.choice(n, size=2 * m + 16, p=weights).astype(np.int64)
    b = rng.integers(0, n, size=a.shape[0], dtype=np.int64)
    rows = np.maximum(a, b)
    cols = np.minimum(a, b)
    keep = rows != cols
    pair = np.unique(np.stack([rows[keep], cols[keep]], axis=1), axis=0)[:m]
    return spd_from_pattern(n, pair[:, 0], pair[:, 1], seed=seed + 1)


def ladder_spd(n_rungs: int, *, seed: int = 0) -> CSRMatrix:
    """Ladder graph (two coupled chains): narrow, deep, non-tree DAG.

    A worst case for pure wavefront methods (many tiny levels) where
    coarsening across levels is the only way to build real workloads.
    """
    n = 2 * n_rungs
    left = np.arange(0, n, 2, dtype=np.int64)
    right = left + 1
    rows_list = [right, left[1:], right[1:]]
    cols_list = [left, left[:-1], right[:-1]]
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return spd_from_pattern(n, rows, cols, seed=seed)


def kite_chain_spd(n_kites: int, kite_size: int, *, seed: int = 0) -> CSRMatrix:
    """A chain of dense cliques ("kites") joined by single bridges.

    Densely connected clusters separated by bridges are exactly the structure
    HDagg's step 1 (subtree aggregation after transitive reduction) is built
    to find, so this family isolates the benefit of vertex aggregation.
    """
    n = n_kites * kite_size
    rows_list = []
    cols_list = []
    for k in range(n_kites):
        base = k * kite_size
        tri = np.tril_indices(kite_size, k=-1)
        rows_list.append(tri[0].astype(np.int64) + base)
        cols_list.append(tri[1].astype(np.int64) + base)
        if k > 0:
            rows_list.append(np.array([base], dtype=np.int64))
            cols_list.append(np.array([base - 1], dtype=np.int64))
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return spd_from_pattern(n, rows, cols, seed=seed)
