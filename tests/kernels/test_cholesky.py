"""Tests for the complete sparse Cholesky kernel."""

import numpy as np
import pytest

from repro.core import hdagg
from repro.kernels import (
    KERNELS,
    KernelError,
    SpChol,
    cholesky_in_order,
    cholesky_reference,
    embed_in_fill_pattern,
)
from repro.sparse import csr_from_dense, lower_triangle, symbolic_cholesky


@pytest.fixture
def kernel():
    return SpChol()


def test_registered():
    assert KERNELS["spchol"].name == "spchol"


def test_embedding_preserves_values(mesh):
    emb = embed_in_fill_pattern(mesh)
    low = lower_triangle(mesh)
    np.testing.assert_array_equal(emb.indices, symbolic_cholesky(mesh).indices)
    # original entries preserved, fill entries zero
    np.testing.assert_array_equal(np.tril(emb.to_dense()) != 0, low.to_dense() != 0)
    np.testing.assert_allclose(emb.to_dense(), low.to_dense())


def test_matches_dense_cholesky(mesh):
    l = cholesky_reference(mesh)
    np.testing.assert_allclose(
        l.to_dense(), np.linalg.cholesky(mesh.to_dense()), rtol=1e-9, atol=1e-12
    )


def test_defect_is_dense_zero(all_small_matrices, kernel):
    for name, a in all_small_matrices.items():
        if a.n_rows > 600:
            continue  # dense verification oracle, keep it quick
        l = cholesky_reference(a)
        assert kernel.verify(a, l) < 1e-10, name


def test_scheduled_execution_matches(mesh_nd, kernel):
    g = kernel.dag(mesh_nd)
    s = hdagg(g, kernel.cost(mesh_nd), 4)
    s.validate(g)
    got = kernel.execute_in_order(mesh_nd, s.execution_order())
    np.testing.assert_allclose(got.data, cholesky_reference(mesh_nd).data, rtol=1e-10)


def test_violation_detected(mesh):
    with pytest.raises(KernelError, match="factored before"):
        cholesky_in_order(mesh, np.arange(mesh.n_rows)[::-1].copy())


def test_dag_is_filled_pattern(mesh, kernel):
    g = kernel.dag(mesh)
    filled = symbolic_cholesky(mesh)
    assert g.n_edges == filled.nnz - mesh.n_rows


def test_etree_structured_dag_suits_lbc(mesh_nd, kernel):
    """On the filled (chordal) pattern LBC finds a balanced cut — its home
    turf — while HDagg remains competitive (paper Section I framing)."""
    from repro.schedulers import SCHEDULERS

    g = kernel.dag(mesh_nd)
    cost = kernel.cost(mesh_nd)
    lbc = SCHEDULERS["lbc"](g, cost, 4)
    lbc.validate(g)
    assert lbc.n_levels <= 2
    h = hdagg(g, cost, 4)
    h.validate(g)


def test_not_spd_raises():
    a = csr_from_dense(np.array([[1.0, 2.0], [2.0, 1.0]]))
    with pytest.raises(KernelError, match="pivot"):
        cholesky_reference(a)


def test_memory_model_over_filled_pattern(mesh, kernel):
    g = kernel.dag(mesh)
    m = kernel.memory_model(mesh, g)
    m.validate(g)
    # filled pattern has at least the original lower traffic
    ic0 = KERNELS["spic0"]
    assert m.total_accesses >= ic0.memory_model(mesh).total_accesses
