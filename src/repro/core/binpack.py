"""First-fit bin packing of connected components onto cores.

Section IV-C: "For low overhead packing, HDagg uses a first-fit strategy
where a connected component is assigned to the first bin that is not
balanced [i.e. not yet full].  Along with packing, vertices are ordered
inside bins with the smallest ID first to improve spatial locality."

Items arrive in deterministic order (components sorted by smallest member
id); each goes to the first bin whose load is still below the balanced
target ``total / p``, or — when every bin has reached the target — to the
currently least-loaded bin.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..sparse.csr import INDEX_DTYPE

__all__ = ["first_fit_pack", "first_fit_pack_reference", "BinPacking"]


class BinPacking:
    """Result of packing items into ``p`` bins.

    Attributes
    ----------
    assignment:
        ``assignment[k]`` is the bin of item ``k``.
    loads:
        Final load per bin (length ``p``; unused bins carry 0).
    """

    __slots__ = ("assignment", "loads")

    def __init__(self, assignment: np.ndarray, loads: np.ndarray) -> None:
        self.assignment = assignment
        self.loads = loads

    @property
    def n_bins_used(self) -> int:
        """Bins that received at least one item."""
        return int(np.count_nonzero(self.loads > 0)) if self.assignment.size else 0

    def items_per_bin(self, p: int) -> List[np.ndarray]:
        """Item indices grouped by bin, preserving arrival order."""
        # one stable sort instead of p full scans of the assignment array
        order = np.argsort(self.assignment, kind="stable").astype(INDEX_DTYPE, copy=False)
        counts = np.bincount(self.assignment, minlength=p)
        ptr = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts))).tolist()
        return [np.ascontiguousarray(order[ptr[b] : ptr[b + 1]]) for b in range(p)]

    def pgp(self) -> float:
        """Load-balance PGP of this packing (Equation 1 over the bin loads)."""
        from .pgp import pgp

        return pgp(self.loads)


def first_fit_pack(item_costs: Sequence[float] | np.ndarray, p: int) -> BinPacking:
    """Pack items (in the given order) into ``p`` bins, first-fit by target.

    A bin counts as "balanced" (full) once it reaches its *adaptive* target:
    the cost not yet committed to earlier bins divided by the bins left.
    An item goes to the first unbalanced bin; if every bin is full
    (indivisible items overshoot), the least-loaded bin takes the overflow.

    The adaptive target (rather than a fixed ``total / p``) spreads each
    bin's unavoidable overshoot across the remaining bins instead of
    starving the last one, keeping the max load within one item of optimal.

    Fast path (identical placements to :func:`first_fit_pack_reference`):
    once a bin reaches its target it can never reopen — its load and the
    committed prefix below it are both frozen — so the "first unbalanced
    bin" only moves right and one running pointer replaces the per-item
    scan, making packing O(items + p).

    >>> first_fit_pack([1.0, 1.0, 1.0, 1.0], 2).loads.tolist()
    [2.0, 2.0]
    >>> first_fit_pack([2.0, 2.0, 1.0, 1.0], 2).assignment.tolist()
    [0, 0, 1, 1]
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    costs = np.asarray(item_costs, dtype=np.float64)
    if np.any(costs < 0):
        raise ValueError("item costs must be non-negative")
    loads = [0.0] * p
    assignment = np.empty(costs.shape[0], dtype=INDEX_DTYPE)
    total = float(costs.sum())
    b = 0  # first bin that may still be below its adaptive target
    committed = 0.0  # sum of loads[0:b], frozen once the pointer passes
    for k, c in enumerate(costs.tolist()):
        while b < p and loads[b] >= (total - committed) / (p - b):
            committed += loads[b]
            b += 1
        if b < p:
            placed = b
        else:  # every bin full: overflow to the least-loaded (first minimum)
            placed = min(range(p), key=loads.__getitem__)
        loads[placed] += c
        assignment[k] = placed
    return BinPacking(assignment=assignment, loads=np.asarray(loads, dtype=np.float64))


def first_fit_pack_reference(item_costs: Sequence[float] | np.ndarray, p: int) -> BinPacking:
    """Literal per-item bin scan — the retained oracle for the fast path."""
    if p < 1:
        raise ValueError("p must be >= 1")
    costs = np.asarray(item_costs, dtype=np.float64)
    if np.any(costs < 0):
        raise ValueError("item costs must be non-negative")
    loads = np.zeros(p, dtype=np.float64)
    assignment = np.empty(costs.shape[0], dtype=INDEX_DTYPE)
    total = float(costs.sum())
    for k, c in enumerate(costs):
        placed = -1
        committed = 0.0
        for b in range(p):
            target = (total - committed) / (p - b)
            if loads[b] < target:
                placed = b
                break
            committed += loads[b]
        if placed < 0:
            placed = int(np.argmin(loads))
        loads[placed] += c
        assignment[k] = placed
    return BinPacking(assignment=assignment, loads=loads)
