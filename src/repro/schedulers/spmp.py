"""SpMP baseline: level grouping with point-to-point synchronisation [4].

SpMP keeps the wavefront structure but (a) *groups* the vertices of each
wavefront into ``p`` balanced per-core workloads and (b) replaces the global
barrier with point-to-point synchronisation between groups, letting a core
start its next group as soon as that group's cross-core dependences are
satisfied (the orange arrows of Figure 1(b)).

Following Park et al.'s implementation, each level is split into contiguous
cost-balanced row blocks (the matrix is level-permuted, so blocks are
ascending-id runs); the load-balance edge over plain Wavefront comes from
the *overlap*: a core starts its next block as soon as the blocks it
depends on are done, so imbalance within one level is absorbed by the next
instead of stalling at a barrier.  This is why SpMP holds the best
load-balance numbers in the paper's Figures 6/7.  Locality is still
wavefront-ordered, which is what HDagg improves on.

``lpt_assign`` (longest-processing-time-first greedy) is kept here as a
shared utility for schedulers that do scrambled balanced placement (DAGP's
quotient levels).
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import Schedule
from ..graph.dag import DAG
from ..passes.registry import run_scheduler_group
from .base import register_scheduler

__all__ = ["spmp_schedule", "lpt_assign"]


def lpt_assign(costs: np.ndarray, p: int) -> np.ndarray:
    """LPT greedy: items sorted by descending cost onto the least-loaded bin.

    Ties (equal loads / equal costs) resolve to the lowest bin / lowest item
    index so the result is deterministic.
    """
    order = np.argsort(-costs, kind="stable")
    loads = np.zeros(p, dtype=np.float64)
    assignment = np.empty(costs.shape[0], dtype=np.int64)
    for k in order:
        b = int(np.argmin(loads))
        assignment[k] = b
        loads[b] += costs[k]
    return assignment


@register_scheduler("spmp")
def spmp_schedule(g: DAG, cost: np.ndarray, p: int) -> Schedule:
    """Per-level contiguous cost-balanced groups, ``sync="p2p"``.

    Runs the ``"spmp"`` pass group (shared ``wavefronts`` pass + a
    p2p-sync emit pass — see :mod:`repro.passes.baselines`).
    """
    cost = np.asarray(cost, dtype=np.float64)
    return run_scheduler_group("spmp", g, cost, p)
