"""DAG import/export: edge-list files and Graphviz dot.

Inspector debugging lives and dies by being able to *look* at the DAG and
its schedule.  The dot export colours vertices by schedule level (and
optionally labels cores), so ``dot -Tsvg`` renders the same picture as the
paper's Figure 1/2 panels; the edge-list format round-trips DAGs through
plain text for fixtures and external tools.
"""

from __future__ import annotations

from os import PathLike
from typing import TYPE_CHECKING, Union

import numpy as np

from .dag import DAG

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports graph)
    from ..core.schedule import Schedule

__all__ = ["to_edge_list", "from_edge_list", "write_edge_list", "read_edge_list", "to_dot"]

_PALETTE = (
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3",
    "#fdb462", "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd",
)


def to_edge_list(g: DAG) -> str:
    """Serialise as ``n_vertices n_edges`` header plus one ``src dst`` per line."""
    lines = [f"{g.n} {g.n_edges}"]
    src, dst = g.edge_list()
    lines.extend(f"{int(s)} {int(d)}" for s, d in zip(src, dst))
    return "\n".join(lines) + "\n"


def from_edge_list(text: str) -> DAG:
    """Parse the :func:`to_edge_list` format."""
    rows = [ln.split() for ln in text.splitlines() if ln.strip() and not ln.startswith("#")]
    if not rows or len(rows[0]) != 2:
        raise ValueError("missing 'n m' header line")
    n, m = int(rows[0][0]), int(rows[0][1])
    if len(rows) - 1 != m:
        raise ValueError(f"declared {m} edges, found {len(rows) - 1}")
    if m == 0:
        return DAG.empty(n)
    src = np.array([int(r[0]) for r in rows[1:]], dtype=np.int64)
    dst = np.array([int(r[1]) for r in rows[1:]], dtype=np.int64)
    return DAG.from_edges(n, src, dst, dedup=False)


def write_edge_list(g: DAG, path: Union[str, PathLike]) -> None:
    """Write the edge-list format to disk."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(to_edge_list(g))


def read_edge_list(path: Union[str, PathLike]) -> DAG:
    """Read a DAG from an edge-list file."""
    with open(path, "r", encoding="ascii") as fh:
        return from_edge_list(fh.read())


def to_dot(g: DAG, schedule: "Schedule | None" = None, *, name: str = "dag") -> str:
    """Graphviz dot source; vertices coloured by schedule level when given.

    Node labels show ``id`` (and ``@core`` with a schedule); colours cycle
    through a categorical palette per coarsened wavefront.
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;", '  node [style=filled, shape=circle];']
    if schedule is not None:
        if schedule.n != g.n:
            raise ValueError("schedule does not match graph size")
        level = schedule.level_of()
        core = schedule.core_assignment()
        for v in range(g.n):
            colour = _PALETTE[int(level[v]) % len(_PALETTE)]
            lines.append(
                f'  {v} [label="{v}@{int(core[v])}", fillcolor="{colour}"];'
            )
        # group vertices of one level at the same rank for the familiar
        # wavefront layout
        for k in range(schedule.n_levels):
            members = np.nonzero(level == k)[0]
            if members.size:
                ranks = "; ".join(str(int(v)) for v in members)
                lines.append(f"  {{ rank=same; {ranks}; }}")
    else:
        for v in range(g.n):
            lines.append(f'  {v} [label="{v}", fillcolor="#dddddd"];')
    for s, d in g.iter_edges():
        lines.append(f"  {s} -> {d};")
    lines.append("}")
    return "\n".join(lines) + "\n"
