"""Vector-clock replay of executor traces: hand logs and real runs."""

import numpy as np
import pytest

from repro.analysis import TraceRecorder, check_trace
from repro.graph import DAG, dag_from_matrix_lower
from repro.kernels import KERNELS
from repro.runtime import run_threaded
from repro.schedulers import SCHEDULERS
from repro.sparse import lower_triangle


@pytest.fixture(scope="module")
def edge_dag():
    return DAG.from_edges(2, [0], [1])


def test_clean_p2p_trace(edge_dag):
    events = [(0, "exec", 0, 0), (1, "acquire", 1, 0), (2, "exec", 1, 1)]
    report = check_trace(events, edge_dag)
    assert report.ok and report.n_executed == 2
    assert "clean" in report.describe()


def test_clean_barrier_trace(edge_dag):
    events = [
        (0, "exec", 0, 0),
        (1, "barrier", 0, 0),
        (2, "barrier", 1, 0),
        (3, "exec", 1, 1),
    ]
    assert check_trace(events, edge_dag).ok


def test_unsynchronised_dependence_flagged(edge_dag):
    # both executed, no acquire and no barrier: nothing orders 0 before 1
    events = [(0, "exec", 0, 0), (1, "exec", 1, 1)]
    report = check_trace(events, edge_dag)
    assert not report.ok
    kinds = {v.kind for v in report.violations}
    assert "unordered-dependence" in kinds
    v = next(v for v in report.violations if v.kind == "unordered-dependence")
    assert (v.vertex, v.dependence) == (1, 0)
    assert "happens-before" in v.describe()


def test_same_core_program_order_suffices(edge_dag):
    # no explicit sync needed when producer and consumer share a core
    events = [(0, "exec", 0, 0), (1, "exec", 0, 1)]
    assert check_trace(events, edge_dag).ok


def test_missing_dependence_flagged(edge_dag):
    events = [(0, "exec", 1, 1), (1, "exec", 0, 0)]
    report = check_trace(events, edge_dag)
    assert not report.ok
    assert any(v.kind == "missing-dependence" for v in report.violations)


def test_duplicate_exec_flagged(edge_dag):
    events = [(0, "exec", 0, 0), (1, "exec", 1, 0), (2, "acquire", 1, 0), (3, "exec", 1, 1)]
    report = check_trace(events, edge_dag)
    assert any(v.kind == "duplicate-exec" and v.vertex == 0 for v in report.violations)


def test_never_executed_flagged(edge_dag):
    report = check_trace([(0, "exec", 0, 0)], edge_dag)
    assert any(v.kind == "never-executed" and v.vertex == 1 for v in report.violations)
    assert check_trace([(0, "exec", 0, 0)], edge_dag, expect_all=False).ok


def test_acquire_before_exec_flagged(edge_dag):
    events = [(0, "acquire", 1, 0), (1, "exec", 0, 0), (2, "exec", 1, 1)]
    report = check_trace(events, edge_dag)
    assert any(v.kind == "acquire-before-exec" for v in report.violations)


def test_barrier_mismatch_flagged(edge_dag):
    events = [(0, "exec", 0, 0), (1, "barrier", 0, 0), (2, "exec", 1, 1)]
    report = check_trace(events, edge_dag)
    assert any(v.kind == "barrier-mismatch" for v in report.violations)


def test_empty_trace_on_empty_dag():
    assert check_trace([], DAG.from_edges(0, [], [])).ok


def test_max_violations_caps_output():
    g = DAG.from_edges(6, [0, 1, 2, 3, 4], [1, 2, 3, 4, 5])
    # execute everything in reverse on alternating cores, no sync at all
    events = [(i, "exec", i % 2, 5 - i) for i in range(6)]
    report = check_trace(events, g, max_violations=2)
    assert not report.ok and len(report.violations) == 2


@pytest.mark.parametrize("algo", ["hdagg", "wavefront", "spmp", "lbc"])
def test_real_threaded_runs_replay_clean(algo, mesh_nd, rng):
    kernel = KERNELS["sptrsv"]
    low = lower_triangle(mesh_nd)
    g = kernel.dag(low)
    cost = kernel.cost(low)
    s = SCHEDULERS[algo](g, cost, 4)
    rec = TraceRecorder()
    run_threaded(s, g, lambda v: None, cost=cost, trace=rec, deadlock_timeout=15.0)
    report = check_trace(rec.events, g)
    assert report.ok, report.describe()
    assert report.n_executed == g.n
    assert len(rec) == report.n_events


def test_recorder_sequences_are_unique_and_monotone(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = SCHEDULERS["hdagg"](g, np.ones(g.n), 4)
    rec = TraceRecorder()
    run_threaded(s, g, lambda v: None, trace=rec)
    seqs = [e[0] for e in rec.events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
