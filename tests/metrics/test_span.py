"""Tests for the weighted critical path and the span-law bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DAG, dag_from_matrix_lower
from repro.kernels import KERNELS
from repro.metrics import span_speedup_bound, weighted_critical_path
from repro.runtime import LAPTOP4, simulate
from repro.schedulers import SCHEDULERS


def test_chain_span_is_total():
    g = DAG.from_edges(3, [0, 1], [1, 2])
    w = np.array([1.0, 2.0, 3.0])
    assert weighted_critical_path(g, w) == 6.0
    assert span_speedup_bound(g, w) == 1.0


def test_independent_vertices_span_is_max():
    g = DAG.empty(4)
    w = np.array([1.0, 5.0, 2.0, 2.0])
    assert weighted_critical_path(g, w) == 5.0
    assert span_speedup_bound(g, w) == 2.0


def test_diamond_takes_heavier_branch(diamond_dag):
    w = np.array([1.0, 10.0, 2.0, 1.0])
    assert weighted_critical_path(diamond_dag, w) == 12.0


def test_weights_validated(diamond_dag):
    with pytest.raises(ValueError):
        weighted_critical_path(diamond_dag, np.ones(2))


def test_empty_graph():
    assert weighted_critical_path(DAG.empty(0), np.zeros(0)) == 0.0


@given(st.integers(2, 20), st.integers(0, 40), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_span_bounds_all_topological_levels(n, m, seed):
    """Span >= the unweighted critical path times the min weight."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src < dst
    g = DAG.from_edges(n, src[keep], dst[keep])
    w = rng.uniform(0.5, 2.0, size=n)
    span = weighted_critical_path(g, w)
    from repro.graph import compute_wavefronts

    levels = compute_wavefronts(g).n_levels
    assert span >= levels * w.min() - 1e-9
    assert span <= float(w.sum()) + 1e-9


def test_simulated_compute_speedup_respects_span_law(mesh_nd):
    """No schedule beats total/span on pure compute cycles.

    The simulator's makespan includes memory and sync on top of compute,
    so the *compute-only* speedup bound must hold with room to spare.
    """
    kernel = KERNELS["spilu0"]
    g = kernel.dag(mesh_nd)
    cost = kernel.cost(mesh_nd)
    mem = kernel.memory_model(mesh_nd, g)
    bound = span_speedup_bound(g, cost)
    serial_compute = float(cost.sum()) * LAPTOP4.cycles_per_cost_unit
    for algo in ("hdagg", "spmp", "wavefront"):
        s = SCHEDULERS[algo](g, cost, LAPTOP4.n_cores)
        r = simulate(s, g, cost, mem, LAPTOP4)
        # makespan >= compute span (span law applied to the compute part)
        compute_span = (
            weighted_critical_path(g, cost) * LAPTOP4.cycles_per_cost_unit
        )
        assert r.makespan_cycles >= compute_span - 1e-6, algo
        # and the compute-only speedup never exceeds the theoretical bound
        assert serial_compute / r.makespan_cycles <= bound + 1e-9, algo
