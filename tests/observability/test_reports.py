"""Stage-share tables shared by trace reports and the perf-lab CLI."""

import pytest

from repro.observability.reports import stage_share_report, stage_share_rows


def test_rows_exclude_aggregates_with_children_present():
    rows = stage_share_rows({
        "inspect": 0.010,          # aggregate: lbp + coarsen are its children
        "inspect/lbp": 0.006,
        "inspect/coarsen": 0.002,
        "execute": 0.004,
    })
    names = [r[0] for r in rows]
    assert "inspect" not in names
    assert names == ["inspect/lbp", "execute", "inspect/coarsen"]  # by time
    assert sum(r[2] for r in rows) == pytest.approx(100.0)
    assert rows[0][2] == pytest.approx(50.0)


def test_rows_keep_aggregate_without_children():
    rows = stage_share_rows({"inspect": 0.010, "execute": 0.010})
    assert {r[0] for r in rows} == {"execute", "inspect"}
    assert all(r[2] == pytest.approx(50.0) for r in rows)


def test_all_zero_shares_do_not_divide_by_zero():
    rows = stage_share_rows({"a": 0.0, "b": 0.0})
    assert all(r[2] == 0.0 for r in rows)


def test_report_renders_table():
    text = stage_share_report({"inspect/lbp": 0.006, "execute": 0.004},
                              unit="ms")
    assert "Stage breakdown" in text
    assert "inspect/lbp" in text
    assert "ms" in text and "share %" in text
