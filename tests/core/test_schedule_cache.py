"""Tests for the structure-keyed schedule cache."""

import numpy as np
import pytest

from repro.core import ScheduleCache, hdagg, schedule_key
from repro.core.schedule_cache import CacheStats
from repro.graph import DAG, dag_from_matrix_lower
from repro.sparse import apply_ordering, lower_triangle, poisson2d


@pytest.fixture(scope="module")
def dag_and_cost():
    a, _ = apply_ordering(poisson2d(12, seed=3), "nd")
    g = dag_from_matrix_lower(lower_triangle(a))
    cost = np.ones(g.n)
    return g, cost


def test_hit_miss_counters(dag_and_cost):
    g, cost = dag_and_cost
    cache = ScheduleCache()
    key = schedule_key(g, kernel="sptrsv", p=4, epsilon=0.1)
    assert cache.get(key) is None
    assert cache.stats == CacheStats(hits=0, misses=1, entries=0)
    schedule = hdagg(g, cost, 4, 0.1)
    cache.put(key, schedule)
    assert cache.get(key) is schedule
    assert cache.stats.hits == 1 and cache.stats.entries == 1
    assert key in cache and len(cache) == 1


def test_get_or_build(dag_and_cost):
    g, cost = dag_and_cost
    cache = ScheduleCache()
    key = schedule_key(g, kernel="sptrsv", p=4, epsilon=0.1)
    calls = []

    def builder():
        calls.append(1)
        return hdagg(g, cost, 4, 0.1)

    s1 = cache.get_or_build(key, builder)
    s2 = cache.get_or_build(key, builder)
    assert s1 is s2 and len(calls) == 1


def test_key_sensitive_to_parameters(dag_and_cost):
    g, _ = dag_and_cost
    base = schedule_key(g, kernel="sptrsv", p=4, epsilon=0.1)
    assert schedule_key(g, kernel="sptrsv", p=4, epsilon=0.2) != base
    assert schedule_key(g, kernel="sptrsv", p=8, epsilon=0.1) != base
    assert schedule_key(g, kernel="spic0", p=4, epsilon=0.1) != base
    assert schedule_key(g, kernel="sptrsv", algorithm="lbc", p=4, epsilon=0.1) != base
    assert (
        schedule_key(g, kernel="sptrsv", p=4, epsilon=0.1, options={"cap": 0.5}) != base
    )
    # same inputs -> same key (deterministic digest)
    assert schedule_key(g, kernel="sptrsv", p=4, epsilon=0.1) == base


def test_key_sensitive_to_one_edge(dag_and_cost):
    g, _ = dag_and_cost
    src, dst = g.edge_list()
    assert g.n_edges > 0
    g_minus = DAG.from_edges(g.n, src[:-1], dst[:-1])  # drop one edge
    k1 = schedule_key(g, kernel="sptrsv", p=4, epsilon=0.1)
    k2 = schedule_key(g_minus, kernel="sptrsv", p=4, epsilon=0.1)
    assert k1 != k2


def test_key_sensitive_to_cost_when_given(dag_and_cost):
    g, cost = dag_and_cost
    k1 = schedule_key(g, kernel="sptrsv", p=4, cost=cost)
    k2 = schedule_key(g, kernel="sptrsv", p=4, cost=cost * 2.0)
    assert k1 != k2


def test_cached_schedule_passes_dependence_validation(dag_and_cost):
    g, cost = dag_and_cost
    cache = ScheduleCache()
    key = schedule_key(g, kernel="sptrsv", p=4, epsilon=0.1)
    cache.put(key, hdagg(g, cost, 4, 0.1))
    cached = cache.get(key)
    cached.validate(g)  # structural + dependence safety must hold


def test_lru_eviction():
    cache = ScheduleCache(max_entries=2)
    a = DAG.from_edges(3, [0, 1], [1, 2])
    b = DAG.from_edges(3, [0], [2])
    c = DAG.from_edges(3, [1], [2])
    cost = np.ones(3)
    keys = [schedule_key(g, p=2) for g in (a, b, c)]
    for g, k in zip((a, b, c), keys):
        cache.put(k, hdagg(g, cost, 2))
    assert len(cache) == 2
    assert keys[0] not in cache  # oldest evicted
    assert keys[1] in cache and keys[2] in cache
    cache.get(keys[1])  # refresh 1 -> 2 becomes LRU
    cache.put(keys[0], hdagg(a, cost, 2))
    assert keys[2] not in cache and keys[1] in cache


def test_invalid_max_entries():
    with pytest.raises(ValueError):
        ScheduleCache(max_entries=0)


def test_clear_resets():
    cache = ScheduleCache()
    g = DAG.from_edges(2, [0], [1])
    k = schedule_key(g, p=1)
    cache.put(k, hdagg(g, np.ones(2), 1))
    cache.get(k)
    cache.get("missing")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats == CacheStats(hits=0, misses=0, entries=0)
