"""Tests for schedule serialization (to_dict / from_dict)."""

import json

import numpy as np
import pytest

from repro.core import Schedule, hdagg
from repro.graph import dag_from_matrix_lower
from repro.kernels import KERNELS
from repro.schedulers import SCHEDULERS


@pytest.mark.parametrize("algo", ["hdagg", "wavefront", "spmp", "lbc", "dagp"])
def test_roundtrip_through_json(algo, mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    cost = KERNELS["spilu0"].cost(mesh_nd)
    s = SCHEDULERS[algo](g, cost, 4)
    blob = json.loads(json.dumps(s.to_dict()))
    s2 = Schedule.from_dict(blob)
    s2.validate(g)
    assert s2.algorithm == s.algorithm
    assert s2.sync == s.sync
    assert s2.n_cores == s.n_cores
    assert s2.fine_grained == s.fine_grained
    assert s2.execution_order().tolist() == s.execution_order().tolist()
    assert s2.core_assignment().tolist() == s.core_assignment().tolist()


def test_meta_filtered_to_json_safe(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = hdagg(g, np.ones(g.n), 4)
    s.meta["array"] = np.arange(3)  # not JSON-safe: must be dropped
    blob = s.to_dict()
    assert "array" not in blob["meta"]
    assert "epsilon" in blob["meta"]
    json.dumps(blob)  # must not raise


def test_from_dict_defaults():
    blob = {
        "n": 2,
        "sync": "barrier",
        "algorithm": "x",
        "n_cores": 1,
        "levels": [[{"core": 0, "vertices": [0, 1]}]],
    }
    s = Schedule.from_dict(blob)
    assert not s.fine_grained
    assert s.meta == {}
    assert s.n_partitions == 1


def test_executor_accepts_deserialized(mesh_nd, rng):
    kernel = KERNELS["sptrsv"]
    from repro.sparse import lower_triangle

    low = lower_triangle(mesh_nd)
    g = kernel.dag(low)
    s = Schedule.from_dict(hdagg(g, kernel.cost(low), 4).to_dict())
    b = rng.normal(size=mesh_nd.n_rows)
    got = kernel.execute_in_order(low, s.execution_order(), b)
    np.testing.assert_allclose(got, kernel.reference(low, b), rtol=1e-10)
