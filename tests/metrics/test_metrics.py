"""Tests for the metrics layer."""

import math

import numpy as np
import pytest

from repro.core.schedule import Schedule, WidthPartition
from repro.graph import DAG, dag_from_matrix_lower
from repro.metrics import (
    avg_nnz_per_wavefront,
    average_parallelism,
    barrier_equivalent,
    dag_shape,
    equivalent_p2p_syncs,
    imbalance_ratio,
    inspector_cost_model,
    level_widths,
    linear_fit,
    locality_improvement,
    measured_pg,
    nre,
    r_squared,
    sync_improvement,
    two_hop_ops,
)
from repro.runtime.simulator import SimulationResult


def fake_result(**kw):
    defaults = dict(
        algorithm="x", machine="m", makespan_cycles=100.0,
        core_busy_cycles=np.array([10.0, 10.0]), hits=5, misses=5,
        n_barriers=0, n_p2p_syncs=0, sync_cycles=0.0,
        hit_cycles=4.0, miss_cycles=100.0,
    )
    defaults.update(kw)
    return SimulationResult(**defaults)


class TestLoadBalance:
    def test_measured_pg(self):
        r = fake_result(core_busy_cycles=np.array([10.0, 0.0]))
        assert measured_pg(r) == pytest.approx(0.5)

    def test_level_widths(self):
        s = Schedule(
            n=3,
            levels=[
                [WidthPartition(0, np.array([0])), WidthPartition(1, np.array([1]))],
                [WidthPartition(0, np.array([2]))],
            ],
            sync="barrier", algorithm="t", n_cores=2,
        )
        assert level_widths(s).tolist() == [2, 1]
        assert imbalance_ratio(s) == pytest.approx(0.5)
        assert imbalance_ratio(s, p=1) == 0.0

    def test_imbalance_ratio_empty(self):
        s = Schedule(n=0, levels=[], sync="barrier", algorithm="t", n_cores=2)
        assert imbalance_ratio(s) == 0.0


class TestLocalityAndSync:
    def test_latency_formula(self):
        r = fake_result(hits=3, misses=1)
        assert r.avg_memory_access_latency == pytest.approx((3 * 4 + 100) / 4)

    def test_locality_improvement(self):
        h = fake_result(hits=9, misses=1)
        b = fake_result(hits=1, misses=9)
        assert locality_improvement(h, b) > 1.0
        assert locality_improvement(b, h) < 1.0

    def test_barrier_equivalent(self):
        assert barrier_equivalent(3, 8) == pytest.approx(3 * 8 * 3)
        assert barrier_equivalent(1, 1) == 1.0  # log floor at 1

    def test_equivalent_p2p(self):
        r = fake_result(n_barriers=2, n_p2p_syncs=7)
        assert equivalent_p2p_syncs(r, 4) == pytest.approx(2 * 4 * 2 + 7)

    def test_sync_improvement(self):
        h = fake_result(n_barriers=1)
        b = fake_result(n_barriers=10)
        assert sync_improvement(h, b, 4) == pytest.approx(10.0)


class TestParallelism:
    def test_average_parallelism_chain(self):
        g = DAG.from_edges(4, [0, 1, 2], [1, 2, 3])
        assert average_parallelism(g) == 1.0

    def test_average_parallelism_wide(self):
        assert average_parallelism(DAG.empty(6)) == 6.0

    def test_avg_nnz_per_wavefront(self, mesh):
        g = dag_from_matrix_lower(mesh)
        val = avg_nnz_per_wavefront(mesh, g)
        assert val == pytest.approx(mesh.nnz / dag_shape(g).n_wavefronts)

    def test_dag_shape(self, mesh):
        g = dag_from_matrix_lower(mesh)
        shape = dag_shape(g)
        assert shape.n_vertices == g.n
        assert shape.n_edges == g.n_edges
        assert shape.max_wavefront >= 1
        assert shape.average_parallelism * shape.n_wavefronts == pytest.approx(g.n)

    def test_dag_shape_empty(self):
        shape = dag_shape(DAG.empty(0))
        assert shape.n_vertices == 0


class TestNRE:
    def test_equation_two(self):
        serial = fake_result(makespan_cycles=1000.0)
        par = fake_result(makespan_cycles=500.0)
        assert nre(2500.0, serial, par) == pytest.approx(5.0)

    def test_no_gain_is_inf(self):
        serial = fake_result(makespan_cycles=100.0)
        par = fake_result(makespan_cycles=150.0)
        assert math.isinf(nre(10.0, serial, par))

    def test_two_hop_ops_counts_grandparents(self, diamond_dag):
        assert two_hop_ops(diamond_dag) > diamond_dag.n_edges

    def test_cost_model_orderings(self, mesh_nd):
        """DAGP's modelled inspector dwarfs the others; wavefront is cheapest
        (the paper's Figure 9 ordering)."""
        g = dag_from_matrix_lower(mesh_nd)
        costs = {a: inspector_cost_model(a, g) for a in
                 ("wavefront", "spmp", "lbc", "hdagg", "dagp", "mkl")}
        assert costs["dagp"] > 20 * max(costs[a] for a in ("wavefront", "spmp", "lbc", "hdagg"))
        assert inspector_cost_model("serial", g) == 0.0
        assert all(c > 0 for c in costs.values())

    def test_cost_model_unknown(self, diamond_dag):
        with pytest.raises(ValueError):
            inspector_cost_model("bogus", diamond_dag)


class TestCorrelation:
    def test_perfect_line(self):
        x = np.arange(10.0)
        fit = linear_fit(x, 2 * x + 1)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        np.testing.assert_allclose(fit.predict([0, 1]), [1.0, 3.0])

    def test_noise_reduces_r2(self, rng):
        x = np.linspace(0, 1, 50)
        y = x + rng.normal(0, 0.5, 50)
        assert 0.0 <= r_squared(x, y) < 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [1.0])
        with pytest.raises(ValueError):
            linear_fit([1.0, 1.0], [1.0, 2.0])  # constant x
        with pytest.raises(ValueError):
            linear_fit([1.0, 2.0], [1.0])
