"""Step 1 of HDagg: aggregating densely connected vertices.

Algorithm 1, Lines 1-20.  After removing transitive edges (two-hop
approximation), densely connected regions of the DAG become subtrees.  A
modified BFS grows each subtree from a *sink* vertex: a vertex ``v``'s
parents join ``v``'s group when ``{v} ∪ parents(v)`` forms a tree — i.e.
every parent has exactly one outgoing edge (necessarily into the group).
Parents that fail the test are seeded as sinks of their own future groups.

**Group-size cap.**  On inputs whose reduced DAG *is* a tree (chordal
patterns — e.g. the filled factor of a complete Cholesky — reduce exactly
to the elimination tree), the literal Lines 2-19 would absorb the entire
tree into a single group and serialise the whole kernel.  The paper never
meets this case (its kernels run on no-fill patterns), but a production
aggregator must: ``max_group_cost`` stops a group from growing beyond a
fraction of one core's fair share, so aggregation buys locality without
destroying the parallelism step 2 needs.  Pass ``None`` to reproduce the
uncapped paper listing.

The resulting :class:`~repro.graph.coarsen.Grouping` guarantees:

* groups are disjoint and cover every vertex;
* within a group, only the seed (group sink) may have out-edges leaving the
  group — every other member's single out-edge stays inside;
* consequently the coarsened DAG ``G''`` is acyclic (any quotient cycle
  would need an edge leaving a non-sink member).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph.coarsen import Grouping, grouping_from_groups
from ..graph.dag import DAG
from ..graph.transitive_reduction import transitive_reduction_two_hop

__all__ = ["aggregate_densely_connected", "subtree_grouping"]


def subtree_grouping(
    g_reduced: DAG,
    cost: np.ndarray | None = None,
    max_group_cost: float | None = None,
) -> Grouping:
    """Grow subtree groups on an (already reduced) DAG — Lines 2-19.

    With ``cost`` and ``max_group_cost`` set, a group stops absorbing
    parents once its accumulated cost would exceed the cap (the parents are
    seeded as new groups instead); see the module docstring.
    """
    n = g_reduced.n
    out_deg = g_reduced.out_degree()
    visited = np.zeros(n, dtype=bool)
    capped = cost is not None and max_group_cost is not None

    trees: List[List[int]] = []
    tree_costs: List[float] = []
    sinks = g_reduced.sinks()
    visited[sinks] = True
    for s in sinks:
        trees.append([int(s)])
        tree_costs.append(float(cost[s]) if capped else 0.0)

    t = 0
    while t < len(trees):  # T grows while we iterate (Line 3)
        h = trees[t]
        j = 0
        while j < len(h):  # H grows while we iterate (Line 5)
            v = h[j]
            parents = g_reduced.parents(v)
            if parents.shape[0]:
                unvisited = parents[~visited[parents]]
                # {v} ∪ A is a tree iff every parent has out-degree 1 (its
                # single edge is the one into v) and none is claimed by
                # another group already.
                mergeable = (
                    unvisited.shape[0] == parents.shape[0]
                    and np.all(out_deg[parents] == 1)
                )
                if mergeable and capped:
                    added = float(cost[parents].sum())
                    if tree_costs[t] + added > max_group_cost:
                        mergeable = False
                    else:
                        tree_costs[t] += added
                if mergeable:
                    visited[parents] = True
                    h.extend(int(x) for x in parents)
                else:
                    for c in parents:
                        ci = int(c)
                        if not visited[ci]:
                            visited[ci] = True
                            trees.append([ci])  # new sink seed (Line 13)
                            tree_costs.append(float(cost[ci]) if capped else 0.0)
            j += 1
        t += 1

    if not bool(visited.all()):
        # Unreached vertices can only occur on graphs with no sink below
        # them, impossible on a finite DAG — guard against misuse with a
        # clear error instead of a silent partial grouping.
        raise ValueError("subtree grouping did not cover the graph; input may be cyclic")
    # Number groups by smallest member id, not BFS discovery order: step 2
    # orders components and bins "smallest ID first" (Section IV-C), which
    # only yields spatial locality if coarse ids track original ids.
    trees.sort(key=min)
    return grouping_from_groups(n, trees)


def aggregate_densely_connected(
    g: DAG,
    cost: np.ndarray | None = None,
    max_group_cost: float | None = None,
) -> tuple[DAG, Grouping]:
    """Full step 1: transitive reduction + subtree grouping (Lines 1-20).

    Returns ``(g_reduced, grouping)``; the caller builds the coarsened DAG
    ``G''`` from them via :func:`repro.graph.coarsen.coarsen_dag`.
    """
    g_reduced = transitive_reduction_two_hop(g)
    return g_reduced, subtree_grouping(g_reduced, cost, max_group_cost)
