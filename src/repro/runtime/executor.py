"""Schedule-driven execution of real kernel numerics.

Python threads cannot exhibit real parallel speedups (GIL), so the executor
validates the *correctness* contract of a schedule instead: any interleaving
of the width-partitions of one level, with each partition's vertices in
order, must compute the same result as the sequential kernel.  Two
interleavings are provided:

* :func:`execute_schedule` — the canonical order (levels, then partitions,
  then vertices);
* :func:`interleaved_order` — a seeded pseudo-random round-robin across the
  partitions of each level, emulating an adversarial concurrent timing.

Both go through the kernels' dependence-checking ``execute_in_order``, which
raises on any violated dependence, so a schedule bug cannot silently produce
a correct-looking number.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import Schedule
from ..kernels.base import SparseKernel
from ..sparse.csr import CSRMatrix, INDEX_DTYPE

__all__ = ["execute_schedule", "interleaved_order"]


def interleaved_order(schedule: Schedule, *, seed: int = 0) -> np.ndarray:
    """A randomised order consistent with the schedule's concurrency.

    Within each level, one vertex is drawn at a time from a randomly chosen
    still-active partition (partitions advance front to back, as the cores
    would).  Levels remain strictly ordered.  For ``sync="p2p"`` schedules
    this is *more* conservative than the runtime allows (no cross-level
    overlap), which is the safe direction for a correctness check.
    """
    rng = np.random.default_rng(seed)
    chunks = []
    for level in schedule.levels:
        cursors = [0] * len(level)
        remaining = [part.size for part in level]
        total = sum(remaining)
        out = np.empty(total, dtype=INDEX_DTYPE)
        filled = 0
        active = [k for k, r in enumerate(remaining) if r]
        while active:
            k = active[int(rng.integers(len(active)))]
            part = level[k]
            out[filled] = part.vertices[cursors[k]]
            filled += 1
            cursors[k] += 1
            if cursors[k] == part.size:
                active.remove(k)
        chunks.append(out)
    if not chunks:
        return np.empty(0, dtype=INDEX_DTYPE)
    return np.concatenate(chunks)


def execute_schedule(
    kernel: SparseKernel,
    a: CSRMatrix,
    schedule: Schedule,
    b: np.ndarray | None = None,
    *,
    interleave_seed: int | None = None,
):
    """Run ``kernel`` on ``a`` following ``schedule``.

    With ``interleave_seed`` set, uses a randomised level-consistent
    interleaving instead of the canonical order.  Dependence violations
    raise :class:`repro.kernels.base.KernelError`.
    """
    if interleave_seed is None:
        order = schedule.execution_order()
    else:
        order = interleaved_order(schedule, seed=interleave_seed)
    return kernel.execute_in_order(a, order, b)
