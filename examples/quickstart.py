#!/usr/bin/env python
"""Quickstart: the paper's Listing 2 driver, in Python.

Builds an SPD matrix, runs the HDagg inspector for SpILU0, executes the
factorisation through the schedule, verifies it, and reports the simulated
speedup over sequential execution on the paper's 20-core machine model.

Run:  python examples/quickstart.py [path/to/matrix.mtx]
"""

import sys

from repro import INTEL20, SpILU0, hdagg, simulate
from repro.schedulers import serial_schedule
from repro.sparse import apply_ordering, poisson2d, read_matrix_market


def main() -> None:
    # ---------------- load the input matrix -------------------------
    if len(sys.argv) > 1:
        a = read_matrix_market(sys.argv[1])
        print(f"loaded {sys.argv[1]}: n={a.n_rows}, nnz={a.nnz}")
    else:
        a = poisson2d(64, seed=7)
        print(f"generated poisson2d(64): n={a.n_rows}, nnz={a.nnz}")
    a, _ = apply_ordering(a, "nd")  # the paper's METIS pre-pass

    kernel = SpILU0()

    # ---------------- inspector (Listing 2) -------------------------
    g = kernel.dag(a)  # Graph G = ILU0.DAG(A)
    c = kernel.cost(a)  # Cost  C = ILU0.cost(A)
    schedule = hdagg(g, c, INTEL20.n_cores)  # S = HDagg(G, C, p, eps)
    schedule.validate(g)
    print(
        f"HDagg: {schedule.meta['n_wavefronts']} wavefronts -> "
        f"{schedule.n_levels} coarsened wavefronts, "
        f"{schedule.n_partitions} width-partitions"
        f"{' (fine-grained)' if schedule.fine_grained else ''}"
    )

    # ---------------- executor --------------------------------------
    factor = kernel.execute_in_order(a, schedule.execution_order())
    defect = kernel.verify(a, factor)
    print(f"ILU(0) factor computed through the schedule; defect = {defect:.2e}")

    # ---------------- simulated performance -------------------------
    memory = kernel.memory_model(a, g)
    serial = simulate(serial_schedule(g, c), g, c, memory, INTEL20.scaled(1))
    parallel = simulate(schedule, g, c, memory, INTEL20)
    print(
        f"simulated on {INTEL20.name}: speedup {serial.makespan_cycles / parallel.makespan_cycles:.2f}x, "
        f"avg memory latency {parallel.avg_memory_access_latency:.1f} cycles, "
        f"potential gain {parallel.potential_gain:.2f}, "
        f"{parallel.n_barriers} barriers"
    )


if __name__ == "__main__":
    main()
