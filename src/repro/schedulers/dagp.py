"""DAGP baseline: acyclic DAG partitioning that minimises edge cut [1].

DAGP partitions the vertices into ``k`` parts (the paper reports ``k = 1000``
as the best-performing configuration) such that the quotient graph stays
acyclic and the number of cut edges is small; parts execute atomically, so
data reuse inside a part is excellent but the dependences *between* parts
serialise execution — "the partitioned graph of DAGP has restricted average
parallelism" (Section I), which is the weakness the evaluation exposes.

Reproduction note (DESIGN.md): the original DAGP is a multilevel
coarsen-partition-refine code.  We substitute a recursive acyclic bisection
with the same contract and the same failure mode:

* if the current vertex set is disconnected, split it by distributing whole
  components (zero cut — what any edge-cut minimiser does first);
* otherwise split at a cost-balanced *topological prefix* (acyclic by
  construction; on id-topological kernel DAGs, an id prefix), which keeps
  parts contiguous and reuse-friendly.

The quotient DAG's wavefronts become the schedule levels with parts
LPT-assigned to cores; independent partitions of one quotient level run in
parallel and a barrier separates levels, matching the paper's description
("independent partitions are scheduled to execute in parallel" — and the
depth of the quotient is precisely DAGP's restricted-parallelism weakness).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.schedule import Schedule, WidthPartition
from ..graph.connected_components import components_as_lists
from ..graph.dag import DAG
from ..graph.wavefronts import level_of_vertices
from ..passes.registry import run_scheduler_group
from ..sparse.csr import INDEX_DTYPE
from .base import register_scheduler

__all__ = ["dagp_schedule", "dagp_body", "acyclic_partition", "edge_cut"]

#: The paper's best-performing part count for DAGP.
DEFAULT_K = 1000


def _split_components(
    comps: List[np.ndarray], cost: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Distribute whole components into two cost-balanced halves (greedy)."""
    weights = np.array([float(cost[c].sum()) for c in comps])
    order = np.argsort(-weights, kind="stable")
    loads = [0.0, 0.0]
    sides: List[List[np.ndarray]] = [[], []]
    for k in order:
        side = 0 if loads[0] <= loads[1] else 1
        sides[side].append(comps[int(k)])
        loads[side] += weights[k]
    left = np.sort(np.concatenate(sides[0])) if sides[0] else np.empty(0, dtype=INDEX_DTYPE)
    right = np.sort(np.concatenate(sides[1])) if sides[1] else np.empty(0, dtype=INDEX_DTYPE)
    return left, right


def acyclic_partition(g: DAG, cost: np.ndarray, k: int) -> np.ndarray:
    """Partition vertices into at most ``k`` parts; returns per-vertex labels.

    Guarantees an acyclic quotient: every split either separates whole
    components (no edges) or cuts at a topological prefix (edges one-way).
    Part ids are dense, ordered by smallest member vertex.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    cost = np.asarray(cost, dtype=np.float64)
    labels = np.zeros(g.n, dtype=INDEX_DTYPE)
    next_label = [0]

    def rec(verts: np.ndarray, parts: int) -> None:
        if parts <= 1 or verts.shape[0] <= 1:
            labels[verts] = next_label[0]
            next_label[0] += 1
            return
        comps = components_as_lists(g, verts)
        if len(comps) > 1:
            left, right = _split_components(comps, cost)
        else:
            # topological prefix at half the cost (ids are topological)
            c = cost[verts]
            total = float(c.sum())
            if total <= 0:
                mid = verts.shape[0] // 2
            else:
                mid = int(np.searchsorted(np.cumsum(c), total / 2.0)) + 1
                mid = min(max(mid, 1), verts.shape[0] - 1)
            left, right = verts[:mid], verts[mid:]
        if left.shape[0] == 0 or right.shape[0] == 0:
            labels[verts] = next_label[0]
            next_label[0] += 1
            return
        half = parts // 2
        rec(left, parts - half)
        rec(right, half)

    verts = np.arange(g.n, dtype=INDEX_DTYPE)
    rec(verts, min(k, g.n))
    # densify by smallest member id
    first_member = np.full(next_label[0], g.n, dtype=INDEX_DTYPE)
    np.minimum.at(first_member, labels, verts)
    order = np.argsort(first_member, kind="stable")
    remap = np.empty(next_label[0], dtype=INDEX_DTYPE)
    remap[order] = np.arange(next_label[0], dtype=INDEX_DTYPE)
    return remap[labels]


def edge_cut(g: DAG, labels: np.ndarray) -> int:
    """Number of DAG edges whose endpoints lie in different parts."""
    src, dst = g.edge_list()
    return int(np.count_nonzero(labels[src] != labels[dst]))


@register_scheduler("dagp")
def dagp_schedule(g: DAG, cost: np.ndarray, p: int, k: int = DEFAULT_K) -> Schedule:
    """Partition into ``k`` parts, then list-schedule the quotient DAG.

    Runs the ``"dagp"`` pass group, whose single
    ``dagp-partition-quotient`` pass is :func:`dagp_body`.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if g.n == 0:
        return Schedule(n=0, levels=[], sync="barrier", algorithm="dagp", n_cores=p)
    return run_scheduler_group("dagp", g, cost, p, options={"k": k})


def dagp_body(g: DAG, cost: np.ndarray, p: int, k: int) -> Schedule:
    """The DAGP algorithm proper (the ``dagp-partition-quotient`` pass)."""
    labels = acyclic_partition(g, cost, k)
    n_parts = int(labels.max()) + 1

    # Quotient DAG and its wavefront levels.
    src, dst = g.edge_list()
    keep = labels[src] != labels[dst]
    quotient = DAG.from_edges(n_parts, labels[src][keep], labels[dst][keep], dedup=True)
    qlevel = level_of_vertices(quotient)

    part_cost = np.zeros(n_parts, dtype=np.float64)
    np.add.at(part_cost, labels, cost)
    members: List[List[int]] = [[] for _ in range(n_parts)]
    for v in range(g.n):
        members[int(labels[v])].append(v)

    # Core assignment follows Figure 1(d): a part with dependences executes
    # on the core of its (heaviest-cut) predecessor — partitions connected
    # by dependences cluster on one core, so a level's effective width is
    # the number of independent chains, not min(width, p).  Sources go to
    # the least-loaded core.
    part_core = np.full(n_parts, -1, dtype=INDEX_DTYPE)
    core_loads = np.zeros(p, dtype=np.float64)
    pred_of = np.full(n_parts, -1, dtype=INDEX_DTYPE)
    if np.any(keep):
        cut_src, cut_dst = labels[src][keep], labels[dst][keep]
        # heaviest predecessor = the one contributing the most cut edges
        pair, counts = np.unique(
            np.stack([cut_dst, cut_src], axis=1), axis=0, return_counts=True
        )
        best_count = np.zeros(n_parts, dtype=np.int64)
        for (d_part, s_part), cnt in zip(pair.tolist(), counts.tolist()):
            if cnt > best_count[d_part]:
                best_count[d_part] = cnt
                pred_of[d_part] = s_part

    levels = []
    for lev in range(int(qlevel.max()) + 1 if n_parts else 0):
        parts_here = np.nonzero(qlevel == lev)[0]
        # heavier parts claim their preferred core first
        order = parts_here[np.argsort(-part_cost[parts_here], kind="stable")]
        by_core: dict[int, List[int]] = {}
        for part_id in order:
            pred = pred_of[part_id]
            core = int(part_core[pred]) if pred >= 0 else int(np.argmin(core_loads))
            part_core[part_id] = core
            core_loads[core] += part_cost[part_id]
            by_core.setdefault(core, []).extend(members[int(part_id)])
        parts = [
            WidthPartition(core=core, vertices=np.sort(np.array(vs, dtype=INDEX_DTYPE)))
            for core, vs in sorted(by_core.items())
        ]
        levels.append(parts)

    return Schedule(
        n=g.n,
        levels=levels,
        sync="barrier",
        algorithm="dagp",
        n_cores=p,
        meta={
            "k_requested": k,
            "n_parts": n_parts,
            "edge_cut": edge_cut(g, labels),
            "n_quotient_levels": int(qlevel.max()) + 1,
        },
    )
