"""Tests for the strong-scaling and epsilon sweeps."""

import numpy as np
import pytest

from repro.kernels import KERNELS
from repro.runtime import LAPTOP4
from repro.sparse import apply_ordering, poisson2d
from repro.suite import epsilon_sensitivity, strong_scaling


@pytest.fixture(scope="module")
def problem():
    a, _ = apply_ordering(poisson2d(24, seed=2), "nd")
    kernel = KERNELS["spilu0"]
    g = kernel.dag(a)
    return g, kernel.cost(a), kernel.memory_model(a, g)


def test_strong_scaling_points(problem):
    g, cost, mem = problem
    pts = strong_scaling(g, cost, mem, LAPTOP4,
                         algorithms=("hdagg", "wavefront"),
                         core_counts=(1, 2, 4))
    assert len(pts) == 6
    by = {(p.algorithm, p.n_cores): p for p in pts}
    for algo in ("hdagg", "wavefront"):
        assert by[(algo, 4)].speedup >= by[(algo, 1)].speedup
        for p in (1, 2, 4):
            pt = by[(algo, p)]
            assert pt.efficiency == pytest.approx(pt.speedup / p)
            assert 0 <= pt.potential_gain < 1


def test_strong_scaling_single_core_near_serial(problem):
    g, cost, mem = problem
    (pt,) = strong_scaling(g, cost, mem, LAPTOP4,
                           algorithms=("hdagg",), core_counts=(1,))
    assert 0.5 <= pt.speedup <= 1.6


def test_epsilon_sensitivity(problem):
    g, cost, mem = problem
    rows = epsilon_sensitivity(g, cost, mem, LAPTOP4, epsilons=(0.05, 0.3, 0.9))
    assert [r["epsilon"] for r in rows] == [0.05, 0.3, 0.9]
    # looser epsilon merges at least as much
    assert rows[-1]["n_levels"] <= rows[0]["n_levels"]
    for r in rows:
        assert r["speedup"] > 0
