"""Tests for vertex grouping and DAG coarsening."""

import numpy as np
import pytest

from repro.graph import (
    DAG,
    Grouping,
    coarsen_dag,
    grouping_from_groups,
    grouping_from_labels,
    identity_grouping,
    is_acyclic,
)


def test_grouping_from_labels_densifies():
    g = grouping_from_labels(np.array([5, 5, 9, 5]))
    assert g.n_groups == 2
    assert g.labels.tolist() == [0, 0, 1, 0]
    assert [x.tolist() for x in g.groups] == [[0, 1, 3], [2]]


def test_grouping_from_groups():
    g = grouping_from_groups(4, [[2, 0], [1], [3]])
    assert g.labels.tolist() == [0, 1, 0, 2]
    assert g.groups[0].tolist() == [0, 2]
    g.validate()


def test_grouping_overlap_rejected():
    with pytest.raises(ValueError, match="overlap"):
        grouping_from_groups(3, [[0, 1], [1, 2]])


def test_grouping_cover_required():
    with pytest.raises(ValueError, match="cover"):
        grouping_from_groups(3, [[0], [2]])


def test_identity_grouping():
    g = identity_grouping(3)
    assert g.n_groups == 3
    g.validate()


def test_group_sizes_and_costs():
    g = grouping_from_groups(4, [[0, 1, 2], [3]])
    assert g.group_sizes().tolist() == [3, 1]
    costs = g.group_costs(np.array([1.0, 2.0, 3.0, 4.0]))
    assert costs.tolist() == [6.0, 4.0]


def test_coarsen_diamond(diamond_dag):
    grouping = grouping_from_groups(4, [[0, 1], [2], [3]])
    g2 = coarsen_dag(diamond_dag, grouping)
    assert g2.n == 3
    # intra-group edge 0->1 dropped; edges dedup to {g0->g1, g0->g2, g1->g2}
    assert set(g2.iter_edges()) == {(0, 1), (0, 2), (1, 2)}


def test_coarsen_keeps_acyclic_for_convex_groups(kite):
    from repro.core.aggregation import aggregate_densely_connected
    from repro.graph import dag_from_matrix_lower

    g = dag_from_matrix_lower(kite)
    g_red, grouping = aggregate_densely_connected(g)
    grouping.validate()
    g2 = coarsen_dag(g_red, grouping)
    assert is_acyclic(g2)
    assert g2.n == grouping.n_groups


def test_coarsen_identity_is_same_graph(diamond_dag):
    g2 = coarsen_dag(diamond_dag, identity_grouping(4))
    assert g2 == DAG.from_edges(4, *map(list, zip(*diamond_dag.iter_edges())))


def test_coarsen_all_into_one():
    g = DAG.from_edges(3, [0, 1], [1, 2])
    g2 = coarsen_dag(g, grouping_from_groups(3, [[0, 1, 2]]))
    assert g2.n == 1
    assert g2.n_edges == 0
