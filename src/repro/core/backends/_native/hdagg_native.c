/* hdagg_native.c — compiled tier of the inspector backend registry.
 *
 * Plain C99, no Python.h: the library is loaded through ctypes
 * (repro.core.backends.native) and compiled with a stock gcc
 * (repro.core.backends.build), so environments without build tooling
 * simply run the numpy tier.
 *
 * Covers the two stages that dominate inspector wall time on mesh
 * matrices: LBP wavefront coarsening (hd_wavefronts + hd_lbp) and DAG
 * coarsening with group costs (hd_coarsen).
 *
 * BIT-IDENTITY CONTRACT: every float produced here must equal the numpy
 * fast path ulp for ulp.  That pins three things:
 *   - summation order: pairwise_sum() replicates numpy's pairwise
 *     reduction (sequential < 8, 8-way unrolled <= 128, recursive
 *     halving above with the split rounded down to a multiple of 8);
 *   - first-fit packing applies loads in item order with the same
 *     adaptive-target expression;
 *   - the accumulated-PGP reduction adds per-wavefront means/maxes
 *     sequentially, like the Python sum() it mirrors.
 * Compile with -ffp-contract=off (no FMA contraction) and without
 * -ffast-math (no reassociation); build.py enforces both.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;

/* ------------------------------------------------------------------ */
/* numpy-identical pairwise summation                                  */
/* ------------------------------------------------------------------ */
static double pairwise_sum(const double *a, i64 n)
{
    if (n < 8) {
        double res = 0.0;
        for (i64 i = 0; i < n; i++)
            res += a[i];
        return res;
    }
    if (n <= 128) {
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        i64 i;
        for (i = 8; i < n - (n % 8); i += 8) {
            r0 += a[i + 0];
            r1 += a[i + 1];
            r2 += a[i + 2];
            r3 += a[i + 3];
            r4 += a[i + 4];
            r5 += a[i + 5];
            r6 += a[i + 6];
            r7 += a[i + 7];
        }
        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++)
            res += a[i];
        return res;
    }
    i64 n2 = n / 2;
    n2 -= n2 % 8;
    return pairwise_sum(a, n2) + pairwise_sum(a + n2, n - n2);
}

/* pgp(loads): max(0, 1 - mean/max), 0 for empty or all-zero loads */
static double pgp_of(const double *loads, i64 p)
{
    if (p == 0)
        return 0.0;
    double mx = loads[0];
    for (i64 i = 1; i < p; i++)
        if (loads[i] > mx)
            mx = loads[i];
    if (mx <= 0.0)
        return 0.0;
    double mean = pairwise_sum(loads, p) / (double)p;
    double v = 1.0 - mean / mx;
    return v > 0.0 ? v : 0.0;
}

/* first-fit pack with the running "first unbalanced bin" pointer */
static void first_fit(const double *costs, i64 k, i64 p, i64 *assign, double *loads)
{
    for (i64 b = 0; b < p; b++)
        loads[b] = 0.0;
    double total = pairwise_sum(costs, k);
    i64 b = 0;
    double committed = 0.0;
    for (i64 j = 0; j < k; j++) {
        while (b < p && loads[b] >= (total - committed) / (double)(p - b)) {
            committed += loads[b];
            b++;
        }
        i64 placed;
        if (b < p) {
            placed = b;
        } else { /* every bin full: overflow to the first least-loaded bin */
            placed = 0;
            for (i64 t = 1; t < p; t++)
                if (loads[t] < loads[placed])
                    placed = t;
        }
        loads[placed] += costs[j];
        assign[j] = placed;
    }
}

/* ------------------------------------------------------------------ */
/* hd_wavefronts: longest-path levels + (level, id)-sorted order       */
/* ------------------------------------------------------------------ */
/* returns 0 ok, 1 cycle, 2 allocation failure */
int hd_wavefronts(i64 n, const i64 *indptr, const i64 *indices,
                  i64 *level, i64 *order, i64 *wptr, i64 *n_levels_out)
{
    if (n == 0) {
        wptr[0] = 0;
        *n_levels_out = 0;
        return 0;
    }
    i64 *indeg = calloc((size_t)n, sizeof(i64));
    i64 *queue = malloc((size_t)n * sizeof(i64));
    if (!indeg || !queue) {
        free(indeg);
        free(queue);
        return 2;
    }
    i64 m = indptr[n];
    for (i64 e = 0; e < m; e++)
        indeg[indices[e]]++;
    i64 head = 0, tail = 0;
    for (i64 v = 0; v < n; v++) {
        level[v] = 0;
        if (indeg[v] == 0)
            queue[tail++] = v;
    }
    if (tail == 0) {
        free(indeg);
        free(queue);
        return 1; /* no source vertex */
    }
    i64 seen = 0;
    while (head < tail) {
        i64 v = queue[head++];
        seen++;
        i64 lv = level[v];
        for (i64 e = indptr[v]; e < indptr[v + 1]; e++) {
            i64 c = indices[e];
            if (level[c] < lv + 1)
                level[c] = lv + 1;
            if (--indeg[c] == 0)
                queue[tail++] = c;
        }
    }
    free(queue);
    if (seen != n) {
        free(indeg);
        return 1;
    }
    i64 n_levels = 0;
    for (i64 v = 0; v < n; v++)
        if (level[v] + 1 > n_levels)
            n_levels = level[v] + 1;
    /* counting sort by level, ids ascending within each level */
    i64 *fill = indeg; /* reuse */
    memset(fill, 0, (size_t)n * sizeof(i64));
    for (i64 v = 0; v < n; v++)
        fill[level[v]]++;
    wptr[0] = 0;
    for (i64 k = 0; k < n_levels; k++)
        wptr[k + 1] = wptr[k] + fill[k];
    for (i64 k = 0; k < n_levels; k++)
        fill[k] = wptr[k];
    for (i64 v = 0; v < n; v++)
        order[fill[level[v]]++] = v;
    free(indeg);
    *n_levels_out = n_levels;
    return 0;
}

/* ------------------------------------------------------------------ */
/* hd_lbp: the LBP decision walk over precomputed wavefronts           */
/* ------------------------------------------------------------------ */

/* union-find, root == component minimum */
static i64 uf_find(i64 *parent, i64 x)
{
    i64 r = x;
    while (parent[r] != r)
        r = parent[r];
    while (parent[x] != r) {
        i64 nx = parent[x];
        parent[x] = r;
        x = nx;
    }
    return r;
}

static void uf_union(i64 *parent, i64 a, i64 b)
{
    i64 ra = uf_find(parent, a);
    i64 rb = uf_find(parent, b);
    if (ra == rb)
        return;
    if (ra < rb)
        parent[rb] = ra;
    else
        parent[ra] = rb;
}

typedef struct {
    i64 lo, hi;
    i64 m;       /* vertices in range */
    i64 ncomp;   /* connected components */
    i64 *sv;     /* verts sorted by (component root, id); capacity n */
    i64 *sizes;  /* per-component member count; capacity n */
    i64 *assign; /* per-component bin; capacity n */
    double *loads; /* per-bin load; capacity p */
} cand_t;

typedef struct {
    i64 n, p;
    const i64 *order;
    const i64 *wptr;
    const i64 *level;
    const i64 *in_ptr;
    const i64 *in_idx;
    i64 *parent;
    i64 *keys;    /* scratch, capacity n */
    double *cbuf; /* gathered member costs, capacity n */
    double *ccost;/* per-component costs, capacity n */
    const double *cost;
    i64 lo, hi;
} walk_t;

static int cmp_i64(const void *a, const void *b)
{
    i64 x = *(const i64 *)a, y = *(const i64 *)b;
    return (x > y) - (x < y);
}

/* union the in-edges of the vertices of wavefronts [wlo, whi) whose
 * source lies inside the active range (level >= w->lo) */
static void walk_union_incoming(walk_t *w, i64 wlo, i64 whi)
{
    const i64 *order = w->order;
    for (i64 t = w->wptr[wlo]; t < w->wptr[whi]; t++) {
        i64 v = order[t];
        w->parent[v] = v;
    }
    for (i64 t = w->wptr[wlo]; t < w->wptr[whi]; t++) {
        i64 v = order[t];
        for (i64 e = w->in_ptr[v]; e < w->in_ptr[v + 1]; e++) {
            i64 s = w->in_idx[e];
            if (w->level[s] >= w->lo)
                uf_union(w->parent, s, v);
        }
    }
}

static void walk_seed(walk_t *w, i64 lo, i64 hi)
{
    w->lo = lo;
    w->hi = hi;
    walk_union_incoming(w, lo, hi);
}

static void walk_extend(walk_t *w, i64 new_hi)
{
    i64 old_hi = w->hi;
    w->hi = new_hi;
    walk_union_incoming(w, old_hi, new_hi);
}

/* evaluate the current range into `c`; returns pgp(loads) */
static double walk_candidate(walk_t *w, cand_t *c)
{
    i64 a = w->wptr[w->lo], b = w->wptr[w->hi];
    i64 m = b - a;
    c->lo = w->lo;
    c->hi = w->hi;
    c->m = m;
    /* key = root * n + vert: one sort orders by (component, id); roots are
     * component minima, so components come out ordered by smallest member */
    for (i64 t = 0; t < m; t++) {
        i64 v = w->order[a + t];
        c->sv[t] = uf_find(w->parent, v) * w->n + v;
    }
    qsort(c->sv, (size_t)m, sizeof(i64), cmp_i64);
    i64 ncomp = 0;
    i64 prev_root = -1;
    for (i64 t = 0; t < m; t++) {
        i64 root = c->sv[t] / w->n;
        i64 v = c->sv[t] - root * w->n;
        c->sv[t] = v;
        w->cbuf[t] = w->cost[v];
        if (root != prev_root) {
            c->sizes[ncomp] = t; /* component start; converted to size below */
            ncomp++;
            prev_root = root;
        }
    }
    for (i64 k = 0; k < ncomp; k++) {
        i64 start = c->sizes[k];
        i64 end = (k + 1 < ncomp) ? c->sizes[k + 1] : m;
        i64 len = end - start;
        if (len == 1)
            w->ccost[k] = w->cbuf[start];
        else if (len == 2)
            w->ccost[k] = w->cbuf[start] + w->cbuf[start + 1];
        else
            w->ccost[k] = pairwise_sum(w->cbuf + start, len);
    }
    for (i64 k = 0; k < ncomp; k++) {
        i64 start = c->sizes[k];
        i64 end = (k + 1 < ncomp) ? c->sizes[k + 1] : m;
        c->sizes[k] = end - start;
    }
    c->ncomp = ncomp;
    first_fit(w->ccost, ncomp, w->p, c->assign, c->loads);
    return pgp_of(c->loads, w->p);
}

/* returns 0 ok, 2 allocation failure.  All output arrays are allocated by
 * the caller: cw_* sized by n_levels (vertex/component payloads by n),
 * cw_loads n_levels*p, dec_* n_levels-1. */
int hd_lbp(i64 n, const i64 *indptr, const i64 *indices,
           const double *cost, i64 p, double epsilon, int allow_fine,
           const i64 *level, const i64 *order, const i64 *wptr, i64 n_levels,
           i64 *cw_lo, i64 *cw_hi, i64 *cw_vptr, i64 *cw_verts,
           i64 *cw_cptr, i64 *cw_sizes, i64 *cw_assign, double *cw_loads,
           double *dec_pgp, uint8_t *dec_merged,
           i64 *n_cw_out, double *acc_out, uint8_t *fine_out)
{
    (void)indptr;
    *n_cw_out = 0;
    *acc_out = 0.0;
    *fine_out = 0;
    if (n_levels == 0)
        return 0;
    i64 m_edges = indptr[n];
    /* in-edge CSR (sources ascending per vertex, as in DAG.in_idx) */
    i64 *in_ptr = calloc((size_t)n + 1, sizeof(i64));
    i64 *in_idx = malloc((size_t)(m_edges > 0 ? m_edges : 1) * sizeof(i64));
    i64 *parent = malloc((size_t)n * sizeof(i64));
    i64 *keys = malloc((size_t)n * sizeof(i64));
    double *cbuf = malloc((size_t)n * sizeof(double));
    double *ccost = malloc((size_t)n * sizeof(double));
    i64 *buf_i = malloc((size_t)(6 * n) * sizeof(i64));
    double *buf_d = malloc((size_t)(2 * p) * sizeof(double));
    if (!in_ptr || !in_idx || !parent || !keys || !cbuf || !ccost || !buf_i || !buf_d) {
        free(in_ptr); free(in_idx); free(parent); free(keys);
        free(cbuf); free(ccost); free(buf_i); free(buf_d);
        return 2;
    }
    for (i64 e = 0; e < m_edges; e++)
        in_ptr[indices[e] + 1]++;
    for (i64 v = 0; v < n; v++)
        in_ptr[v + 1] += in_ptr[v];
    {
        i64 *fill = keys; /* scratch reuse */
        memcpy(fill, in_ptr, (size_t)n * sizeof(i64));
        for (i64 v = 0; v < n; v++)
            for (i64 e = indptr[v]; e < indptr[v + 1]; e++)
                in_idx[fill[indices[e]]++] = v;
    }

    cand_t prev = {0, 0, 0, 0, buf_i, buf_i + n, buf_i + 2 * n, buf_d};
    cand_t cand = {0, 0, 0, 0, buf_i + 3 * n, buf_i + 4 * n, buf_i + 5 * n, buf_d + p};
    walk_t w = {n, p, order, wptr, level, in_ptr, in_idx,
                parent, keys, cbuf, ccost, cost, 0, 0};

    i64 n_cw = 0;
    i64 vofs = 0, cofs = 0;
    cw_vptr[0] = 0;
    cw_cptr[0] = 0;

#define EMIT(cp)                                                          \
    do {                                                                  \
        cw_lo[n_cw] = (cp)->lo;                                           \
        cw_hi[n_cw] = (cp)->hi;                                           \
        memcpy(cw_verts + vofs, (cp)->sv, (size_t)(cp)->m * sizeof(i64)); \
        vofs += (cp)->m;                                                  \
        cw_vptr[n_cw + 1] = vofs;                                         \
        memcpy(cw_sizes + cofs, (cp)->sizes, (size_t)(cp)->ncomp * sizeof(i64)); \
        memcpy(cw_assign + cofs, (cp)->assign, (size_t)(cp)->ncomp * sizeof(i64)); \
        cofs += (cp)->ncomp;                                              \
        cw_cptr[n_cw + 1] = cofs;                                         \
        memcpy(cw_loads + n_cw * p, (cp)->loads, (size_t)p * sizeof(double)); \
        n_cw++;                                                           \
    } while (0)

    walk_seed(&w, 0, 1);
    walk_candidate(&w, &prev);
    for (i64 i = 1; i < n_levels; i++) {
        walk_extend(&w, i + 1);
        double score = walk_candidate(&w, &cand);
        if (score > epsilon) {
            dec_pgp[i - 1] = score;
            dec_merged[i - 1] = 0;
            EMIT(&prev);
            walk_seed(&w, i, i + 1); /* cut before the wave that broke balance */
            walk_candidate(&w, &prev);
        } else {
            dec_pgp[i - 1] = score;
            dec_merged[i - 1] = 1;
            cand_t tmp = prev;
            prev = cand;
            cand = tmp;
        }
    }
    EMIT(&prev);
#undef EMIT

    /* accumulated PGP: sequential sum of per-CW load means and maxes */
    double total_mean = 0.0, total_max = 0.0;
    for (i64 c = 0; c < n_cw; c++) {
        const double *loads = cw_loads + c * p;
        double mean = pairwise_sum(loads, p) / (double)p;
        double mx = loads[0];
        for (i64 b = 1; b < p; b++)
            if (loads[b] > mx)
                mx = loads[b];
        total_mean += mean;
        total_max += mx;
    }
    double acc = total_max > 0.0 ? 1.0 - total_mean / total_max : 0.0;
    *acc_out = acc;
    *fine_out = (allow_fine && acc > epsilon) ? 1 : 0;
    *n_cw_out = n_cw;

    free(in_ptr); free(in_idx); free(parent); free(keys);
    free(cbuf); free(ccost); free(buf_i); free(buf_d);
    return 0;
}

/* ------------------------------------------------------------------ */
/* hd_coarsen: G'' construction + per-group costs                      */
/* ------------------------------------------------------------------ */
/* Sorted-unique cross-group edges (lexicographic (gs, gd), matching
 * np.unique over edge pairs) and group costs accumulated in vertex order
 * (matching np.add.at).  out_indices must hold n_edges(g) entries.
 * Returns 0 ok, 2 allocation failure. */
int hd_coarsen(i64 n, const i64 *indptr, const i64 *indices,
               const i64 *labels, i64 n_groups, const double *cost,
               i64 *out_indptr, i64 *out_indices, i64 *out_nedges,
               double *group_cost)
{
    for (i64 g = 0; g < n_groups; g++)
        group_cost[g] = 0.0;
    for (i64 v = 0; v < n; v++)
        group_cost[labels[v]] += cost[v];

    i64 m = indptr[n];
    i64 cap = m > 0 ? m : 1;
    i64 *src_a = malloc((size_t)cap * sizeof(i64));
    i64 *dst_a = malloc((size_t)cap * sizeof(i64));
    i64 *src_b = malloc((size_t)cap * sizeof(i64));
    i64 *dst_b = malloc((size_t)cap * sizeof(i64));
    i64 *count = calloc((size_t)(n_groups > 0 ? n_groups : 1), sizeof(i64));
    if (!src_a || !dst_a || !src_b || !dst_b || !count) {
        free(src_a); free(dst_a); free(src_b); free(dst_b); free(count);
        return 2;
    }
    i64 k = 0;
    for (i64 v = 0; v < n; v++) {
        i64 gs = labels[v];
        for (i64 e = indptr[v]; e < indptr[v + 1]; e++) {
            i64 gd = labels[indices[e]];
            if (gs != gd) {
                src_a[k] = gs;
                dst_a[k] = gd;
                k++;
            }
        }
    }
    /* LSD radix by group id: stable pass on dst, then on src */
    for (i64 e = 0; e < k; e++)
        count[dst_a[e]]++;
    i64 run = 0;
    for (i64 g = 0; g < n_groups; g++) {
        i64 c = count[g];
        count[g] = run;
        run += c;
    }
    for (i64 e = 0; e < k; e++) {
        i64 pos = count[dst_a[e]]++;
        src_b[pos] = src_a[e];
        dst_b[pos] = dst_a[e];
    }
    memset(count, 0, (size_t)(n_groups > 0 ? n_groups : 1) * sizeof(i64));
    for (i64 e = 0; e < k; e++)
        count[src_b[e]]++;
    run = 0;
    for (i64 g = 0; g < n_groups; g++) {
        i64 c = count[g];
        count[g] = run;
        run += c;
    }
    for (i64 e = 0; e < k; e++) {
        i64 pos = count[src_b[e]]++;
        src_a[pos] = src_b[e];
        dst_a[pos] = dst_b[e];
    }
    /* dedup + CSR */
    for (i64 g = 0; g <= n_groups; g++)
        out_indptr[g] = 0;
    i64 mm = 0;
    for (i64 e = 0; e < k; e++) {
        if (mm > 0 && src_a[e] == src_a[mm - 1] && dst_a[e] == dst_a[mm - 1])
            continue;
        src_a[mm] = src_a[e];
        dst_a[mm] = dst_a[e];
        mm++;
    }
    for (i64 e = 0; e < mm; e++) {
        out_indices[e] = dst_a[e];
        out_indptr[src_a[e] + 1]++;
    }
    for (i64 g = 0; g < n_groups; g++)
        out_indptr[g + 1] += out_indptr[g];
    *out_nedges = mm;
    free(src_a); free(dst_a); free(src_b); free(dst_b); free(count);
    return 0;
}
