"""Tests for the dataset, harness, and table/figure regeneration."""

import math

import numpy as np
import pytest

from repro.runtime import LAPTOP4
from repro.suite import (
    SUITE,
    Harness,
    MatrixSpec,
    fig4_pgp_vs_pg,
    fig5_per_matrix_speedups,
    fig6_performance_metrics,
    fig7_imbalance_ratio,
    fig8_speedup_vs_locality,
    fig9_nre,
    format_kv,
    format_table,
    geomean,
    small_suite,
    suite_by_name,
    table1_speedups,
    table2_metric_improvements,
    table3_categories,
)
from repro.suite.matrices import FAMILIES


class TestDataset:
    def test_34_matrices(self):
        assert len(SUITE) == 34

    def test_unique_names(self):
        names = [s.name for s in SUITE]
        assert len(set(names)) == 34

    def test_all_families_covered(self):
        present = {s.family for s in SUITE}
        assert present == set(FAMILIES)

    def test_by_name(self):
        assert suite_by_name()["mesh2d-s"].family == "mesh2d"

    def test_small_suite_one_per_family(self):
        specs = small_suite()
        fams = [s.family for s in specs]
        assert len(fams) == len(set(fams))

    def test_bad_family_rejected(self):
        with pytest.raises(ValueError):
            MatrixSpec(name="x", family="nope", build=lambda: None)


@pytest.fixture(scope="module")
def records():
    """One small matrix through the full grid on the 4-core test machine."""
    h = Harness(machines=(LAPTOP4,), kernels=("sptrsv", "spilu0"))
    spec = suite_by_name()["mesh2d-s"]
    return h.run_suite([spec])


class TestHarness:
    def test_record_grid(self, records):
        algos = {r.algorithm for r in records}
        assert algos == {"hdagg", "spmp", "wavefront", "lbc", "dagp", "mkl"}
        # mkl only for sptrsv
        assert not [r for r in records if r.algorithm == "mkl" and r.kernel != "sptrsv"]
        assert len(records) == 6 + 5

    def test_record_fields_sane(self, records):
        for r in records:
            assert r.speedup > 0
            assert r.makespan_cycles > 0
            assert 0 <= r.potential_gain < 1
            assert 0 <= r.imbalance_ratio <= 1
            assert r.avg_memory_access_latency > 0
            assert r.inspector_cycles >= 0
            assert r.n == 2304

    def test_hdagg_beats_serial(self, records):
        for r in records:
            if r.algorithm == "hdagg":
                assert r.speedup > 1.0

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            Harness(kernels=("magic",))

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            Harness(algorithms=("magic",))

    def test_unknown_machine_rejected(self):
        with pytest.raises(KeyError):
            Harness(machines=("cray",))


class TestTables:
    def test_table1(self, records):
        headers, rows, data = table1_speedups(records)
        assert headers[0] == "HDagg vs"
        assert {row[0] for row in rows} == {"spmp", "wavefront", "lbc", "dagp", "mkl"}
        out = format_table(headers, rows)
        assert "HDagg vs" in out

    def test_table2(self, records):
        headers, rows, data = table2_metric_improvements(
            records, kernel="spilu0", machine="laptop4"
        )
        assert [row[0] for row in rows] == ["locality", "load balance", "synchronization"]
        for key, val in data.items():
            assert val > 0

    def test_table3(self, records):
        headers, rows, data = table3_categories(records, kernel="spilu0", machine="laptop4")
        assert len(rows) == 3
        total = sum(row[1] for row in rows)
        assert total == 1  # one matrix

    def test_format_helpers(self):
        assert "inf" in format_table(["a"], [[float("inf")]])
        assert "yes" in format_table(["a"], [[True]])
        assert "k : 1" in format_kv({"k": 1}).replace("  ", " ")
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0


class TestFigures:
    def test_fig4(self, records):
        headers, rows, data = fig4_pgp_vs_pg(records, kernel="sptrsv", machine="laptop4")
        assert len(rows) == 6
        assert not math.isnan(data["r_squared"])

    def test_fig5(self, records):
        per_kernel = fig5_per_matrix_speedups(records, machine="laptop4")
        assert set(per_kernel) == {"sptrsv", "spilu0"}
        headers, rows, data = per_kernel["spilu0"]
        assert rows[0][0] == "mesh2d-s"
        assert len(rows[0]) == 5  # 4 baselines + name

    def test_fig6(self, records):
        headers, rows, data = fig6_performance_metrics(records, machine="laptop4")
        assert len(rows) == 5  # spilu0 algorithms
        for row in rows:
            assert row[2] > 0

    def test_fig7(self, records):
        headers, rows, data = fig7_imbalance_ratio(records, machine="laptop4")
        assert headers[1:] == sorted(data.keys())
        for algo, vals in data.items():
            for v in vals.values():
                assert 0 <= v <= 1

    def test_fig8(self, records):
        headers, rows, data = fig8_speedup_vs_locality(records, machine="laptop4")
        assert len(rows) >= 1

    def test_fig9(self, records):
        headers, rows, data = fig9_nre(records, machine="laptop4")
        assert len(rows) == 1
        assert "hdagg" in data["sptrsv"]
        assert "spilu0" in data


class TestCLI:
    def test_quick_run(self, capsys):
        from repro.suite.cli import main

        rc = main(["--quick", "--experiment", "table1", "--kernels", "sptrsv",
                   "--machines", "laptop4", "--matrices", "mesh2d-s"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table I" in out

    def test_list(self, capsys):
        from repro.suite.cli import main

        assert main(["--list"]) == 0
        assert "mesh2d-s" in capsys.readouterr().out

    def test_json_dump(self, tmp_path, capsys):
        from repro.suite.cli import main

        out = tmp_path / "r.json"
        rc = main(["--experiment", "fig7", "--kernels", "spilu0",
                   "--machines", "laptop4", "--matrices", "mesh2d-s",
                   "--json", str(out)])
        assert rc == 0
        import json

        blob = json.loads(out.read_text())
        assert blob["status"]["fig7"] == "ok"
        assert len(blob["records"]) == 5
