"""Tests for the Matrix Market reader/writer."""

import numpy as np
import pytest

from repro.sparse import (
    csr_from_dense,
    dumps_matrix_market,
    loads_matrix_market,
    read_matrix_market,
    write_matrix_market,
)

GENERAL = """%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 1 2.5
2 1 -1.0
3 3 4.0
2 2 1.5
"""

SYMMETRIC = """%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 2.0
"""

PATTERN = """%%MatrixMarket matrix coordinate pattern general
2 3 3
1 1
1 3
2 2
"""


def test_parse_general():
    a = loads_matrix_market(GENERAL)
    expected = np.array([[2.5, 0, 0], [-1.0, 1.5, 0], [0, 0, 4.0]])
    np.testing.assert_array_equal(a.to_dense(), expected)


def test_parse_symmetric_mirrors():
    a = loads_matrix_market(SYMMETRIC)
    expected = np.array([[2.0, -1.0, 0], [-1.0, 2.0, 0], [0, 0, 2.0]])
    np.testing.assert_array_equal(a.to_dense(), expected)


def test_parse_pattern_field():
    a = loads_matrix_market(PATTERN)
    np.testing.assert_array_equal(a.to_dense(), [[1, 0, 1], [0, 1, 0]])


def test_roundtrip_general(rng):
    dense = rng.random((5, 4))
    dense[dense < 0.5] = 0.0
    a = csr_from_dense(dense)
    assert loads_matrix_market(dumps_matrix_market(a)) == a


def test_roundtrip_symmetric(mesh):
    text = dumps_matrix_market(mesh, symmetric=True)
    assert "symmetric" in text.splitlines()[0]
    assert loads_matrix_market(text) == mesh


def test_symmetric_dump_checks_pattern():
    a = csr_from_dense(np.array([[1.0, 2.0], [0.0, 1.0]]))
    with pytest.raises(ValueError, match="symmetric"):
        dumps_matrix_market(a, symmetric=True)


def test_file_roundtrip(tmp_path, mesh):
    path = tmp_path / "m.mtx"
    write_matrix_market(mesh, path, symmetric=True)
    assert read_matrix_market(path) == mesh


@pytest.mark.parametrize(
    "text,err",
    [
        ("", "empty"),
        ("%%MatrixMarket matrix array real general\n1 1\n1.0\n", "coordinate"),
        ("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n", "field"),
        ("%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 1\n1 1 1\n", "symmetry"),
        ("%%MatrixMarket vector coordinate real general\n1 1 1\n1 1 1\n", "object"),
        ("bogus header\n1 1 1\n", "header"),
        ("%%MatrixMarket matrix coordinate real general\n", "size"),
        ("%%MatrixMarket matrix coordinate real general\n2 2\n", "size"),
        ("%%MatrixMarket matrix coordinate real general\n1 1 2\n1 1 1.0\n", "declared"),
        ("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0\n1 1 2.0\n", "more entries"),
        ("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1\n", "bad entry"),
    ],
)
def test_malformed_documents(text, err):
    with pytest.raises(ValueError, match=err):
        loads_matrix_market(text)


def test_comments_and_blanks_inside_entries():
    text = (
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "% halfway comment\n"
        "1 1 1.0\n"
        "\n"
        "2 2 2.0\n"
    )
    a = loads_matrix_market(text)
    np.testing.assert_array_equal(a.to_dense(), [[1, 0], [0, 2]])
