"""LBC baseline: Load-Balanced level Coarsening (ParSy) [7].

LBC is optimised for tree-structured DAGs.  On a general sparse-kernel DAG
it "chordalises the DAG by adding more edges and then converts it to a
tree" (Section II / Figure 1(c)).  The tree in question is the classic
**elimination tree**: chordal fill never changes it, and the fundamental
etree property — ``A[v, u] != 0`` with ``u < v`` implies ``u`` is a
descendant of ``v`` in etree(A) — means *every dependence edge stays inside
one subtree*.  That is exactly what lets LBC treat disjoint subtrees as
independent workloads without inspecting individual DAG edges.

The algorithm here:

1. build etree(A) with Liu's algorithm (path-compressed ancestor climbing)
   directly from the dependence DAG's edges;
2. compute leaf-up subtree heights;
3. scan cut levels from the top: the largest cut whose below-forest
   decomposes into at least ``p`` tree-connected components that first-fit
   bin-pack within the balance threshold becomes coarsened wavefront 1
   (w-partitions = packed subtrees); everything at or above the cut becomes
   coarsened wavefront 2.

The second wavefront's components are almost always fewer than ``p`` — the
paper's observation that "LBC always creates two wavefronts where one of
the wavefronts has fewer than p workloads", i.e. a 50 % load-imbalance
ratio.

Validity follows from the etree property: an edge ``u -> v`` has ``u`` a
descendant of ``v``, so heights satisfy ``h(u) < h(v)`` and the tree path
between them never leaves a side of the cut — both endpoints land either in
the same w-partition (same subtree component) or in consecutive coarsened
wavefronts.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.binpack import first_fit_pack
from ..core.pgp import DEFAULT_EPSILON, pgp
from ..core.schedule import Schedule, WidthPartition
from ..graph.dag import DAG
from ..passes.registry import run_scheduler_group
from ..sparse.csr import INDEX_DTYPE
from .base import register_scheduler

__all__ = [
    "lbc_schedule",
    "lbc_body",
    "elimination_tree",
    "tree_levels",
    "forest_components",
]


def elimination_tree(g: DAG) -> np.ndarray:
    """Elimination tree of the dependence DAG (Liu's algorithm).

    ``g`` has an edge ``u -> v`` for every stored ``A[v, u]``, ``u < v``.
    Returns ``parent`` with ``parent[root] = -1``.  Uses the standard
    path-compressed "ancestor" forest for near-linear time.
    """
    n = g.n
    parent = np.full(n, -1, dtype=INDEX_DTYPE)
    ancestor = np.full(n, -1, dtype=INDEX_DTYPE)
    in_ptr, in_idx = g.in_ptr, g.in_idx
    for i in range(n):
        for t in range(in_ptr[i], in_ptr[i + 1]):
            r = int(in_idx[t])  # k < i with A[i, k] stored
            while ancestor[r] != -1 and ancestor[r] != i:
                nxt = int(ancestor[r])
                ancestor[r] = i  # path compression
                r = nxt
            if ancestor[r] == -1:
                ancestor[r] = i
                parent[r] = i
    return parent


def tree_levels(parent: np.ndarray) -> np.ndarray:
    """Leaf-up height of every vertex in a parent-pointer forest.

    Leaves are height 0; a parent is ``1 + max(child heights)``.  One
    ascending pass suffices because ``parent(v) > v``.
    """
    n = parent.shape[0]
    level = np.zeros(n, dtype=INDEX_DTYPE)
    for v in range(n):
        w = parent[v]
        if w >= 0:
            if w <= v:
                raise ValueError("parent pointers must satisfy parent(v) > v")
            if level[w] < level[v] + 1:
                level[w] = level[v] + 1
    return level


def forest_components(parent: np.ndarray, mask: np.ndarray) -> List[np.ndarray]:
    """Connected components (subtrees) of the forest induced on ``mask``.

    Only tree edges with both endpoints inside the mask connect vertices.
    Returned ordered by smallest member id, members sorted ascending.
    """
    n = parent.shape[0]
    label = np.full(n, -1, dtype=INDEX_DTYPE)
    verts = np.nonzero(mask)[0]
    # Descending pass: parent(v) > v is already labelled when v is reached,
    # so each vertex inherits its in-mask parent's (final) root label.
    for v in verts[::-1]:
        w = parent[v]
        label[v] = label[w] if (w >= 0 and mask[w]) else v
    groups: dict[int, List[int]] = {}
    for v in verts:
        groups.setdefault(int(label[v]), []).append(int(v))
    return [
        np.array(sorted(members), dtype=INDEX_DTYPE)
        for _, members in sorted(groups.items(), key=lambda kv: min(kv[1]))
    ]


def _partitions_from_packing(comps, packing, p: int):
    parts = []
    for core, items in enumerate(packing.items_per_bin(p)):
        if items.size == 0:
            continue
        verts = np.sort(np.concatenate([comps[int(k)] for k in items]))
        parts.append(WidthPartition(core=core, vertices=verts))
    return parts


@register_scheduler("lbc")
def lbc_schedule(g: DAG, cost: np.ndarray, p: int, epsilon: float = DEFAULT_EPSILON) -> Schedule:
    """Two-level LBC: packed etree subtrees below one cut, tail above it.

    Runs the ``"lbc"`` pass group, whose single ``lbc-etree-cut`` pass is
    :func:`lbc_body`.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if g.n == 0:
        return Schedule(n=0, levels=[], sync="barrier", algorithm="lbc", n_cores=p)
    return run_scheduler_group("lbc", g, cost, p, epsilon=epsilon)


def lbc_body(g: DAG, cost: np.ndarray, p: int, epsilon: float) -> Schedule:
    """The LBC algorithm proper (the ``lbc-etree-cut`` pass implementation)."""
    parent = elimination_tree(g)
    height = tree_levels(parent)
    max_h = int(height.max())

    # Candidate cuts, largest first (big parallel front, small tail).  Deep
    # trees are subsampled to bound inspection at O(48 * n).
    top = max_h + 1
    if top <= 48:
        candidates = list(range(top, 0, -1))
    else:
        candidates = sorted({int(c) for c in np.linspace(top, 1, 48).round()}, reverse=True)

    best = None  # (cut, comps, packing)
    best_pgp = np.inf
    for cut in candidates:
        mask = height < cut
        if not mask.any():
            continue
        comps = forest_components(parent, mask)
        packing = first_fit_pack([float(cost[c].sum()) for c in comps], p)
        score = pgp(packing.loads)
        if len(comps) >= p and score <= epsilon:
            best = (cut, comps, packing)
            break
        if score < best_pgp:
            best_pgp = score
            best = (cut, comps, packing)
    cut, comps, packing = best

    levels = []
    parts = _partitions_from_packing(comps, packing, p)
    if parts:
        levels.append(parts)

    tail_mask = height >= cut
    if tail_mask.any():
        tail_comps = forest_components(parent, tail_mask)
        tail_pack = first_fit_pack([float(cost[c].sum()) for c in tail_comps], p)
        tail_parts = _partitions_from_packing(tail_comps, tail_pack, p)
        if tail_parts:
            levels.append(tail_parts)

    return Schedule(
        n=g.n,
        levels=levels,
        sync="barrier",
        algorithm="lbc",
        n_cores=p,
        meta={"cut_level": int(cut), "n_tree_levels": max_h + 1},
    )
