"""Chaos suite: seeded fault-injection runs must degrade, never hang or leak.

Three deterministic seeds drive :meth:`FaultPlan.chaos` over a small grid;
every outcome must be a normal record, a degraded record, or a structured
:class:`FailureRecord` — no raw exceptions escape and re-running a seed
reproduces the exact same injected faults.  Executor-level chaos checks
that an injected core stall trips PR 2's p2p deadlock detector with the
correct (core, vertex, dependence) triple, and that a hard-killed fork
pool worker is recovered by the parent's serial retry path.
"""

import numpy as np
import pytest

from repro.core import ScheduleCache
from repro.core.schedule import Schedule, WidthPartition
from repro.graph import DAG
from repro.resilience import FailureRecord
from repro.resilience.faults import FaultPlan, FaultSpec, armed
from repro.runtime.threaded import ThreadedExecutionError, run_threaded
from repro.suite import Harness
from repro.suite.harness import RunRecord
from repro.suite.matrices import SUITE

CHAOS_SEEDS = (0, 1, 2)

TIMING_FIELDS = {"inspector_seconds", "stage_seconds", "schedule_cached"}


def _strip(record):
    return {k: v for k, v in record.__dict__.items() if k not in TIMING_FIELDS}


def _chaos_run(seed):
    harness = Harness(
        kernels=("sptrsv",),
        algorithms=("hdagg", "wavefront"),
        schedule_cache=ScheduleCache(),
    )
    failures = []
    plan = FaultPlan.chaos(seed)
    with armed(plan):
        records = harness.run_suite(
            SUITE[:2], isolate_failures=True, failures=failures
        )
    return plan, records, failures


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_degrades_gracefully(seed):
    plan, records, failures = _chaos_run(seed)
    # every row is a structured outcome; nothing escaped as a raw exception
    assert all(isinstance(r, RunRecord) for r in records)
    assert all(isinstance(f, FailureRecord) for f in failures)
    for f in failures:
        assert f.stage in ("prepare", "run", "worker")
        assert f.error_type and f.message
    for r in records:
        if r.degraded:
            assert r.degraded_from
            assert r.algorithm not in r.degraded_from.split(",")
    for event in plan.fired:
        assert event.site in {s.site for s in plan.specs}


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_is_deterministic(seed):
    plan_a, records_a, failures_a = _chaos_run(seed)
    plan_b, records_b, failures_b = _chaos_run(seed)
    assert plan_a.describe() == plan_b.describe()
    assert [(e.site, e.action, e.occurrence, e.label) for e in plan_a.fired] == [
        (e.site, e.action, e.occurrence, e.label) for e in plan_b.fired
    ]
    assert [_strip(r) for r in records_a] == [_strip(r) for r in records_b]
    assert [f.as_dict() for f in failures_a] == [f.as_dict() for f in failures_b]


def test_cache_corruption_is_revalidated_away():
    """A corrupted cache hit must be invalidated and re-inspected, not used."""
    cache = ScheduleCache()
    harness = Harness(
        kernels=("sptrsv",), algorithms=("wavefront",), schedule_cache=cache
    )
    clean = harness.run_suite(SUITE[:1])
    plan = FaultPlan([FaultSpec("schedule_cache.get", "corrupt", times=-1)])
    with armed(plan):
        poisoned = harness.run_suite(SUITE[:1])
    assert plan.fired, "the cache-hit fault never fired"
    # the corrupted entry was dropped and re-inspected: rows match the clean
    # run and are *not* flagged as cache hits
    assert [_strip(r) for r in poisoned] == [_strip(r) for r in clean]
    assert not any(r.schedule_cached for r in poisoned)
    # the cache healed: a later dormant run hits the re-inserted entry
    healed = harness.run_suite(SUITE[:1])
    assert all(r.schedule_cached for r in healed)


def test_corrupt_prepare_is_sanitized_or_isolated():
    """Every CSR corruption class is either repaired or a structured failure."""
    for seed in CHAOS_SEEDS:
        harness = Harness(kernels=("sptrsv",), algorithms=("wavefront",))
        failures = []
        plan = FaultPlan(
            [FaultSpec("harness.prepare", "corrupt", at=0, times=-1)], seed=seed
        )
        with armed(plan):
            records = harness.run_suite(
                SUITE[:2], isolate_failures=True, failures=failures
            )
        assert plan.fired
        # every outcome is either a repaired-and-run record or a structured
        # sanitizer rejection — never a raw numpy error
        assert len(records) + len(failures) > 0
        for f in failures:
            assert f.error_type == "CSRSanitizeError"


def test_inspector_stage_stall_is_attributed_and_bit_identical():
    """A stall injected into one named pass lands in that stage's timer
    window and cannot change the schedule bytes."""
    from repro.core.hdagg import hdagg

    # 8 independent 5-vertex chains: enough width for a coarse schedule
    srcs = [c * 5 + i for c in range(8) for i in range(4)]
    dsts = [c * 5 + i + 1 for c in range(8) for i in range(4)]
    g = DAG.from_edges(40, srcs, dsts)
    cost = np.ones(40)
    clean = hdagg(g, cost, 4)
    plan = FaultPlan(
        [FaultSpec("inspector.stage", "stall", times=-1, match="lbp", duration=0.05)]
    )
    with armed(plan):
        stalled = hdagg(g, cost, 4)
    assert [(e.site, e.action, e.label) for e in plan.fired] == [
        ("inspector.stage", "stall", "lbp")
    ]
    # the stall is charged to the lbp stage, not smeared over the pipeline
    assert stalled.meta["stage_seconds"]["lbp"] >= 0.05
    # timing noise never reaches the schedule itself
    assert stalled.execution_order().tolist() == clean.execution_order().tolist()
    assert [
        [(wp.core, wp.vertices.tolist()) for wp in level] for level in stalled.levels
    ] == [
        [(wp.core, wp.vertices.tolist()) for wp in level] for level in clean.levels
    ]


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_inspector_stage_chaos_sweep_fires_only_known_labels(seed):
    """Chaos plans drawn over the per-stage site stay inside the labels the
    executor actually emits, for every seed."""
    from repro.core.hdagg import hdagg
    from repro.passes import get_pass_group

    known_labels = {
        p.fault_label for p in get_pass_group("hdagg").passes if p.fault_label
    }
    plan = FaultPlan.chaos(seed, sites=("inspector.stage",))
    g = DAG.from_edges(6, [0, 1, 2, 3, 4], [1, 2, 3, 4, 5])
    with armed(plan):
        for _ in range(3):
            hdagg(g, np.ones(6), 2)
    assert plan.fired, "no occurrence matched any planned fault"
    for event in plan.fired:
        assert event.site == "inspector.stage"
        assert event.action == "stall"
        assert event.label in known_labels


def test_executor_stall_trips_deadlock_detector():
    """An injected core stall must surface as the detector's stuck triple."""
    g = DAG.from_edges(2, [0], [1])
    schedule = Schedule(
        n=2,
        levels=[
            [WidthPartition(0, np.array([0]))],
            [WidthPartition(1, np.array([1]))],
        ],
        sync="p2p",
        algorithm="test",
        n_cores=2,
    )
    plan = FaultPlan(
        [FaultSpec("executor.stall", "stall", times=-1, match="0", duration=1.5)]
    )
    with armed(plan):
        with pytest.raises(ThreadedExecutionError) as exc_info:
            run_threaded(
                schedule, g, lambda v: None, deadlock_timeout=0.2, spin_yield=False
            )
    err = exc_info.value
    assert (err.core, err.vertex, err.dependence) == (1, 1, 0)
    assert "deadlock" in str(err)


def test_executor_worker_crash_names_core_and_vertex():
    g = DAG.from_edges(2, [], [])
    schedule = Schedule(
        n=2,
        levels=[
            [WidthPartition(0, np.array([0])), WidthPartition(1, np.array([1]))]
        ],
        sync="barrier",
        algorithm="test",
        n_cores=2,
    )
    plan = FaultPlan([FaultSpec("executor.worker", "raise", times=-1, match="1")])
    with armed(plan):
        with pytest.raises(ThreadedExecutionError) as exc_info:
            run_threaded(schedule, g, lambda v: None)
    assert exc_info.value.core == 1


def test_pool_worker_death_recovered_serially():
    """A hard-killed fork worker is detected and its matrix re-run in-parent."""
    specs = SUITE[:3]
    harness = Harness(kernels=("sptrsv",), algorithms=("wavefront",))
    reference = Harness(
        kernels=("sptrsv",), algorithms=("wavefront",)
    ).run_suite(specs)
    plan = FaultPlan(
        [FaultSpec("pool.worker", "exit", times=-1, match=specs[1].name)]
    )
    with armed(plan):
        records = harness.run_suite(specs, n_jobs=2, worker_timeout=5.0)
    assert [_strip(r) for r in records] == [_strip(r) for r in reference]


def test_pool_worker_exception_names_matrix():
    """An in-worker exception must be retried serially, then isolated with context."""
    specs = SUITE[:2]
    harness = Harness(kernels=("sptrsv",), algorithms=("wavefront",))
    failures = []
    plan = FaultPlan(
        [FaultSpec("suite.matrix", "raise", times=-1, match=specs[0].name)]
    )
    with armed(plan):
        records = harness.run_suite(
            specs, n_jobs=2, isolate_failures=True, failures=failures
        )
    assert [f.matrix for f in failures] == [specs[0].name]
    assert failures[0].stage == "worker"
    assert {r.matrix for r in records} == {specs[1].name}
