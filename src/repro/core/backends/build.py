"""Build the compiled backend library with a stock C compiler.

The compiled tier is a plain C shared object loaded through ctypes — no
Python.h, no Cython, no build-system dependency beyond a working ``cc``.
Run::

    python -m repro.core.backends.build

or ``python setup.py build_native`` (same entry point).  The library
lands next to its source (``_native/libhdagg_native.so``), where
:mod:`repro.core.backends.native` looks for it; delete the file to
return to the pure-numpy tier.

Flag notes: ``-ffp-contract=off`` forbids FMA contraction and fast-math
stays off, because the compiled tier's bit-identity contract with the
numpy tier depends on unfused, unreassociated float arithmetic.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

__all__ = ["SOURCE", "LIBRARY", "build", "BuildError"]

_NATIVE_DIR = Path(__file__).resolve().parent / "_native"
SOURCE = _NATIVE_DIR / "hdagg_native.c"
LIBRARY = _NATIVE_DIR / "libhdagg_native.so"

_CFLAGS = ["-O3", "-ffp-contract=off", "-fPIC", "-shared", "-std=c99", "-Wall"]


class BuildError(RuntimeError):
    """Compiler missing or compilation failed."""


def _compiler() -> str | None:
    for cc in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cc and shutil.which(cc):
            return cc
    return None


def build(force: bool = False, verbose: bool = True) -> Path:
    """Compile the native library; returns its path.

    Skips the compile when the library is already newer than its source
    (unless ``force``).  Raises :class:`BuildError` when no compiler is
    on PATH or the compile fails — callers that want the soft-fallback
    behaviour catch it (the registry never calls this implicitly).
    """
    if not SOURCE.exists():  # pragma: no cover - packaging error
        raise BuildError(f"native source missing: {SOURCE}")
    if LIBRARY.exists() and not force:
        if LIBRARY.stat().st_mtime >= SOURCE.stat().st_mtime:
            if verbose:
                print(f"[backends.build] up to date: {LIBRARY}")
            return LIBRARY
    cc = _compiler()
    if cc is None:
        raise BuildError("no C compiler found (tried $CC, cc, gcc, clang)")
    cmd = [cc, *_CFLAGS, "-o", str(LIBRARY), str(SOURCE)]
    if verbose:
        print("[backends.build]", " ".join(cmd))
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise BuildError(
            f"compile failed (exit {proc.returncode}):\n{proc.stdout}{proc.stderr}"
        )
    if verbose:
        print(f"[backends.build] built {LIBRARY}")
    # a fresh build invalidates any loaded handle and the registry's
    # resolved-callable cache in this process
    from . import _RESOLVED
    from .native import reset as _reset_native

    _reset_native()
    _RESOLVED.clear()
    return LIBRARY


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    force = "--force" in args
    try:
        build(force=force)
    except BuildError as exc:
        print(f"[backends.build] {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
