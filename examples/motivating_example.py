#!/usr/bin/env python
"""The paper's motivating example (Figures 1-3) on a small visible DAG.

Builds a 13-vertex DAG with transitive edges, subtrees, and uneven costs,
then prints the schedule every algorithm produces for two cores, plus the
inner artefacts of HDagg's two steps — the reduced DAG, the subtree
groups, and the LBP merge/cut decisions.

Run:  python examples/motivating_example.py
"""

import numpy as np

from repro.core import hdagg, lbp_coarsen, pgp, subtree_grouping
from repro.graph import DAG, coarsen_dag, compute_wavefronts, transitive_reduction_two_hop
from repro.schedulers import SCHEDULERS

P = 2


def build_example_dag() -> DAG:
    """A DAG in the spirit of Figure 2(a): 13 vertices, three transitive
    edges (they vanish under reduction), two multi-vertex subtrees."""
    edges = [
        (0, 3), (1, 2), (2, 3), (0, 4), (2, 4),
        (3, 9), (4, 9), (1, 3),          # (1,3) transitive via 2
        (5, 7), (6, 7), (7, 8), (5, 8),  # (5,8) transitive via 7
        (8, 9), (8, 10),
        (9, 11), (10, 11), (11, 12), (9, 12),  # (9,12) transitive via 11
    ]
    return DAG.from_edges(13, [e[0] for e in edges], [e[1] for e in edges])


def show_schedule(name: str, schedule) -> None:
    print(f"\n--- {name}: {schedule.n_levels} level(s), sync={schedule.sync} ---")
    for k, level in enumerate(schedule.levels):
        parts = ", ".join(
            f"core{part.core}: {part.vertices.tolist()}" for part in level
        )
        print(f"  CW{k}: {parts}")


def main() -> None:
    g = build_example_dag()
    cost = np.ones(g.n)
    cost[9] = 3.0  # vertex 9 is heavy, like the dense rows of Listing 1

    print(f"DAG: {g.n} vertices, {g.n_edges} edges")
    print("wavefronts:", [compute_wavefronts(g).wavefront(k).tolist()
                          for k in range(compute_wavefronts(g).n_levels)])

    # ---- Step 1 internals (Figure 2 a-b) ----------------------------
    g_red = transitive_reduction_two_hop(g)
    removed = g.n_edges - g_red.n_edges
    print(f"\ntransitive reduction removed {removed} edges")
    grouping = subtree_grouping(g_red)
    print("subtree groups:", [grp.tolist() for grp in grouping.groups if grp.size > 1])

    # ---- Step 2 internals (Figures 2c-d, 3) -------------------------
    g2 = coarsen_dag(g_red, grouping)
    res = lbp_coarsen(g2, grouping.group_costs(cost), P, epsilon=0.34)
    walk = " ".join(
        f"W{d.wave}:{'merge' if d.merged else 'CUT'}({d.pgp:.2f})"
        for d in res.decisions
    )
    print(f"Figure-3 decision walk: {walk}")
    for cw in res.coarsened:
        print(
            f"  merged waves [{cw.wave_lo}:{cw.wave_hi}) -> "
            f"{len(cw.components)} components, PGP={cw.pgp:.2f}"
        )

    # ---- all five schedules (Figure 1) ------------------------------
    for name in ("wavefront", "spmp", "lbc", "dagp", "hdagg"):
        if name == "hdagg":
            s = hdagg(g, cost, P, epsilon=0.34)
        else:
            s = SCHEDULERS[name](g, cost, P)
        s.validate(g)
        show_schedule(name, s)

    waves = compute_wavefronts(g)
    s = hdagg(g, cost, P, epsilon=0.34)
    print(
        f"\nHDagg uses {s.n_levels - 1} barriers vs {waves.n_levels - 1} "
        f"for wavefront scheduling (Figure 1(e) vs 1(a))"
    )


if __name__ == "__main__":
    main()
