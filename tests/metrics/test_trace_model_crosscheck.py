"""Trace-vs-model differential (satellite S3).

Three views of load imbalance must agree:

* **traced** — per-core busy time from the simulator's collected timeline
  (``measured_pg``), the observability layer's measurement;
* **simulated** — ``SimulationResult.potential_gain``, the paper's
  measured PG (Section IV-D) — must match the trace *exactly*, since the
  timeline replays the same model;
* **predicted** — the inspector-side PGP (Equation 1,
  :func:`repro.core.pgp.accumulated_pgp`) — a static prediction from the
  cost model, which the paper shows correlates with PG (Figure 4); the
  empirical gap over this suite peaks at ~0.09, so 0.12 is a regression
  tripwire, not a theorem.
"""

import numpy as np
import pytest

from repro.kernels import KERNELS
from repro.metrics.load_balance import imbalance_ratio, measured_pg
from repro.observability.reports import imbalance_comparison
from repro.runtime.machine import MACHINES
from repro.runtime.simulator import simulate
from repro.schedulers import SCHEDULERS
from repro.sparse import apply_ordering, lower_triangle
from repro.suite.matrices import small_suite

#: |traced PG - predicted PGP| bound over the small suite (see module doc)
PGP_TOLERANCE = 0.12

ALGORITHMS = ("hdagg", "spmp", "lbc")


def _cells():
    machine = MACHINES["laptop4"]
    for spec in small_suite():
        ordered, _ = apply_ordering(spec.build(), "nd")
        for kname in ("sptrsv", "spilu0"):
            kernel = KERNELS[kname]
            operand = lower_triangle(ordered) if kname == "sptrsv" else ordered
            yield spec.name, kname, kernel, operand, machine


@pytest.fixture(scope="module")
def grid():
    """(name, algo) -> (schedule, cost, SimulationResult) over the suite."""
    out = {}
    for mname, kname, kernel, operand, machine in _cells():
        g = kernel.dag(operand)
        cost = kernel.cost(operand)
        mem = kernel.memory_model(operand, g)
        for algo in ALGORITHMS:
            schedule = SCHEDULERS[algo](g, cost, machine.n_cores)
            result = simulate(schedule, g, cost, mem, machine,
                              collect_timeline=True)
            out[(mname, kname, algo)] = (schedule, cost, result)
    return out


def test_traced_pg_equals_simulated_pg(grid):
    """The timeline is a faithful replay: traced PG == the simulator's PG."""
    for key, (_, _, result) in grid.items():
        tl = result.timeline
        assert tl is not None, key
        tl.check_invariants(tol=1e-6)
        assert tl.measured_pg() == pytest.approx(measured_pg(result),
                                                 abs=1e-9), key
        np.testing.assert_allclose(tl.busy_per_core(), result.core_busy_cycles,
                                   rtol=1e-12, atol=1e-9, err_msg=str(key))
        assert tl.wall == pytest.approx(result.makespan_cycles, abs=1e-6), key


def test_traced_pg_agrees_with_pgp_prediction(grid):
    """Inspector PGP predicts the traced imbalance within tolerance."""
    worst = 0.0
    for key, (schedule, cost, result) in grid.items():
        c = imbalance_comparison(result.timeline, schedule, cost,
                                 simulated_pg=result.potential_gain)
        assert c["traced_vs_simulated"] == pytest.approx(0.0, abs=1e-9), key
        assert c["traced_vs_predicted"] <= PGP_TOLERANCE, (
            f"{key}: traced PG {c['traced_pg']:.3f} vs predicted PGP "
            f"{c['predicted_pgp']:.3f} — the cost model and the trace "
            f"have drifted apart"
        )
        worst = max(worst, c["traced_vs_predicted"])
    # the tolerance must stay a *tripwire*: if the whole grid sits far
    # below it, future drift would be invisible; keep some daylight
    assert worst > 0.0


def test_perfectly_balanced_matrix_has_zero_pg_everywhere(grid):
    """blocks-few is embarrassingly parallel: all three views must agree on 0."""
    for (mname, kname, algo), (schedule, cost, result) in grid.items():
        if mname != "blocks-few":
            continue
        c = imbalance_comparison(result.timeline, schedule, cost)
        assert c["traced_pg"] == pytest.approx(0.0, abs=1e-9)
        assert c["predicted_pgp"] == pytest.approx(0.0, abs=1e-9)


def test_imbalance_ratio_consistent_with_level_structure(grid):
    """Figure 7's ratio reflects the schedule the trace executed."""
    for key, (schedule, _, result) in grid.items():
        ratio = imbalance_ratio(schedule, result.timeline.n_cores)
        assert 0.0 <= ratio <= 1.0, key
        if ratio == 0.0 and schedule.n_levels > 0:
            # every level has >= p independent workloads: no structural
            # starvation, so some core is busy in the trace at all times
            assert result.timeline.measured_pg() < 1.0
