"""The 34-matrix evaluation dataset.

Substitution for the paper's 34 SuiteSparse SPD matrices (Section V), which
are not redistributable here.  The suite below is generated (seeded,
deterministic) and spans the same structural axes the paper selected for:

* **chains** — DAGs dominated by long chains (favour DAGP);
* **high average parallelism** — wide, shallow DAGs (favour
  Wavefront/SpMP);
* **near-chordal** — banded/clique-chained patterns whose etrees decompose
  well (favour LBC);
* **meshes** — 2D/3D discretisations, the bread-and-butter middle ground;
* **irregular** — random and power-law patterns (non-tree DAGs, HDagg's
  target class);
* **skewed** — arrowhead/power-law with heavy vertices (load-balance
  stress).

Sizes span ~8e3 to ~4e5 stored non-zeros — the paper's 5.1e5-5.9e7 range
divided by the documented ``DATASET_SCALE`` (see
:mod:`repro.runtime.machine`).  Every matrix is strictly diagonally
dominant SPD so SpIC0 is numerically stable, exactly as the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..sparse.csr import CSRMatrix
from ..sparse import generators as gen

__all__ = ["MatrixSpec", "SUITE", "suite_by_name", "small_suite", "FAMILIES"]

#: Structure families used in reports.
FAMILIES = ("mesh2d", "mesh3d", "banded", "random", "chain", "parallel", "skewed", "clique")


@dataclass(frozen=True)
class MatrixSpec:
    """One dataset entry: a named, seeded matrix recipe."""

    name: str
    family: str
    build: Callable[[], CSRMatrix]

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"unknown family {self.family!r}")


def _spec(name: str, family: str, fn: Callable[[], CSRMatrix]) -> MatrixSpec:
    return MatrixSpec(name=name, family=family, build=fn)


#: The full 34-matrix suite, ordered roughly by non-zero count.
SUITE: List[MatrixSpec] = [
    # -- 2D meshes (moderate parallelism, long-ish critical paths) --------
    _spec("mesh2d-s", "mesh2d", lambda: gen.poisson2d(48, seed=11)),
    _spec("mesh2d-m", "mesh2d", lambda: gen.poisson2d(72, seed=12)),
    _spec("mesh2d-l", "mesh2d", lambda: gen.poisson2d(104, seed=13)),
    _spec("mesh2d-xl", "mesh2d", lambda: gen.poisson2d(148, seed=14)),
    _spec("mesh2d-rect", "mesh2d", lambda: gen.poisson2d(192, 56, seed=15)),
    # -- 3D meshes (wider wavefronts for the same nnz) ---------------------
    _spec("mesh3d-s", "mesh3d", lambda: gen.poisson3d(13, seed=21)),
    _spec("mesh3d-m", "mesh3d", lambda: gen.poisson3d(18, seed=22)),
    _spec("mesh3d-l", "mesh3d", lambda: gen.poisson3d(24, seed=23)),
    _spec("mesh3d-xl", "mesh3d", lambda: gen.poisson3d(30, seed=24)),
    _spec("mesh3d-slab", "mesh3d", lambda: gen.poisson3d(44, 20, 10, seed=25)),
    # -- banded / near-chordal (favour LBC) --------------------------------
    _spec("band-narrow", "banded", lambda: gen.banded_spd(9000, 6, seed=31)),
    _spec("band-wide", "banded", lambda: gen.banded_spd(5200, 22, fill=0.7, seed=32)),
    _spec("band-sparse", "banded", lambda: gen.banded_spd(14000, 12, fill=0.35, seed=33)),
    _spec("band-dense", "banded", lambda: gen.banded_spd(3400, 34, fill=0.95, seed=34)),
    # -- random irregular (HDagg's target: non-tree DAGs) ------------------
    _spec("rand-sparse", "random", lambda: gen.random_spd(11000, 4.0, seed=41)),
    _spec("rand-mid", "random", lambda: gen.random_spd(8200, 8.0, seed=42)),
    _spec("rand-dense", "random", lambda: gen.random_spd(4600, 16.0, seed=43)),
    _spec("rand-large", "random", lambda: gen.random_spd(21000, 6.0, seed=44)),
    # -- chain-heavy (favour DAGP) ------------------------------------------
    _spec("chain-pure", "chain", lambda: gen.tridiagonal_spd(16000, seed=51)),
    _spec("chain-long", "chain", lambda: gen.tridiagonal_spd(40000, seed=52)),
    _spec("ladder-s", "chain", lambda: gen.ladder_spd(7000, seed=53)),
    _spec("ladder-l", "chain", lambda: gen.ladder_spd(19000, seed=54)),
    # -- embarrassingly parallel (favour Wavefront/SpMP) --------------------
    _spec("blocks-many", "parallel", lambda: gen.block_diagonal_spd(420, 22, seed=61)),
    _spec("blocks-few", "parallel", lambda: gen.block_diagonal_spd(64, 52, seed=62)),
    _spec("blocks-tiny", "parallel", lambda: gen.block_diagonal_spd(2600, 6, seed=63)),
    # -- skewed cost distributions (load-balance stress) --------------------
    _spec("arrow-few", "skewed", lambda: gen.arrowhead_spd(9000, 3, seed=71)),
    _spec("arrow-many", "skewed", lambda: gen.arrowhead_spd(5000, 12, seed=72)),
    _spec("power-soft", "skewed", lambda: gen.power_law_spd(10000, 6.0, exponent=2.6, seed=73)),
    _spec("power-hard", "skewed", lambda: gen.power_law_spd(7400, 9.0, exponent=2.1, seed=74)),
    _spec("power-large", "skewed", lambda: gen.power_law_spd(17000, 5.0, exponent=2.4, seed=75)),
    # -- clique chains (step-1 aggregation showcase) ------------------------
    _spec("kite-small", "clique", lambda: gen.kite_chain_spd(360, 9, seed=81)),
    _spec("kite-large", "clique", lambda: gen.kite_chain_spd(190, 17, seed=82)),
    _spec("kite-many", "clique", lambda: gen.kite_chain_spd(1400, 5, seed=83)),
    _spec("kite-wide", "clique", lambda: gen.kite_chain_spd(90, 30, seed=84)),
]

assert len(SUITE) == 34, f"suite must have 34 matrices, has {len(SUITE)}"


def suite_by_name() -> Dict[str, MatrixSpec]:
    """Name -> spec mapping."""
    return {s.name: s for s in SUITE}


def small_suite(max_n: int = 6000) -> List[MatrixSpec]:
    """Quick subset for smoke benchmarks: one spec per family, smallest first.

    Selection is by *generated* size, so it costs one build per candidate;
    use in tests and ``--quick`` CLI runs only.
    """
    chosen: Dict[str, MatrixSpec] = {}
    for spec in SUITE:
        if spec.family in chosen:
            continue
        if spec.build().n_rows <= max_n:
            chosen[spec.family] = spec
    return list(chosen.values())
