"""Environment fingerprints: digest semantics and collection."""

import dataclasses

from repro.perflab.fingerprint import (
    PERF_SCHEMA_VERSION,
    EnvironmentFingerprint,
    collect_fingerprint,
)


def make_fp(**overrides):
    base = dict(
        cpu_model="TestCPU", cpu_count=8, governor="performance",
        os="Linux-test", python="3.11.0", numpy="2.0.0", scipy="1.12.0",
        blas="openblas 0.3",
    )
    base.update(overrides)
    return EnvironmentFingerprint(**base)


def test_schema_version_is_two():
    assert PERF_SCHEMA_VERSION == 2


def test_digest_keys_only_the_environment():
    a = make_fp()
    # provenance must NOT change the digest: a new commit or an armed
    # fault plan continues the same longitudinal series
    b = make_fp()
    b = dataclasses.replace(b, git_sha="abc123", faults_armed=True,
                            observability_enabled=True,
                            extra={"note": "x"})
    assert a.digest == b.digest
    # but any environment-key field splits the series
    assert make_fp(numpy="2.1.0").digest != a.digest
    assert make_fp(cpu_count=16).digest != a.digest
    assert make_fp(governor="powersave").digest != a.digest


def test_backend_field_splits_the_series():
    a = make_fp()
    # a non-empty backend is part of the environment key: compiled-tier
    # and numpy-tier timings must never share a longitudinal series
    assert make_fp(backend="compiled").digest != a.digest
    assert make_fp(backend="compiled").digest != make_fp(backend="numpy").digest
    # ...but the explicit default tier still differs from "unstated"
    assert make_fp(backend="numpy").digest != a.digest
    assert "backend compiled" in make_fp(backend="compiled").describe()


def test_empty_backend_keeps_pre_backend_digests():
    # histories and blessed baselines written before the backend field
    # existed hash only the original key fields; an empty backend must
    # reproduce that digest exactly so they stay comparable
    fp = make_fp()
    legacy = tuple(getattr(fp, f) for f in fp._KEY_FIELDS)
    import hashlib

    assert fp.digest == hashlib.sha256(repr(legacy).encode()).hexdigest()[:12]


def test_collect_stamps_backend():
    assert collect_fingerprint().backend == ""
    fp = collect_fingerprint(backend="coarsen=compiled,lbp=compiled")
    assert fp.backend == "coarsen=compiled,lbp=compiled"
    assert EnvironmentFingerprint.from_dict(fp.as_dict()) == fp


def test_roundtrip_preserves_digest():
    fp = make_fp(git_sha="deadbee", extra={"k": "v"})
    blob = fp.as_dict()
    assert blob["digest"] == fp.digest
    again = EnvironmentFingerprint.from_dict(blob)
    assert again == fp
    assert again.digest == fp.digest


def test_collect_runs_and_describes(monkeypatch):
    fp = collect_fingerprint(run="unit-test")
    assert fp.python
    assert fp.numpy
    assert fp.cpu_count >= 1
    assert fp.extra == {"run": "unit-test"}
    text = fp.describe()
    assert fp.digest in text
    assert fp.python in text


def test_collect_sees_armed_faults():
    from repro.resilience.faults import FaultPlan, FaultSpec, armed

    assert collect_fingerprint().faults_armed is False
    plan = FaultPlan([FaultSpec("inspector.stage", "stall", duration=0.0)])
    with armed(plan):
        inside = collect_fingerprint()
    assert inside.faults_armed is True
    # provenance only: same digest with or without the armed plan
    assert inside.digest == collect_fingerprint().digest
