"""Footprint models and the static race detector."""

import numpy as np
import pytest

from repro.analysis import (
    detect_races,
    implied_dag,
    kernel_footprint,
    spic0_footprint,
    spilu0_footprint,
    sptrsv_footprint,
)
from repro.core.schedule import Schedule, WidthPartition
from repro.kernels import KERNELS
from repro.schedulers import SCHEDULERS
from repro.sparse import csr_from_dense, lower_triangle


@pytest.fixture(scope="module")
def tiny_chain():
    """L = unit-ish lower bidiagonal: x1 needs x0, x2 needs x1."""
    return csr_from_dense(np.array([[2.0, 0, 0], [1, 2, 0], [0, 1, 2]]))


def _sched(levels, n, sync="barrier"):
    return Schedule(
        n=n,
        levels=[[WidthPartition(c, np.asarray(v, dtype=np.int64)) for c, v in lev] for lev in levels],
        sync=sync,
        algorithm="manual",
        n_cores=max(len(lev) for lev in levels),
    )


def test_sptrsv_footprint_by_hand(tiny_chain):
    fp = sptrsv_footprint(tiny_chain)
    assert fp.n == 3 and fp.n_locations == 3
    assert fp.reads(0).tolist() == [] and fp.writes(0).tolist() == [0]
    assert fp.reads(1).tolist() == [0] and fp.writes(1).tolist() == [1]
    assert fp.reads(2).tolist() == [1] and fp.writes(2).tolist() == [2]
    assert fp.n_accesses == 5


def test_spic0_footprint_by_hand(tiny_spd):
    # lower pattern rows: {0}, {0,1}, {1,2} -> slots 0 | 1,2 | 3,4
    fp = spic0_footprint(tiny_spd)
    assert fp.n_locations == 5
    assert fp.writes(0).tolist() == [0] and fp.reads(0).tolist() == []
    assert fp.writes(1).tolist() == [1, 2] and fp.reads(1).tolist() == [0]
    assert fp.writes(2).tolist() == [3, 4] and fp.reads(2).tolist() == [1, 2]


def test_spilu0_footprint_by_hand(tiny_spd):
    # full pattern rows: {0,1}, {0,1,2}, {1,2} -> slots 0,1 | 2,3,4 | 5,6
    fp = spilu0_footprint(tiny_spd)
    assert fp.n_locations == 7
    assert fp.writes(0).tolist() == [0, 1] and fp.reads(0).tolist() == []
    # row 1 depends on row 0: reads its diagonal + upper slots {0, 1}
    assert fp.writes(1).tolist() == [2, 3, 4] and fp.reads(1).tolist() == [0, 1]
    # row 2 depends on row 1: reads diag..end of row 1, slots {3, 4}
    assert fp.writes(2).tolist() == [5, 6] and fp.reads(2).tolist() == [3, 4]


def test_spilu0_requires_full_diagonal():
    a = csr_from_dense(np.array([[1.0, 0], [1.0, 0]]))
    with pytest.raises(ValueError, match="diagonal"):
        spilu0_footprint(a)


def test_kernel_footprint_registry(tiny_spd):
    fp = kernel_footprint("spic0", tiny_spd)
    assert fp.n == 3
    with pytest.raises(KeyError, match="gauss"):
        kernel_footprint("gauss_seidel", tiny_spd)


@pytest.mark.parametrize("kname", ["sptrsv", "spic0", "spilu0"])
def test_implied_dag_matches_kernel_dag(kname, mesh_nd):
    """The footprints must re-derive exactly the kernel's dependence DAG."""
    kernel = KERNELS[kname]
    operand = lower_triangle(mesh_nd) if kname == "sptrsv" else mesh_nd
    g = kernel.dag(operand)
    h = implied_dag(kernel_footprint(kname, operand))
    assert set(zip(*map(np.ndarray.tolist, g.edge_list()))) == set(
        zip(*map(np.ndarray.tolist, h.edge_list()))
    )


def test_write_read_race_flagged(tiny_chain):
    fp = sptrsv_footprint(tiny_chain)
    # 0 and 1 in the same wavefront on different partitions: 1 reads x[0]
    s = _sched([[(0, [0]), (1, [1])], [(0, [2])]], 3)
    report = detect_races(s, fp)
    assert not report.ok and report.n_conflicting_groups == 1
    w = report.witnesses[0]
    assert (w.location, w.level) == (0, 0)
    assert w.writer == 0 and w.other == 1 and not w.other_is_write
    assert "write/read" in w.describe() and "RACES" in report.describe()
    assert w.as_dict()["other_partition"] != w.as_dict()["writer_partition"]


def test_write_write_race_flagged():
    # two rows writing the same factor slots concurrently
    a = csr_from_dense(np.array([[2.0, 1, 0], [1, 2, 0], [0, 0, 2]]))
    fp = spilu0_footprint(a)
    # rows 0 and 1 conflict (1 reads/writes row 0's slots); same wavefront
    s = _sched([[(0, [0]), (1, [1]), (2, [2])]], 3)
    report = detect_races(s, fp)
    assert not report.ok


def test_same_partition_not_a_race(tiny_chain):
    fp = sptrsv_footprint(tiny_chain)
    # sequential within one partition: ordered, never concurrent
    s = _sched([[(0, [0, 1, 2])]], 3)
    assert detect_races(s, fp).ok


def test_different_levels_not_a_race(tiny_chain):
    fp = sptrsv_footprint(tiny_chain)
    s = _sched([[(0, [0])], [(0, [1])], [(0, [2])]], 3)
    assert detect_races(s, fp).ok


def test_read_read_sharing_not_a_race():
    # rows 1 and 2 both read x[0] only: concurrent reads are fine
    low = csr_from_dense(np.array([[2.0, 0, 0], [1, 2, 0], [1, 0, 2]]))
    fp = sptrsv_footprint(low)
    s = _sched([[(0, [0])], [(0, [1]), (1, [2])]], 3)
    assert detect_races(s, fp).ok


def test_footprint_schedule_size_mismatch(tiny_chain):
    fp = sptrsv_footprint(tiny_chain)
    s = _sched([[(0, [0, 1])]], 2)
    with pytest.raises(ValueError, match="iterations"):
        detect_races(s, fp)


def test_race_meta_stamping(tiny_chain):
    fp = sptrsv_footprint(tiny_chain)
    s = _sched([[(0, [0, 1, 2])]], 3)
    report = detect_races(s, fp)
    assert report.ok and report.n_accesses == fp.n_accesses
    assert s.meta["stage_seconds"]["race_detect"] >= report.seconds > 0.0
    detect_races(s, fp, stamp_meta=False)
    before = s.meta["stage_seconds"]["race_detect"]
    assert s.meta["stage_seconds"]["race_detect"] == before


@pytest.mark.parametrize("kname", ["sptrsv", "spic0", "spilu0"])
@pytest.mark.parametrize("algo", sorted(SCHEDULERS))
def test_all_schedulers_race_free(kname, algo, mesh_nd):
    if algo == "mkl" and kname != "sptrsv":
        pytest.skip("MKL baseline is SpTRSV-only")
    kernel = KERNELS[kname]
    operand = lower_triangle(mesh_nd) if kname == "sptrsv" else mesh_nd
    g = kernel.dag(operand)
    s = SCHEDULERS[algo](g, kernel.cost(operand), 4)
    report = detect_races(s, kernel_footprint(kname, operand))
    assert report.ok, report.describe()
