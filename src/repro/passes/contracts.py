"""Typed artifacts, pipeline invariants, and per-pass contracts.

A :class:`~repro.passes.base.Pass` declares *what it consumes and what it
guarantees* instead of relying on call order alone:

``requires`` / ``produces``
    Named, typed **artifacts** — the values flowing between inspector
    stages (the dependence DAG, the reduced DAG, the subtree grouping,
    the coarsened wavefronts, the final schedule).  The catalog below is
    closed: a contract naming an unknown artifact is a construction-time
    error, so typos cannot silently satisfy the verifier.

``requires_invariants`` / ``establishes`` / ``preserves`` / ``invalidates``
    Named **invariants** — facts about the pipeline state that hold from
    the moment a pass establishes them until a pass invalidates them.
    ``preserves`` is a consistency declaration: the verifier warns when a
    pass claims to preserve an invariant that is not currently held.

:func:`repro.statan.verify_pipeline` runs a dataflow analysis over these
declarations and rejects an ill-formed pass list *before anything runs*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from difflib import get_close_matches
from typing import Mapping, Tuple

__all__ = [
    "ARTIFACTS",
    "INVARIANTS",
    "Contract",
    "ContractError",
]

#: Closed catalog of artifact names, each with a one-line description.
#: The names are the vocabulary every contract is written in.
ARTIFACTS: Mapping[str, str] = {
    "DAG": "the kernel's dependence DAG (id-topological, as built by the kernel)",
    "Cost": "per-iteration cost vector aligned with the DAG's vertex ids",
    "Cores": "physical core count p (Listing 2's num_cores())",
    "Epsilon": "load-balance threshold for PGP (Listing 2's epsilon())",
    "Backend": "canonical description of the effective backend spec",
    "ReducedDAG": "DAG after two-hop transitive reduction (== DAG when disabled)",
    "Grouping": "partition of vertices into aggregation groups (step 1)",
    "CoarseDAG": "the coarsened DAG G'' with one vertex per group",
    "GroupCost": "per-group cost vector aligned with CoarseDAG vertex ids",
    "Wavefronts": "level decomposition of a DAG (level sets + pointers)",
    "CoarsenedWaves": "LBP outcome: coarsened wavefronts with their packings",
    "LBPPartition": "per-coarsened-wavefront component lists and bin packings",
    "Schedule": "the executable schedule of levels of width-partitions",
}

#: Closed catalog of invariant names.
INVARIANTS: Mapping[str, str] = {
    "acyclic": "the active DAG has no cycles",
    "topo-ordered": "vertex ids form a topological order of the active DAG",
    "transitively-reduced": "no edge of the active DAG is implied by a two-hop path",
    "dependence-closed": "every dependence is honored by the level/sync structure",
    "bit-identical-under-backend": "output bytes do not depend on the backend tier",
    "vertex-cover": "the schedule covers every DAG vertex exactly once",
    "balanced-under-epsilon": "packing PGP within epsilon, or the fine-grained fallback taken",
    "input-immutable": "passes never mutate their input artifacts (lint-enforced)",
}


class ContractError(ValueError):
    """A contract names an unknown artifact or invariant."""


def _check_names(names: Tuple[str, ...], catalog: Mapping[str, str], kind: str) -> None:
    for name in names:
        if name not in catalog:
            hint = get_close_matches(name, catalog, n=1)
            suffix = f"; did you mean {hint[0]!r}?" if hint else ""
            raise ContractError(
                f"unknown {kind} {name!r} (catalog: {sorted(catalog)}){suffix}"
            )


@dataclass(frozen=True)
class Contract:
    """Declared dataflow and invariant behaviour of one pass.

    All fields are tuples of catalog names; construction validates every
    name against :data:`ARTIFACTS` / :data:`INVARIANTS`.
    """

    requires: Tuple[str, ...] = field(default=())
    produces: Tuple[str, ...] = field(default=())
    requires_invariants: Tuple[str, ...] = field(default=())
    establishes: Tuple[str, ...] = field(default=())
    preserves: Tuple[str, ...] = field(default=())
    invalidates: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        _check_names(tuple(self.requires), ARTIFACTS, "artifact")
        _check_names(tuple(self.produces), ARTIFACTS, "artifact")
        for group in (self.requires_invariants, self.establishes, self.preserves, self.invalidates):
            _check_names(tuple(group), INVARIANTS, "invariant")
        dup = set(self.establishes) & set(self.invalidates)
        if dup:
            raise ContractError(
                f"contract both establishes and invalidates {sorted(dup)}"
            )
