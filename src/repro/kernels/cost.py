"""Per-iteration cost functions: "number of non-zero elements touched".

Section IV-A of the paper adopts the LBC cost model: the cost of iteration
``i`` is the number of non-zeros its computation touches.  The three kernels
touch different sets:

* SpTRSV row ``i`` streams row ``i`` of ``L`` once: ``cost = nnz(L, i)``.
* SpIC0 row ``i`` touches row ``i`` of the lower factor plus, for every
  stored ``L[i, j]`` with ``j < i``, the prefix of factored row ``j``:
  ``cost = nnz(i) + sum_j nnz(j)`` over lower neighbours (an upper bound on
  the merge length, computable in O(nnz)).
* SpILU0 row ``i`` touches row ``i`` of ``A`` plus the updating rows ``k``
  for every stored ``A[i, k]``, ``k < i``: same shape over the full rows.

All functions are vectorized: a gather of row sizes followed by a segmented
sum.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix, INDEX_DTYPE

__all__ = ["sptrsv_cost", "spic0_cost", "spilu0_cost", "uniform_cost"]


def _self_plus_lower_neighbor_rows(a: CSRMatrix, row_sizes: np.ndarray) -> np.ndarray:
    """``cost[i] = row_sizes[i] + sum(row_sizes[j] for stored (i, j), j < i)``."""
    n = a.n_rows
    row_of = np.repeat(np.arange(n, dtype=INDEX_DTYPE), a.row_nnz())
    below = a.indices < row_of
    contrib = row_sizes[a.indices[below]].astype(np.float64)
    cost = row_sizes.astype(np.float64).copy()
    np.add.at(cost, row_of[below], contrib)
    return cost


def sptrsv_cost(low: CSRMatrix) -> np.ndarray:
    """SpTRSV cost: non-zeros of each row of ``L`` (float64, length ``n``)."""
    return low.row_nnz().astype(np.float64)


def spic0_cost(a: CSRMatrix) -> np.ndarray:
    """SpIC0 cost over the lower triangle of ``a``.

    ``a`` may be the full symmetric matrix or already lower-triangular; only
    entries with ``col <= row`` participate.
    """
    n = a.n_rows
    row_of = np.repeat(np.arange(n, dtype=INDEX_DTYPE), a.row_nnz())
    in_lower = a.indices <= row_of
    lower_sizes = np.zeros(n, dtype=INDEX_DTYPE)
    np.add.at(lower_sizes, row_of[in_lower], 1)
    below = a.indices < row_of
    cost = lower_sizes.astype(np.float64).copy()
    np.add.at(cost, row_of[below], lower_sizes[a.indices[below]].astype(np.float64))
    return cost


def spilu0_cost(a: CSRMatrix) -> np.ndarray:
    """SpILU0 cost over the full pattern of ``a``."""
    return _self_plus_lower_neighbor_rows(a, a.row_nnz())


def uniform_cost(n: int) -> np.ndarray:
    """Unit cost per iteration (ablation control for the cost model)."""
    return np.ones(n, dtype=np.float64)
