"""Experiment harness: run (matrix x kernel x algorithm x machine) grids.

This is the programmatic engine behind every table and figure benchmark.
For one matrix it:

1. builds and ND-reorders the matrix (the paper's METIS pre-pass,
   Section V);
2. derives the kernel inputs: operand matrix, dependence DAG, cost vector,
   memory model;
3. runs each inspector, validates its schedule against the DAG (structural
   + dependence safety), and simulates it on each machine;
4. records the paper's metrics per run (speedup vs the simulated sequential
   execution, locality, measured PG, sync counts, imbalance ratio, NRE).

Everything is cached per matrix so the grid costs one DAG build and one
memory model per kernel, not one per algorithm.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..analysis.verifier import assert_schedule_safe
from ..core.pgp import DEFAULT_EPSILON, accumulated_pgp
from ..core.schedule_cache import ScheduleCache, schedule_key
from ..kernels import KERNELS
from ..metrics.load_balance import imbalance_ratio
from ..metrics.nre import inspector_cost_model, nre
from ..metrics.parallelism import dag_shape
from ..metrics.synchronization import equivalent_p2p_syncs
from ..runtime.machine import MACHINES, MachineConfig
from ..runtime.simulator import SimulationResult, simulate
from ..schedulers import SCHEDULERS
from ..sparse.csr import CSRMatrix
from ..sparse.ordering import apply_ordering
from ..sparse.triangular import lower_triangle
from .matrices import MatrixSpec

__all__ = ["RunRecord", "MatrixContext", "Harness", "DEFAULT_ALGORITHMS"]

#: The paper's comparison set (MKL is SpTRSV-only, handled by the harness).
DEFAULT_ALGORITHMS = ("hdagg", "spmp", "wavefront", "lbc", "dagp", "mkl")


@dataclass
class RunRecord:
    """Metrics of one (matrix, kernel, algorithm, machine) execution."""

    matrix: str
    family: str
    kernel: str
    algorithm: str
    machine: str
    n: int
    nnz: int
    n_wavefronts: int
    average_parallelism: float
    nnz_per_wavefront: float
    speedup: float
    makespan_cycles: float
    serial_cycles: float
    avg_memory_access_latency: float
    hit_rate: float
    potential_gain: float
    pgp: float
    equivalent_syncs: float
    n_barriers: int
    n_p2p_syncs: int
    imbalance_ratio: float
    inspector_cycles: float
    nre: float
    schedule_levels: int
    schedule_partitions: int
    fine_grained: bool
    inspector_seconds: float
    #: per-stage inspector seconds (HDagg populates this; empty otherwise)
    stage_seconds: dict = field(default_factory=dict)
    #: True when the schedule came from the harness's structure-keyed cache
    schedule_cached: bool = False


@dataclass
class MatrixContext:
    """Cached per-matrix artefacts shared across algorithms/machines."""

    spec: MatrixSpec
    matrix: CSRMatrix  # reordered full SPD matrix
    kernels: Dict[str, dict] = field(default_factory=dict)  # kernel -> artefacts


class Harness:
    """Grid runner over the suite.

    Parameters
    ----------
    machines:
        Machine names (keys of :data:`repro.runtime.machine.MACHINES`) or
        :class:`MachineConfig` objects.
    kernels:
        Kernel names among ``{"sptrsv", "spic0", "spilu0"}``.
    algorithms:
        Scheduler names; ``"mkl"`` is automatically restricted to SpTRSV
        (MKL has no parallel SpIC0/SpILU0, Section V).
    ordering:
        Symmetric pre-ordering applied to every matrix (paper: METIS; here
        ``"nd"`` by default).
    epsilon:
        HDagg/LBC load-balance threshold.
    schedule_cache:
        Optional :class:`~repro.core.schedule_cache.ScheduleCache`.  When
        set, every inspection is keyed by the DAG structure and parameters;
        repeated structures (re-runs, parameter sweeps sharing a matrix)
        reuse the cached schedule instead of re-inspecting.  Cached hits
        are flagged in ``RunRecord.schedule_cached``.
    """

    def __init__(
        self,
        machines: Sequence = ("intel20",),
        kernels: Sequence[str] = ("sptrsv", "spic0", "spilu0"),
        algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
        *,
        ordering: str = "nd",
        epsilon: float = DEFAULT_EPSILON,
        validate: bool = True,
        schedule_cache: Optional[ScheduleCache] = None,
    ) -> None:
        self.machines: List[MachineConfig] = [
            m if isinstance(m, MachineConfig) else MACHINES[m] for m in machines
        ]
        for k in kernels:
            if k not in KERNELS:
                raise KeyError(f"unknown kernel {k!r}")
        self.kernels = tuple(kernels)
        for a in algorithms:
            if a not in SCHEDULERS:
                raise KeyError(f"unknown algorithm {a!r}")
        self.algorithms = tuple(algorithms)
        self.ordering = ordering
        self.epsilon = epsilon
        self.validate = validate
        self.schedule_cache = schedule_cache

    def __getstate__(self) -> dict:
        # worker processes re-inspect rather than ship the cache's schedules
        state = self.__dict__.copy()
        state["schedule_cache"] = None
        return state

    # ------------------------------------------------------------------
    def prepare(self, spec: MatrixSpec) -> MatrixContext:
        """Build, reorder, and derive kernel artefacts for one matrix."""
        raw = spec.build()
        ordered, _ = apply_ordering(raw, self.ordering)
        ctx = MatrixContext(spec=spec, matrix=ordered)
        for kname in self.kernels:
            kernel = KERNELS[kname]
            operand = lower_triangle(ordered) if kname == "sptrsv" else ordered
            g = kernel.dag(operand)
            cost = kernel.cost(operand)
            memory = kernel.memory_model(operand, g)
            shape = dag_shape(g)
            ctx.kernels[kname] = {
                "kernel": kernel,
                "operand": operand,
                "dag": g,
                "cost": cost,
                "memory": memory,
                "shape": shape,
            }
        return ctx

    def _algorithms_for(self, kernel: str) -> Iterable[str]:
        for a in self.algorithms:
            if a == "mkl" and kernel != "sptrsv":
                continue  # MKL's SpIC0/SpILU0 are not parallel (Section V)
            yield a

    # ------------------------------------------------------------------
    def run_matrix(self, spec: MatrixSpec) -> List[RunRecord]:
        """All records for one matrix across the configured grid."""
        ctx = self.prepare(spec)
        records: List[RunRecord] = []
        for kname in self.kernels:
            art = ctx.kernels[kname]
            g, cost, memory = art["dag"], art["cost"], art["memory"]
            shape = art["shape"]

            # serial reference per machine (sequential run owns the machine)
            serial_schedule = SCHEDULERS["serial"](g, cost)
            serial_results: Dict[str, SimulationResult] = {}
            for machine in self.machines:
                serial_results[machine.name] = simulate(
                    serial_schedule, g, cost, memory, machine.scaled(1)
                )

            for algo in self._algorithms_for(kname):
                for machine in self.machines:
                    uses_epsilon = algo in ("hdagg", "lbc")
                    key = None
                    cached = None
                    if self.schedule_cache is not None:
                        key = schedule_key(
                            g,
                            kernel=kname,
                            algorithm=algo,
                            p=machine.n_cores,
                            epsilon=self.epsilon if uses_epsilon else None,
                        )
                        cached = self.schedule_cache.get(key)
                    t0 = time.perf_counter()
                    if cached is not None:
                        schedule = cached
                    elif uses_epsilon:
                        schedule = SCHEDULERS[algo](g, cost, machine.n_cores, epsilon=self.epsilon)
                    else:
                        schedule = SCHEDULERS[algo](g, cost, machine.n_cores)
                    inspector_seconds = time.perf_counter() - t0
                    if key is not None and cached is None:
                        self.schedule_cache.put(key, schedule)
                    if self.validate and cached is None:
                        # structural check + dependence witness extraction;
                        # stamps "verify" into meta["stage_seconds"] so the
                        # verifier cost lands in RunRecord.stage_seconds
                        assert_schedule_safe(schedule, g)
                    sim = simulate(schedule, g, cost, memory, machine)
                    serial = serial_results[machine.name]
                    insp_cycles = inspector_cost_model(algo, g, schedule)
                    records.append(
                        RunRecord(
                            matrix=spec.name,
                            family=spec.family,
                            kernel=kname,
                            algorithm=algo,
                            machine=machine.name,
                            n=g.n,
                            nnz=ctx.matrix.nnz,
                            n_wavefronts=shape.n_wavefronts,
                            average_parallelism=shape.average_parallelism,
                            nnz_per_wavefront=ctx.matrix.nnz / max(1, shape.n_wavefronts),
                            speedup=serial.makespan_cycles / sim.makespan_cycles
                            if sim.makespan_cycles > 0
                            else float("inf"),
                            makespan_cycles=sim.makespan_cycles,
                            serial_cycles=serial.makespan_cycles,
                            avg_memory_access_latency=sim.avg_memory_access_latency,
                            hit_rate=sim.hit_rate,
                            potential_gain=sim.potential_gain,
                            pgp=accumulated_pgp(schedule, cost),
                            equivalent_syncs=equivalent_p2p_syncs(sim, machine.n_cores),
                            n_barriers=sim.n_barriers,
                            n_p2p_syncs=sim.n_p2p_syncs,
                            imbalance_ratio=imbalance_ratio(schedule, machine.n_cores),
                            inspector_cycles=insp_cycles,
                            nre=nre(insp_cycles, serial, sim),
                            schedule_levels=schedule.n_levels,
                            schedule_partitions=schedule.n_partitions,
                            fine_grained=schedule.fine_grained,
                            inspector_seconds=inspector_seconds,
                            stage_seconds=dict(schedule.meta.get("stage_seconds", {})),
                            schedule_cached=cached is not None,
                        )
                    )
        return records

    def run_suite(
        self,
        specs: Sequence[MatrixSpec],
        *,
        progress: bool = False,
        n_jobs: int = 1,
    ) -> List[RunRecord]:
        """Run the grid over many matrices; flat record list.

        ``n_jobs > 1`` fans the per-matrix work over a process pool.
        Records come back in exactly the same order as the serial run
        (``pool.map`` preserves input order, and each matrix's records are
        generated deterministically), so downstream tables are identical
        whichever mode produced them.  Worker processes do not share the
        schedule cache — each matrix is inspected once either way.
        """
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = None  # spawn cannot inherit matrix builders; run serially
        if n_jobs == 1 or len(specs) <= 1 or ctx is None:
            out: List[RunRecord] = []
            for i, spec in enumerate(specs):
                if progress:
                    print(f"[{i + 1}/{len(specs)}] {spec.name}", flush=True)
                out.extend(self.run_matrix(spec))
            return out
        # Matrix builders (closures) don't pickle; fork workers inherit the
        # payload through this module global and receive only an index.
        global _POOL_PAYLOAD
        _POOL_PAYLOAD = (self, list(specs))
        try:
            with ctx.Pool(processes=min(n_jobs, len(specs))) as pool:
                per_matrix = pool.map(_run_matrix_at, range(len(specs)))
        finally:
            _POOL_PAYLOAD = None
        out = []
        for i, records in enumerate(per_matrix):
            if progress:
                print(f"[{i + 1}/{len(specs)}] {specs[i].name}", flush=True)
            out.extend(records)
        return out


#: (harness, specs) visible to fork workers; see Harness.run_suite
_POOL_PAYLOAD: Optional[tuple] = None


def _run_matrix_at(index: int) -> List[RunRecord]:
    """Module-level pool worker: run one matrix of the inherited payload."""
    harness, specs = _POOL_PAYLOAD
    return harness.run_matrix(specs[index])
