"""Tests for HDagg step 1: aggregating densely connected vertices."""

import numpy as np
import pytest

from repro.core import aggregate_densely_connected, subtree_grouping
from repro.graph import DAG, coarsen_dag, dag_from_matrix_lower, is_acyclic
from repro.graph.transitive_reduction import transitive_reduction_two_hop


def groups_as_sets(grouping):
    return {frozenset(g.tolist()) for g in grouping.groups}


def test_chain_becomes_one_group():
    g = DAG.from_edges(4, [0, 1, 2], [1, 2, 3])
    grouping = subtree_grouping(g)
    assert groups_as_sets(grouping) == {frozenset({0, 1, 2, 3})}


def test_out_tree_groups_fully():
    """A reversed in-tree (all parents single-out-edge) groups into one."""
    #   0   1
    #    \ /
    #     2    3
    #      \  /
    #        4
    g = DAG.from_edges(5, [0, 1, 2, 3], [2, 2, 4, 4])
    grouping = subtree_grouping(g)
    assert groups_as_sets(grouping) == {frozenset({0, 1, 2, 3, 4})}


def test_multi_out_edge_vertex_not_grouped(diamond_dag):
    """Vertex 0 has out-degree > 1 after reduction, so it seeds its own group."""
    g = transitive_reduction_two_hop(diamond_dag)
    grouping = subtree_grouping(g)
    sets = groups_as_sets(grouping)
    assert frozenset({0}) in sets
    # 1 and 2 both have a single out-edge into 3 -> grouped with 3
    assert frozenset({1, 2, 3}) in sets


def test_shared_parent_not_stolen():
    """A parent with edges into two different groups joins neither as a
    subtree member unless all tree conditions hold."""
    # 0 -> 1, 0 -> 2; 1 and 2 are sinks
    g = DAG.from_edges(3, [0, 0], [1, 2])
    grouping = subtree_grouping(g)
    sets = groups_as_sets(grouping)
    assert frozenset({0}) in sets
    assert frozenset({1}) in sets
    assert frozenset({2}) in sets


def test_grouping_is_partition(all_small_matrices):
    for name, a in all_small_matrices.items():
        g = dag_from_matrix_lower(a)
        g_red, grouping = aggregate_densely_connected(g)
        grouping.validate()
        assert grouping.n_vertices == g.n, name


def test_coarse_dag_acyclic(all_small_matrices):
    for name, a in all_small_matrices.items():
        g = dag_from_matrix_lower(a)
        g_red, grouping = aggregate_densely_connected(g)
        assert is_acyclic(coarsen_dag(g_red, grouping)), name


def test_non_sink_members_have_out_degree_one(all_small_matrices):
    """Within each group, only the seed (smallest-level sink) may have
    out-degree != 1 in the reduced DAG."""
    for name, a in all_small_matrices.items():
        g = dag_from_matrix_lower(a)
        g_red, grouping = aggregate_densely_connected(g)
        out_deg = g_red.out_degree()
        for members in grouping.groups:
            if members.shape[0] == 1:
                continue
            multi = [int(v) for v in members if out_deg[v] != 1]
            # at most the group's sink can deviate
            assert len(multi) <= 1, (name, multi)


def test_kite_cliques_collapse(kite):
    """Each clique reduces to a chain; the bridge keeps the chain going, so
    step 1 folds the whole kite chain into one group."""
    g = dag_from_matrix_lower(kite)
    g_red, grouping = aggregate_densely_connected(g)
    assert grouping.n_groups < g.n / 4


def test_empty_graph():
    grouping = subtree_grouping(DAG.empty(0))
    assert grouping.n_groups == 0


def test_all_isolated():
    grouping = subtree_grouping(DAG.empty(5))
    assert grouping.n_groups == 5
