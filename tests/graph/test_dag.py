"""Unit tests for the CSR-backed DAG."""

import numpy as np
import pytest

from repro.graph import DAG, gather_slices


class TestConstruction:
    def test_from_edges(self):
        g = DAG.from_edges(4, [0, 0, 1], [1, 2, 3])
        assert g.n == 4
        assert g.n_edges == 3
        assert g.children(0).tolist() == [1, 2]
        assert g.children(1).tolist() == [3]
        assert g.children(3).tolist() == []

    def test_from_edges_dedup(self):
        g = DAG.from_edges(3, [0, 0, 0], [1, 1, 2])
        assert g.n_edges == 2

    def test_from_edges_keep_duplicates_sorted(self):
        # dedup=False still requires caller discipline; sorted order kept
        g = DAG.from_edges(3, [0, 0], [1, 2], dedup=False)
        assert g.children(0).tolist() == [1, 2]

    def test_empty(self):
        g = DAG.empty(5)
        assert g.n == 5
        assert g.n_edges == 0
        assert g.sinks().tolist() == [0, 1, 2, 3, 4]
        assert g.sources().tolist() == [0, 1, 2, 3, 4]

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            DAG.from_edges(2, [0], [0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="range"):
            DAG.from_edges(2, [0], [5])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            DAG.from_edges(2, [0, 1], [1])

    def test_readonly(self):
        g = DAG.from_edges(2, [0], [1])
        with pytest.raises(ValueError):
            g.indices[0] = 0


class TestAccessors:
    @pytest.fixture
    def g(self):
        #      0 -> 1 -> 3
        #      0 -> 2 -> 3 -> 4
        return DAG.from_edges(5, [0, 0, 1, 2, 3], [1, 2, 3, 3, 4])

    def test_degrees(self, g):
        assert g.out_degree().tolist() == [2, 1, 1, 1, 0]
        assert g.in_degree().tolist() == [0, 1, 1, 2, 1]

    def test_parents(self, g):
        assert g.parents(3).tolist() == [1, 2]
        assert g.parents(0).tolist() == []

    def test_sinks_sources(self, g):
        assert g.sinks().tolist() == [4]
        assert g.sources().tolist() == [0]

    def test_edge_list(self, g):
        src, dst = g.edge_list()
        assert list(zip(src.tolist(), dst.tolist())) == [
            (0, 1), (0, 2), (1, 3), (2, 3), (3, 4),
        ]

    def test_reverse(self, g):
        r = g.reverse()
        assert r.children(3).tolist() == [1, 2]
        assert r.reverse() == g

    def test_has_edge(self, g):
        assert g.has_edge(0, 2)
        assert not g.has_edge(2, 0)
        assert not g.has_edge(0, 4)

    def test_iter_edges(self, g):
        assert list(g.iter_edges()) == [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]

    def test_is_id_topological(self, g):
        assert g.is_id_topological()
        assert not DAG.from_edges(3, [2], [0]).is_id_topological()

    def test_equality(self, g):
        assert g == DAG.from_edges(5, [0, 0, 1, 2, 3], [1, 2, 3, 3, 4])
        assert g != DAG.from_edges(5, [0], [1])

    def test_not_hashable(self, g):
        with pytest.raises(TypeError):
            hash(g)


class TestGatherSlices:
    def test_gather(self):
        g = DAG.from_edges(4, [0, 0, 1, 2], [1, 2, 3, 3])
        out = gather_slices(g.indptr, g.indices, np.array([0, 2]))
        assert out.tolist() == [1, 2, 3]

    def test_empty_nodes(self):
        g = DAG.from_edges(2, [0], [1])
        assert gather_slices(g.indptr, g.indices, np.array([], dtype=np.int64)).size == 0

    def test_nodes_without_edges(self):
        g = DAG.from_edges(3, [0], [1])
        out = gather_slices(g.indptr, g.indices, np.array([1, 2]))
        assert out.size == 0

    def test_order_preserved(self):
        g = DAG.from_edges(4, [0, 0, 1], [2, 3, 2])
        out = gather_slices(g.indptr, g.indices, np.array([1, 0]))
        assert out.tolist() == [2, 2, 3]
