"""Evaluation suite: dataset, harness, and table/figure regeneration."""

from .autotune import DEFAULT_CANDIDATES, SchedulerChoice, choose_scheduler
from .dataset_report import dataset_report, dataset_rows
from .harness import DEFAULT_ALGORITHMS, Harness, MatrixContext, RunRecord
from .matrices import FAMILIES, SUITE, MatrixSpec, small_suite, suite_by_name
from .regression import RecordDelta, diff_records, regression_report
from .reporting import dump_json, format_kv, format_table, geomean
from .storage import load_records, records_from_json, records_to_json, save_records
from .sweeps import ScalingPoint, epsilon_sensitivity, strong_scaling
from .tables import (
    HIGH_PARALLELISM_THRESHOLD,
    LARGE_NNZ_THRESHOLD,
    index_records,
    table1_speedups,
    table2_metric_improvements,
    table3_categories,
)
from .figures import (
    fig4_pgp_vs_pg,
    fig5_per_matrix_speedups,
    fig6_performance_metrics,
    fig7_imbalance_ratio,
    fig8_speedup_vs_locality,
    fig9_nre,
)

__all__ = [
    "choose_scheduler",
    "dataset_report",
    "save_records",
    "strong_scaling",
    "epsilon_sensitivity",
    "ScalingPoint",
    "load_records",
    "diff_records",
    "regression_report",
    "RecordDelta",
    "records_to_json",
    "records_from_json",
    "dataset_rows",
    "SchedulerChoice",
    "DEFAULT_CANDIDATES",
    "Harness",
    "RunRecord",
    "MatrixContext",
    "DEFAULT_ALGORITHMS",
    "SUITE",
    "MatrixSpec",
    "FAMILIES",
    "small_suite",
    "suite_by_name",
    "format_table",
    "format_kv",
    "dump_json",
    "geomean",
    "table1_speedups",
    "table2_metric_improvements",
    "table3_categories",
    "index_records",
    "LARGE_NNZ_THRESHOLD",
    "HIGH_PARALLELISM_THRESHOLD",
    "fig4_pgp_vs_pg",
    "fig5_per_matrix_speedups",
    "fig6_performance_metrics",
    "fig7_imbalance_ratio",
    "fig8_speedup_vs_locality",
    "fig9_nre",
]
