"""Tests for the model extensions: p2p-HDagg and bandwidth contention."""

import dataclasses

import numpy as np
import pytest

from repro.core import hdagg
from repro.graph import dag_from_matrix_lower
from repro.kernels import KERNELS
from repro.runtime import LAPTOP4, simulate
from repro.sparse import lower_triangle


@pytest.fixture(scope="module")
def problem(request):
    mesh_nd = request.getfixturevalue("mesh_nd")
    kernel = KERNELS["spilu0"]
    g = kernel.dag(mesh_nd)
    return mesh_nd, kernel, g, kernel.cost(mesh_nd), kernel.memory_model(mesh_nd, g)


class TestP2PHDagg:
    def test_valid_and_correct(self, problem):
        a, kernel, g, cost, mem = problem
        s = hdagg(g, cost, 4, sync="p2p")
        assert s.sync == "p2p"
        s.validate(g)
        got = kernel.execute_in_order(a, s.execution_order())
        np.testing.assert_allclose(got.data, kernel.reference(a).data, rtol=1e-10)

    def test_same_partitioning_as_barrier(self, problem):
        _, _, g, cost, _ = problem
        barrier = hdagg(g, cost, 4)
        p2p = hdagg(g, cost, 4, sync="p2p")
        assert barrier.execution_order().tolist() == p2p.execution_order().tolist()
        assert barrier.n_barriers() > 0 and p2p.n_barriers() == 0

    def test_overlap_never_slower(self, problem):
        """Removing barriers (same partitions) cannot increase the makespan."""
        _, _, g, cost, mem = problem
        barrier = simulate(hdagg(g, cost, 4), g, cost, mem, LAPTOP4)
        p2p = simulate(hdagg(g, cost, 4, sync="p2p"), g, cost, mem, LAPTOP4)
        assert p2p.makespan_cycles <= barrier.makespan_cycles * 1.01

    def test_rejects_unknown_sync(self, problem):
        _, _, g, cost, _ = problem
        with pytest.raises(Exception):
            hdagg(g, cost, 4, sync="quantum")


class TestBandwidthContention:
    def test_off_by_default(self):
        assert LAPTOP4.bandwidth_contention == 0.0

    def test_contention_slows_parallel_runs(self, problem):
        _, _, g, cost, mem = problem
        s = hdagg(g, cost, 4)
        throttled = dataclasses.replace(LAPTOP4, bandwidth_contention=0.25)
        r0 = simulate(s, g, cost, mem, LAPTOP4)
        r1 = simulate(s, g, cost, mem, throttled)
        assert r1.makespan_cycles > r0.makespan_cycles
        # reported latency reflects the inflated miss cost
        assert r1.avg_memory_access_latency > r0.avg_memory_access_latency

    def test_serial_unaffected(self, problem):
        """A one-wide schedule has no concurrent cores to contend with."""
        from repro.schedulers import serial_schedule

        _, _, g, cost, mem = problem
        s = serial_schedule(g, cost)
        throttled = dataclasses.replace(
            LAPTOP4.scaled(1), bandwidth_contention=0.25
        )
        r0 = simulate(s, g, cost, mem, LAPTOP4.scaled(1))
        r1 = simulate(s, g, cost, mem, throttled)
        assert r1.makespan_cycles == pytest.approx(r0.makespan_cycles)

    def test_scaled_preserves_contention(self):
        m = dataclasses.replace(LAPTOP4, bandwidth_contention=0.3)
        assert m.scaled(2).bandwidth_contention == 0.3
