"""Tests for the reuse-distance profiler."""

import numpy as np
import pytest

from repro.core.schedule import Schedule, WidthPartition
from repro.graph import DAG, dag_from_matrix_lower
from repro.kernels import KERNELS, MemoryModel
from repro.metrics import ReuseProfile, reuse_profile
from repro.runtime import LAPTOP4, MachineConfig, simulate
from repro.schedulers import SCHEDULERS


def tiny_machine(p=2, cap=64):
    return MachineConfig(name="t", n_cores=p, cache_lines_per_core=cap)


def test_same_core_chain_counts_short_distance():
    g = DAG.from_edges(2, [0], [1])
    s = Schedule(
        n=2, levels=[[WidthPartition(0, np.array([0]))], [WidthPartition(0, np.array([1]))]],
        sync="barrier", algorithm="t", n_cores=2,
    )
    mem = MemoryModel(np.ones(2), np.ones(1))
    prof = reuse_profile(s, g, mem, tiny_machine())
    assert prof.cross_core_lines == 0.0
    assert prof.total_lines == 1.0
    assert prof.same_core_hist["0-16"] == 1.0


def test_cross_core_counts_as_coherence():
    g = DAG.from_edges(2, [0], [1])
    s = Schedule(
        n=2, levels=[[WidthPartition(0, np.array([0]))], [WidthPartition(1, np.array([1]))]],
        sync="barrier", algorithm="t", n_cores=2,
    )
    mem = MemoryModel(np.ones(2), np.ones(1))
    prof = reuse_profile(s, g, mem, tiny_machine())
    assert prof.cross_core_fraction == 1.0


def test_second_consumer_chains():
    g = DAG.from_edges(3, [0, 0], [1, 2])
    s = Schedule(
        n=3,
        levels=[
            [WidthPartition(0, np.array([0]))],
            [WidthPartition(1, np.array([1, 2]))],
        ],
        sync="barrier", algorithm="t", n_cores=2,
    )
    mem = MemoryModel(np.ones(3), np.ones(2))
    prof = reuse_profile(s, g, mem, tiny_machine())
    # first consumer cross-core, second chains off the first on core 1
    assert prof.cross_core_lines == 1.0
    assert sum(prof.same_core_hist.values()) == 1.0


def test_profile_consistent_with_simulator(mesh_nd):
    """Hits counted by the simulator == profile volume within capacity and
    on the same core (same rule, two views)."""
    kernel = KERNELS["spilu0"]
    g = kernel.dag(mesh_nd)
    cost = kernel.cost(mesh_nd)
    mem = kernel.memory_model(mesh_nd, g)
    for algo in ("hdagg", "wavefront"):
        s = SCHEDULERS[algo](g, cost, LAPTOP4.n_cores)
        prof = reuse_profile(s, g, mem, LAPTOP4, cost)
        sim = simulate(s, g, cost, mem, LAPTOP4)
        # simulator hits are edge-lines with same-core distance <= capacity
        # (bucket boundaries quantise the comparison, so allow the volume
        # in the bucket containing the capacity)
        lower = prof.within(LAPTOP4.cache_lines_per_core // 4)
        upper = prof.within(LAPTOP4.cache_lines_per_core * 4 + 1) + 1e-9
        assert lower - 1e-9 <= sim.hits <= upper + prof.total_lines * 0.05 + 1


def test_profile_totals(mesh_nd):
    kernel = KERNELS["sptrsv"]
    from repro.sparse import lower_triangle

    low = lower_triangle(mesh_nd)
    g = kernel.dag(low)
    mem = kernel.memory_model(low, g)
    s = SCHEDULERS["hdagg"](g, kernel.cost(low), 4)
    prof = reuse_profile(s, g, mem, LAPTOP4, kernel.cost(low))
    assert prof.total_lines == pytest.approx(float(mem.edge_lines.sum()))
    assert prof.cross_core_lines + sum(prof.same_core_hist.values()) == pytest.approx(
        prof.total_lines
    )
    assert 0.0 <= prof.cross_core_fraction <= 1.0


def test_empty_graph_profile():
    g = DAG.empty(3)
    s = SCHEDULERS["serial"](g, np.ones(3))
    mem = MemoryModel(np.ones(3), np.ones(0))
    prof = reuse_profile(s, g, mem, tiny_machine(p=1))
    assert prof.total_lines == 0.0
    assert prof.cross_core_fraction == 0.0
