"""Python wrappers around the compiled backend library.

Each wrapper matches its numpy counterpart's signature and produces
bit-identical results (enforced by tests/core/test_backend_differential).
On any native error (cycle, allocation failure) the wrapper silently
delegates to the numpy implementation so error behaviour — including the
exception type raised for cyclic graphs — comes from the canonical path.
"""

from __future__ import annotations

import ctypes
from typing import Callable, List, Optional, Tuple

import numpy as np

from ...graph.coarsen import Grouping
from ...graph.dag import DAG
from ...graph.wavefronts import Wavefronts, compute_wavefronts
from ...sparse.csr import INDEX_DTYPE
from ..binpack import BinPacking
from ..lbp import CoarsenedWavefront, LBPDecision, LBPResult, lbp_coarsen
from ..pgp import DEFAULT_EPSILON
from .native import load

__all__ = ["lbp_coarsen_compiled", "coarsen_compiled"]


def lbp_coarsen_compiled(
    g2: DAG,
    cost: np.ndarray,
    p: int,
    epsilon: float = DEFAULT_EPSILON,
    *,
    allow_fine_grained: bool = True,
    pack: Optional[Callable] = None,
) -> LBPResult:
    """Compiled LBP walk; drop-in for :func:`repro.core.lbp.lbp_coarsen`.

    The native walk embeds first-fit packing, so a non-default ``pack``
    (the binpack backend hook) routes the whole call through the numpy
    path — the combination "compiled lbp + reference binpack" is still
    honoured, just not accelerated.
    """
    lib = load()
    if lib is None or pack is not None:
        return lbp_coarsen(
            g2, cost, p, epsilon, allow_fine_grained=allow_fine_grained, pack=pack
        )
    cost = np.ascontiguousarray(cost, dtype=np.float64)
    if cost.shape[0] != g2.n:
        raise ValueError(f"cost has length {cost.shape[0]}, expected {g2.n}")
    n = g2.n
    if n == 0:
        return LBPResult(
            coarsened=[], waves=compute_wavefronts(g2), fine_grained=False,
            accumulated_pgp=0.0, decisions=[],
        )

    indptr = np.ascontiguousarray(g2.indptr, dtype=np.int64)
    indices = np.ascontiguousarray(g2.indices, dtype=np.int64)
    level = np.empty(n, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    wptr_full = np.zeros(n + 1, dtype=np.int64)
    n_levels = ctypes.c_int64(0)
    rc = lib.hd_wavefronts(n, indptr, indices, level, order, wptr_full,
                           ctypes.byref(n_levels))
    if rc != 0:  # cycle or OOM: canonical path raises the canonical error
        return lbp_coarsen(g2, cost, p, epsilon, allow_fine_grained=allow_fine_grained)
    l = int(n_levels.value)
    wptr = np.ascontiguousarray(wptr_full[: l + 1])

    cw_lo = np.empty(l, dtype=np.int64)
    cw_hi = np.empty(l, dtype=np.int64)
    cw_vptr = np.zeros(l + 1, dtype=np.int64)
    cw_verts = np.empty(n, dtype=np.int64)
    cw_cptr = np.zeros(l + 1, dtype=np.int64)
    cw_sizes = np.empty(n, dtype=np.int64)
    cw_assign = np.empty(n, dtype=np.int64)
    cw_loads = np.empty(l * p, dtype=np.float64)
    n_dec = max(l - 1, 1)
    dec_pgp = np.empty(n_dec, dtype=np.float64)
    dec_merged = np.zeros(n_dec, dtype=np.uint8)
    n_cw = ctypes.c_int64(0)
    acc = ctypes.c_double(0.0)
    fine = ctypes.c_uint8(0)
    rc = lib.hd_lbp(
        n, indptr, indices, cost, p, float(epsilon),
        1 if allow_fine_grained else 0,
        level, order, wptr, l,
        cw_lo, cw_hi, cw_vptr, cw_verts,
        cw_cptr, cw_sizes, cw_assign, cw_loads,
        dec_pgp, dec_merged,
        ctypes.byref(n_cw), ctypes.byref(acc), ctypes.byref(fine),
    )
    if rc != 0:  # pragma: no cover - allocation failure
        return lbp_coarsen(g2, cost, p, epsilon, allow_fine_grained=allow_fine_grained)

    waves = Wavefronts(level=level, order=order, ptr=wptr)
    coarsened: List[CoarsenedWavefront] = []
    for i in range(int(n_cw.value)):
        sv = cw_verts[cw_vptr[i] : cw_vptr[i + 1]]
        sizes = cw_sizes[cw_cptr[i] : cw_cptr[i + 1]]
        starts = [0]
        for s in sizes.tolist()[:-1]:
            starts.append(starts[-1] + s)
        components = [
            np.ascontiguousarray(sv[a : a + s])
            for a, s in zip(starts, sizes.tolist())
        ]
        packing = BinPacking(
            assignment=np.ascontiguousarray(
                cw_assign[cw_cptr[i] : cw_cptr[i + 1]], dtype=INDEX_DTYPE
            ),
            loads=np.ascontiguousarray(cw_loads[i * p : (i + 1) * p]),
        )
        coarsened.append(
            CoarsenedWavefront(
                wave_lo=int(cw_lo[i]), wave_hi=int(cw_hi[i]),
                components=components, packing=packing,
            )
        )
    decisions = [
        LBPDecision(wave=i, pgp=float(dec_pgp[i - 1]), merged=bool(dec_merged[i - 1]))
        for i in range(1, l)
    ]
    return LBPResult(
        coarsened=coarsened, waves=waves,
        fine_grained=bool(fine.value), accumulated_pgp=float(acc.value),
        decisions=decisions,
    )


def coarsen_compiled(
    g_base: DAG, grouping: Grouping, cost: np.ndarray
) -> Tuple[DAG, np.ndarray]:
    """Compiled ``G''`` construction + group costs; drop-in for the numpy
    coarsen stage ``(coarsen_dag(g, grouping), grouping.group_costs(cost))``."""
    lib = load()
    if lib is None:
        from ...graph.coarsen import coarsen_dag

        return coarsen_dag(g_base, grouping), grouping.group_costs(cost)
    n = g_base.n
    n_groups = grouping.n_groups
    labels = np.ascontiguousarray(grouping.labels, dtype=np.int64)
    cost = np.ascontiguousarray(cost, dtype=np.float64)
    indptr = np.ascontiguousarray(g_base.indptr, dtype=np.int64)
    indices = np.ascontiguousarray(g_base.indices, dtype=np.int64)
    out_indptr = np.zeros(n_groups + 1, dtype=np.int64)
    out_indices = np.empty(max(g_base.n_edges, 1), dtype=np.int64)
    group_cost = np.empty(max(n_groups, 1), dtype=np.float64)
    n_edges = ctypes.c_int64(0)
    rc = lib.hd_coarsen(
        n, indptr, indices, labels, n_groups, cost,
        out_indptr, out_indices, ctypes.byref(n_edges), group_cost,
    )
    if rc != 0:  # pragma: no cover - allocation failure
        from ...graph.coarsen import coarsen_dag

        return coarsen_dag(g_base, grouping), grouping.group_costs(cost)
    g2 = DAG(
        n_groups,
        out_indptr,
        np.ascontiguousarray(out_indices[: int(n_edges.value)]),
        check=False,
    )
    return g2, group_cost[:n_groups]
