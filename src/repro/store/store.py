"""Crash-safe sharded persistent schedule store.

The store maps :func:`~repro.core.schedule_cache.schedule_key` digests —
(structure digest, kernel, scheduler, p, ε, backend) — to encoded
schedules on disk.  Its failure contract is the whole point: inspection
is the expensive half of an inspector-executor framework, so a stored
schedule that is silently lost is bad, and one that is silently *wrong*
is catastrophic.  Every operation therefore lands in one of three states:
the record is served bit-identical to what was written, the record is
missing (the caller re-inspects), or the record is **quarantined** —
moved aside with a reason, never served, never crashing the reader.

On-disk layout (``format`` 1)::

    root/
      store.json            {"format": 1, "n_shards": N}
      quarantine/           quarantined record files (audit trail)
      shards/<hh>/          shard directories, hh = shard id in hex
        <key>.sched         one record file per key (codec blob)
        manifest.json       {"format": 1, "records": {key: {size, crc32}}}

Crash-consistency protocol:

* **records** are written atomically: temp file in the shard directory,
  flush + fsync, ``os.replace`` onto the final name, directory fsync.  A
  kill at any point leaves either no visible record or the complete new
  one — never a half-record under the final name (the ``store.torn_write``
  fault site simulates both the kill and the torn-but-visible case);
* **manifests** are an index, not the truth.  They are rewritten
  atomically after the record rename; a kill between the two (the
  ``store.stale_manifest`` site) leaves a record the manifest misses,
  which :meth:`ScheduleStore.get` recovers by probing the key-derived
  filename directly and repairing the manifest.  A corrupt manifest is
  rebuilt from the shard directory;
* **reads** verify the manifest's size/CRC expectation *and* the codec's
  own trailing CRC; any mismatch quarantines the record and reports a
  miss.  Opening a store never scans record files — only ``store.json``
  is read eagerly and manifests load lazily per shard (O(1) open).

The store is safe for concurrent readers and writers within one process
(a re-entrant lock serialises mutation); cross-process single-writer
discipline is the caller's job, as with the resilience journal.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from os import PathLike
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.schedule import Schedule
from ..observability.state import STATE as _OBS_STATE
from ..resilience.faults import fault_point
from .codec import CodecError, decode_schedule, encode_schedule

__all__ = [
    "STORE_FORMAT",
    "StoreError",
    "QuarantineEvent",
    "StoreStats",
    "AuditReport",
    "ScheduleStore",
]

STORE_FORMAT = 1

_RECORD_SUFFIX = ".sched"
_MANIFEST_NAME = "manifest.json"


class StoreError(RuntimeError):
    """The store itself is unusable (bad root metadata, I/O failure)."""


@dataclass(frozen=True)
class QuarantineEvent:
    """One record the store refused to serve, and why."""

    key: str
    shard: int
    reason: str
    path: str

    def as_dict(self) -> dict:
        return {"key": self.key, "shard": self.shard, "reason": self.reason, "path": self.path}


@dataclass(frozen=True)
class StoreStats:
    """Lifetime counters of one :class:`ScheduleStore` instance."""

    hits: int
    misses: int
    writes: int
    quarantined: int
    manifest_repairs: int
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class AuditReport:
    """Result of a full-store :meth:`ScheduleStore.audit` sweep."""

    scanned: int = 0
    ok: int = 0
    quarantined: List[QuarantineEvent] = field(default_factory=list)
    repaired_manifests: int = 0
    evictions: int = 0

    def as_dict(self) -> dict:
        return {
            "scanned": self.scanned,
            "ok": self.ok,
            "quarantined": [q.as_dict() for q in self.quarantined],
            "repaired_manifests": self.repaired_manifests,
            "evictions": self.evictions,
        }


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry to disk (best effort on exotic filesystems)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write_bytes(path: Path, data: bytes, *, durable: bool) -> None:
    """temp file + flush + fsync + rename: the only way bytes become visible."""
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        if durable:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if durable:
        _fsync_dir(path.parent)


class ScheduleStore:
    """Sharded persistent map from schedule-key digests to schedules.

    Parameters
    ----------
    root:
        Store directory; created (with ``store.json``) when absent.  An
        existing store's shard count is authoritative — ``n_shards`` is
        only consulted at creation, so readers and writers can never
        disagree on the key → shard mapping.
    n_shards:
        Shard fan-out at creation time (keys spread by digest prefix).
    durable:
        fsync records and manifests (the crash-consistency contract).
        Tests that only exercise logic may pass ``False`` for speed.
    max_bytes:
        Size budget for the store's record bytes (manifest-accounted).
        ``None`` (the default) keeps the store unbounded.  When a
        :meth:`put` pushes the total over budget, cold records are
        evicted — fewest hits first, then least recently served — the
        same per-key disaggregation of the ``store.hits``/``store.misses``
        counters the :class:`~repro.observability.metrics.MetricsRegistry`
        exports, so the policy and the dashboard read one signal.
        Evictions are clean deletes (record + manifest entry), counted in
        :attr:`stats` and every :meth:`audit` report, never quarantines.
    """

    def __init__(
        self,
        root: Union[str, PathLike],
        *,
        n_shards: int = 16,
        durable: bool = True,
        max_bytes: Optional[int] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 or None")
        self.root = Path(root)
        self.durable = durable
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._manifests: Dict[int, Dict[str, dict]] = {}
        self.events: List[QuarantineEvent] = []
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._quarantined = 0
        self._manifest_repairs = 0
        self._evictions = 0
        # per-key (hit count, last-served sequence): the eviction policy's
        # ranking signal, mirrored in aggregate by store.hits/store.misses
        self._access: Dict[str, Tuple[int, int]] = {}
        self._access_seq = 0
        self.root.mkdir(parents=True, exist_ok=True)
        meta_path = self.root / "store.json"
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise StoreError(f"{meta_path}: unreadable store metadata") from exc
            if meta.get("format") != STORE_FORMAT:
                raise StoreError(
                    f"{meta_path}: store format {meta.get('format')!r} "
                    f"!= supported {STORE_FORMAT}"
                )
            self.n_shards = int(meta["n_shards"])
        else:
            self.n_shards = n_shards
            (self.root / "shards").mkdir(exist_ok=True)
            (self.root / "quarantine").mkdir(exist_ok=True)
            _atomic_write_bytes(
                meta_path,
                json.dumps({"format": STORE_FORMAT, "n_shards": n_shards}).encode("utf-8"),
                durable=durable,
            )

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    def shard_of(self, key: str) -> int:
        """Deterministic shard id for a schedule-key digest."""
        try:
            return int(key[:8], 16) % self.n_shards
        except ValueError as exc:
            raise StoreError(f"key {key!r} is not a hex digest") from exc

    def _shard_dir(self, shard: int) -> Path:
        return self.root / "shards" / f"{shard:02x}"

    def _record_path(self, shard: int, key: str) -> Path:
        return self._shard_dir(shard) / f"{key}{_RECORD_SUFFIX}"

    def _quarantine_dir(self) -> Path:
        q = self.root / "quarantine"
        q.mkdir(parents=True, exist_ok=True)
        return q

    # ------------------------------------------------------------------
    # manifests
    # ------------------------------------------------------------------
    def _manifest(self, shard: int) -> Dict[str, dict]:
        """The shard's manifest, loaded (or rebuilt) on first touch."""
        cached = self._manifests.get(shard)
        if cached is not None:
            return cached
        path = self._shard_dir(shard) / _MANIFEST_NAME
        records: Dict[str, dict] = {}
        if path.exists():
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
                if doc.get("format") != STORE_FORMAT:
                    raise ValueError(f"manifest format {doc.get('format')!r}")
                records = dict(doc["records"])
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                # a torn manifest write is recoverable state, not an
                # error: rebuild the index from the records on disk
                records = self._rebuild_manifest(shard)
        self._manifests[shard] = records
        return records

    def _rebuild_manifest(self, shard: int) -> Dict[str, dict]:
        records: Dict[str, dict] = {}
        shard_dir = self._shard_dir(shard)
        if shard_dir.is_dir():
            for p in sorted(shard_dir.glob(f"*{_RECORD_SUFFIX}")):
                records[p.name[: -len(_RECORD_SUFFIX)]] = {"size": p.stat().st_size}
        self._manifest_repairs += 1
        self._count("store.manifest_rebuilds")
        return records

    def _write_manifest(self, shard: int) -> None:
        shard_dir = self._shard_dir(shard)
        shard_dir.mkdir(parents=True, exist_ok=True)
        doc = {"format": STORE_FORMAT, "records": self._manifests.get(shard, {})}
        _atomic_write_bytes(
            shard_dir / _MANIFEST_NAME,
            json.dumps(doc, sort_keys=True).encode("utf-8"),
            durable=self.durable,
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
            _OBS_STATE.registry.counter(name).inc(amount)

    def _publish_gauges(self, shard: int, total_bytes: Optional[int]) -> None:
        """Refresh the store health gauges after a mutation (guarded)."""
        if _OBS_STATE.enabled and _OBS_STATE.registry is not None:
            reg = _OBS_STATE.registry
            reg.gauge("store.quarantine_count").set(self._quarantined)
            reg.gauge("store.shard_occupancy").set(len(self._manifests.get(shard, {})))
            if total_bytes is not None:
                reg.gauge("store.occupancy_bytes").set(total_bytes)

    # ------------------------------------------------------------------
    # size budget
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        """Manifest-accounted record bytes across every shard."""
        with self._lock:
            return sum(
                int(entry.get("size", 0))
                for shard in range(self.n_shards)
                for entry in self._manifest(shard).values()
            )

    def _record_access(self, key: str) -> None:
        self._access_seq += 1
        count, _ = self._access.get(key, (0, 0))
        self._access[key] = (count + 1, self._access_seq)

    def _evict_to_budget(self, protect: str) -> int:
        """Delete cold records until the store fits ``max_bytes``.

        Victims are ranked coldest-first by ``(hit count, last-served
        sequence, key)`` — the per-key view of the exported hit/miss
        metrics, with the key as a deterministic tie-break so two stores
        replaying the same traffic evict identically.  ``protect`` (the
        record just written) is never a victim, so a single over-budget
        record still persists.  Returns the post-eviction total.
        """
        assert self.max_bytes is not None
        total = self.total_bytes()
        if total <= self.max_bytes:
            return total
        candidates: List[Tuple[int, int, str, int, int]] = []
        for shard in range(self.n_shards):
            for key, entry in self._manifest(shard).items():
                if key == protect:
                    continue
                count, seq = self._access.get(key, (0, 0))
                candidates.append((count, seq, key, shard, int(entry.get("size", 0))))
        candidates.sort()
        dirty = set()
        for count, seq, key, shard, size in candidates:
            if total <= self.max_bytes:
                break
            try:
                self._record_path(shard, key).unlink(missing_ok=True)
            except OSError:
                continue
            del self._manifests[shard][key]
            self._access.pop(key, None)
            dirty.add(shard)
            total -= size
            self._evictions += 1
            self._count("store.evictions")
        for shard in sorted(dirty):
            self._write_manifest(shard)
        return total

    # ------------------------------------------------------------------
    # the API
    # ------------------------------------------------------------------
    def put(self, key: str, schedule: Schedule) -> None:
        """Persist ``schedule`` under ``key`` (atomic, durable, idempotent).

        A crash at any point of the sequence leaves the store openable and
        every previously stored record intact; the fault sites
        ``store.bit_flip`` / ``store.torn_write`` / ``store.stale_manifest``
        inject the corresponding failures deterministically.
        """
        shard = self.shard_of(key)
        blob = encode_schedule(schedule)
        with self._lock:
            shard_dir = self._shard_dir(shard)
            shard_dir.mkdir(parents=True, exist_ok=True)
            written = blob
            injected = fault_point("store.bit_flip", payload=blob, label=key)
            if injected is not None:
                written = injected
            final = self._record_path(shard, key)
            tmp = final.with_name(final.name + f".tmp{os.getpid()}")
            with open(tmp, "wb") as fh:
                fh.write(written)
                fh.flush()
                if self.durable:
                    os.fsync(fh.fileno())
            # between the temp write and the rename: a ``raise`` here is a
            # kill that strands the temp file (no visible record); a
            # ``corrupt`` return is a tear that *did* become visible
            torn = fault_point("store.torn_write", payload=written, label=key)
            if torn is not None:
                with open(tmp, "wb") as fh:
                    fh.write(torn)
                    fh.flush()
                    if self.durable:
                        os.fsync(fh.fileno())
            os.replace(tmp, final)
            if self.durable:
                _fsync_dir(shard_dir)
            # the manifest records the *intended* size/CRC, so a torn
            # record that became visible is caught on the next read
            fault_point("store.stale_manifest", label=key)
            manifest = self._manifest(shard)
            manifest[key] = {"size": len(blob), "crc32": zlib.crc32(blob) & 0xFFFFFFFF}
            self._write_manifest(shard)
            self._writes += 1
            self._count("store.writes")
            total: Optional[int] = None
            if self.max_bytes is not None:
                total = self._evict_to_budget(protect=key)
            self._publish_gauges(shard, total)

    def get(self, key: str) -> Optional[Schedule]:
        """The stored schedule, or ``None`` (absent *or* quarantined).

        Never raises on corrupt data: a record failing any integrity
        check (manifest size/CRC expectation, codec CRC, structural
        decode) is quarantined and reported as a miss, so callers always
        have the re-inspection fallback.
        """
        shard = self.shard_of(key)
        with self._lock:
            manifest = self._manifest(shard)
            entry = manifest.get(key)
            path = self._record_path(shard, key)
            try:
                blob = path.read_bytes()
            except FileNotFoundError:
                if entry is not None:
                    # manifest ahead of the data (record lost): drop the
                    # dangling index entry so the miss is not re-probed
                    del manifest[key]
                    self._write_manifest(shard)
                self._misses += 1
                self._count("store.misses")
                return None
            except OSError as exc:
                raise StoreError(f"{path}: unreadable record") from exc
            if entry is not None and entry.get("size") not in (None, len(blob)):
                self._quarantine(key, shard, f"size mismatch ({len(blob)} != {entry['size']})")
                self._misses += 1
                self._count("store.misses")
                return None
            if entry is not None and entry.get("crc32") is not None:
                if (zlib.crc32(blob) & 0xFFFFFFFF) != entry["crc32"]:
                    self._quarantine(key, shard, "manifest CRC mismatch")
                    self._misses += 1
                    self._count("store.misses")
                    return None
            try:
                schedule = decode_schedule(blob)
            except CodecError as exc:
                self._count("store.codec_errors")
                self._quarantine(key, shard, f"codec: {exc}")
                self._misses += 1
                self._count("store.misses")
                return None
            if entry is None:
                # stale manifest (crash between rename and index write):
                # the record is valid — repair the index in place
                manifest[key] = {"size": len(blob), "crc32": zlib.crc32(blob) & 0xFFFFFFFF}
                self._write_manifest(shard)
                self._manifest_repairs += 1
                self._count("store.manifest_repairs")
            self._hits += 1
            self._count("store.hits")
            self._record_access(key)
            return schedule

    def quarantine_key(self, key: str, reason: str) -> bool:
        """Force-quarantine a record (e.g. it failed a caller's safety check)."""
        shard = self.shard_of(key)
        with self._lock:
            if not self._record_path(shard, key).exists():
                return False
            self._quarantine(key, shard, reason)
            return True

    def _quarantine(self, key: str, shard: int, reason: str) -> None:
        """Move a bad record out of serving position; never raises."""
        path = self._record_path(shard, key)
        dest = self._quarantine_dir() / f"{key}.{len(self.events)}{_RECORD_SUFFIX}"
        try:
            os.replace(path, dest)
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            dest = path
        manifest = self._manifest(shard)
        if key in manifest:
            del manifest[key]
            try:
                self._write_manifest(shard)
            except OSError:
                pass
        event = QuarantineEvent(key=key, shard=shard, reason=reason, path=str(dest))
        self.events.append(event)
        self._access.pop(key, None)
        self._quarantined += 1
        self._count("store.quarantined")
        self._publish_gauges(shard, None)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            shard = self.shard_of(key)
            return key in self._manifest(shard) or self._record_path(shard, key).exists()

    def keys(self) -> List[str]:
        """All indexed keys (loads every shard manifest)."""
        with self._lock:
            out: List[str] = []
            for shard in range(self.n_shards):
                out.extend(sorted(self._manifest(shard)))
            return out

    def __len__(self) -> int:
        return len(self.keys())

    @property
    def stats(self) -> StoreStats:
        return StoreStats(
            hits=self._hits,
            misses=self._misses,
            writes=self._writes,
            quarantined=self._quarantined,
            manifest_repairs=self._manifest_repairs,
            evictions=self._evictions,
        )

    def audit(self) -> AuditReport:
        """Validate every record on disk (manifest-indexed or stray).

        Bad records are quarantined; records the manifests missed are
        validated and re-indexed.  The sweep is the offline complement of
        the lazy per-read checks — run it after a crash or before
        blessing a store for serving.
        """
        report = AuditReport()
        with self._lock:
            before = self._quarantined
            repairs_before = self._manifest_repairs
            for shard in range(self.n_shards):
                shard_dir = self._shard_dir(shard)
                if not shard_dir.is_dir():
                    continue
                keys = {p.name[: -len(_RECORD_SUFFIX)] for p in shard_dir.glob(f"*{_RECORD_SUFFIX}")}
                keys |= set(self._manifest(shard))
                for key in sorted(keys):
                    report.scanned += 1
                    if self.get(key) is not None:
                        report.ok += 1
            report.quarantined = self.events[before:]
            report.repaired_manifests = self._manifest_repairs - repairs_before
            report.evictions = self._evictions
        return report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScheduleStore({str(self.root)!r}, n_shards={self.n_shards})"
