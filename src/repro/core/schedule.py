"""Schedule: the object every inspector produces and every executor consumes.

Section IV-A of the paper: "The created schedule is composed of a set of
disjoint partitions called coarsened wavefronts.  Each coarsened wavefront is
composed of one or more disjoint partitions called width-partitions.  The
coarsened wavefronts execute sequentially and width-partitions of a coarsened
wavefront run in parallel."

The same container also represents the baselines:

* Wavefront / MKL-like: one coarsened wavefront per level, chunked into
  width-partitions, ``sync="barrier"``;
* SpMP: level-grouped width-partitions with ``sync="p2p"`` (no barriers —
  the simulator lets partitions start when their cross-partition dependences
  are satisfied);
* LBC: the coarsened l-partitions plus the sequential tail;
* DAGP: quotient-graph levels of the acyclic partitioning, ``sync="p2p"``;
* serial: a single width-partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from ..graph.dag import DAG
from ..sparse.csr import INDEX_DTYPE

__all__ = [
    "WidthPartition",
    "Schedule",
    "ScheduleError",
    "DependenceWitness",
    "dependence_witnesses",
]


def _json_safe(v) -> bool:
    """Keep only plainly serialisable meta entries when exporting."""
    if isinstance(v, (bool, int, float, str)) or v is None:
        return True
    if isinstance(v, (list, tuple)):
        return all(_json_safe(x) for x in v)
    return False


class ScheduleError(ValueError):
    """Raised when a schedule violates its structural or dependence invariants.

    ``witness`` carries the first :class:`DependenceWitness` when the failure
    is a dependence-ordering violation, ``None`` for structural failures —
    callers (the static verifier, the harness, CI tooling) read it instead of
    parsing the message.
    """

    def __init__(self, message: str, *, witness: "Optional[DependenceWitness]" = None) -> None:
        super().__init__(message)
        self.witness = witness


@dataclass(frozen=True)
class DependenceWitness:
    """A minimal counterexample to schedule safety: one mis-ordered DAG edge.

    The edge ``src -> dst`` requires ``src`` to finish before ``dst`` starts,
    but the schedule places them so that neither ``level[src] < level[dst]``
    nor "same width-partition with ``src`` positioned earlier" holds.  All
    schedule coordinates of both endpoints are included so the producing
    inspector's bug is localisable without re-deriving anything.
    """

    src: int
    dst: int
    src_level: int
    dst_level: int
    src_partition: int
    dst_partition: int
    src_position: int
    dst_position: int

    def describe(self) -> str:
        """One-line human-readable account of the violation."""
        return (
            f"dependence violated: edge {self.src} -> {self.dst} "
            f"(levels {self.src_level} -> {self.dst_level}, "
            f"partitions {self.src_partition} -> {self.dst_partition}, "
            f"positions {self.src_position} -> {self.dst_position})"
        )

    def as_dict(self) -> dict:
        """JSON-ready form for reports and the ``analyze`` CLI."""
        return {
            "src": self.src,
            "dst": self.dst,
            "src_level": self.src_level,
            "dst_level": self.dst_level,
            "src_partition": self.src_partition,
            "dst_partition": self.dst_partition,
            "src_position": self.src_position,
            "dst_position": self.dst_position,
        }


def dependence_witnesses(
    level: np.ndarray,
    pid: np.ndarray,
    pos: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    max_witnesses: int = 1,
) -> List[DependenceWitness]:
    """Mis-ordered edges among ``src -> dst`` under the schedule coordinates.

    An edge is safely ordered iff ``level[src] < level[dst]`` or the two
    endpoints share a width-partition with ``src`` positioned earlier.  The
    returned witnesses are sorted to make the *minimal* counterexample first:
    ascending destination level, then source/destination ids — so the
    earliest point in the execution where the schedule goes wrong leads.
    Both :meth:`Schedule.validate` and the static verifier in
    :mod:`repro.analysis.verifier` report through this single predicate.
    """
    ok = (level[src] < level[dst]) | ((pid[src] == pid[dst]) & (pos[src] < pos[dst]))
    bad = np.nonzero(~ok)[0]
    if bad.shape[0] == 0:
        return []
    order = np.lexsort((dst[bad], src[bad], level[dst[bad]]))
    picked = bad[order[:max_witnesses]]
    return [
        DependenceWitness(
            src=int(src[e]),
            dst=int(dst[e]),
            src_level=int(level[src[e]]),
            dst_level=int(level[dst[e]]),
            src_partition=int(pid[src[e]]),
            dst_partition=int(pid[dst[e]]),
            src_position=int(pos[src[e]]),
            dst_position=int(pos[dst[e]]),
        )
        for e in picked
    ]


@dataclass(frozen=True)
class WidthPartition:
    """A sequential unit of work: vertices executed in array order on one core.

    ``core`` is the bin the inspector assigned (0-based).  Fine-grained
    schedules (bin packing disabled, Algorithm 1 Lines 36-38) use
    ``core = -1``: the runtime picks a core dynamically.
    """

    core: int
    vertices: np.ndarray

    def __post_init__(self) -> None:
        v = np.ascontiguousarray(self.vertices, dtype=INDEX_DTYPE)
        object.__setattr__(self, "vertices", v)
        if v.ndim != 1 or v.shape[0] == 0:
            raise ScheduleError("width-partition must be a non-empty 1-D vertex array")

    @property
    def size(self) -> int:
        return int(self.vertices.shape[0])

    def cost(self, vertex_cost: np.ndarray) -> float:
        """Total cost of the partition under a per-vertex cost function."""
        return float(vertex_cost[self.vertices].sum())


@dataclass
class Schedule:
    """A complete execution plan for one sparse kernel instance.

    Attributes
    ----------
    n:
        Number of kernel iterations (DAG vertices).
    levels:
        Coarsened wavefronts, outermost-sequential; each is a list of
        :class:`WidthPartition` that may run concurrently.
    sync:
        ``"barrier"`` — a global barrier separates consecutive levels;
        ``"p2p"`` — partitions synchronise point-to-point on their
        cross-partition dependences (no barriers).
    algorithm:
        Producing inspector's name (``"hdagg"``, ``"wavefront"``, ...).
    n_cores:
        Core count the schedule was built for.
    fine_grained:
        True when bin packing was disabled and the runtime load-balances the
        width-partitions dynamically.
    meta:
        Free-form inspector diagnostics (grouping sizes, cut positions, ...).
    """

    n: int
    levels: List[List[WidthPartition]]
    sync: str
    algorithm: str
    n_cores: int
    fine_grained: bool = False
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sync not in ("barrier", "p2p"):
            raise ScheduleError(f"unknown sync model {self.sync!r}")
        if self.n_cores < 1:
            raise ScheduleError("n_cores must be >= 1")

    # ------------------------------------------------------------------
    # shape accessors
    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        """Number of coarsened wavefronts."""
        return len(self.levels)

    @property
    def n_partitions(self) -> int:
        """Total number of width-partitions."""
        return sum(len(level) for level in self.levels)

    def iter_partitions(self) -> Iterator[tuple[int, WidthPartition]]:
        """Yield ``(level_index, partition)`` in schedule order."""
        for k, level in enumerate(self.levels):
            for part in level:
                yield k, part

    def execution_order(self) -> np.ndarray:
        """A sequential order consistent with the schedule.

        Levels in order, partitions within a level in list order, vertices
        within a partition in array order.  For any *valid* schedule this is
        a topological order of the kernel DAG, which is what the
        dependence-checking executors consume.
        """
        chunks = [part.vertices for _, part in self.iter_partitions()]
        if not chunks:
            return np.empty(0, dtype=INDEX_DTYPE)
        return np.concatenate(chunks)

    def level_of(self) -> np.ndarray:
        """Per-vertex coarsened-wavefront index."""
        out = np.full(self.n, -1, dtype=INDEX_DTYPE)
        for k, part in self.iter_partitions():
            out[part.vertices] = k
        return out

    def partition_of(self) -> np.ndarray:
        """Per-vertex global width-partition index (schedule order)."""
        out = np.full(self.n, -1, dtype=INDEX_DTYPE)
        for pid, (_, part) in enumerate(self.iter_partitions()):
            out[part.vertices] = pid
        return out

    def position_of(self) -> np.ndarray:
        """Per-vertex position within its width-partition."""
        out = np.full(self.n, -1, dtype=INDEX_DTYPE)
        for _, part in self.iter_partitions():
            out[part.vertices] = np.arange(part.size, dtype=INDEX_DTYPE)
        return out

    def core_assignment(self) -> np.ndarray:
        """Per-vertex core id (-1 where dynamically scheduled)."""
        out = np.full(self.n, -1, dtype=INDEX_DTYPE)
        for _, part in self.iter_partitions():
            out[part.vertices] = part.core
        return out

    def n_barriers(self) -> int:
        """Global barriers the executor will issue (levels - 1 for barrier sync)."""
        return max(0, self.n_levels - 1) if self.sync == "barrier" else 0

    def level_loads(self, vertex_cost: np.ndarray) -> List[np.ndarray]:
        """Per-level array of per-core loads (length ``n_cores`` each).

        Fine-grained partitions (core == -1) are assigned greedily to the
        least-loaded core, mirroring what a work-stealing runtime achieves.
        """
        loads: List[np.ndarray] = []
        for level in self.levels:
            bins = np.zeros(self.n_cores, dtype=np.float64)
            for part in level:
                c = part.cost(vertex_cost)
                if part.core >= 0:
                    bins[part.core % self.n_cores] += c
                else:
                    bins[int(np.argmin(bins))] += c
            loads.append(bins)
        return loads

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, g: DAG, *, check_dependences: bool = True) -> None:
        """Raise :class:`ScheduleError` unless the schedule is well-formed.

        Structural: the width-partitions exactly partition ``range(n)`` and
        per-level core ids are unique (when statically assigned).

        Dependences: every edge ``u -> v`` must satisfy
        ``level(u) < level(v)``, or ``u`` and ``v`` share a width-partition
        with ``u`` positioned earlier.  This is the safety invariant of both
        sync models (barrier: partitions of one level run concurrently;
        p2p: partitions may overlap across levels but a partition never
        waits mid-stream for a same-level peer).
        """
        if g.n != self.n:
            raise ScheduleError(f"schedule covers {self.n} vertices, DAG has {g.n}")
        total = sum(part.size for _, part in self.iter_partitions())
        if total != self.n:
            raise ScheduleError(
                f"schedule holds {total} vertex slots for {self.n} vertices "
                "(duplicate or missing entries)"
            )
        seen = np.zeros(self.n, dtype=bool)
        for k, level in enumerate(self.levels):
            used_cores = set()
            for part in level:
                if np.any(seen[part.vertices]):
                    raise ScheduleError(f"vertex scheduled twice (level {k})")
                seen[part.vertices] = True
                if part.core >= 0:
                    if part.core in used_cores:
                        raise ScheduleError(
                            f"core {part.core} used by two width-partitions in level {k}"
                        )
                    used_cores.add(part.core)
        if not np.all(seen):
            missing = np.nonzero(~seen)[0][:5].tolist()
            raise ScheduleError(f"vertices never scheduled: {missing}")
        if not check_dependences or g.n_edges == 0:
            return
        level = self.level_of()
        pid = self.partition_of()
        pos = self.position_of()
        src, dst = g.edge_list()
        witnesses = dependence_witnesses(level, pid, pos, src, dst, max_witnesses=1)
        if witnesses:
            raise ScheduleError(witnesses[0].describe(), witness=witnesses[0])

    def summary(self, vertex_cost: np.ndarray | None = None) -> dict:
        """Shape statistics used by reports and tests."""
        sizes = [part.size for _, part in self.iter_partitions()]
        widths = [len(level) for level in self.levels]
        out = {
            "algorithm": self.algorithm,
            "n": self.n,
            "n_levels": self.n_levels,
            "n_partitions": self.n_partitions,
            "sync": self.sync,
            "fine_grained": self.fine_grained,
            "max_width": max(widths) if widths else 0,
            "mean_partition_size": float(np.mean(sizes)) if sizes else 0.0,
        }
        if vertex_cost is not None:
            from .pgp import accumulated_pgp

            out["accumulated_pgp"] = accumulated_pgp(self, vertex_cost)
        return out

    def reversed(self) -> "Schedule":
        """The mirror schedule, valid for the *reversed* DAG.

        Levels run in opposite order and each width-partition's internal
        order flips; cores and groupings are preserved.  If this schedule
        is valid for ``G`` then the result is valid for ``G.reverse()`` —
        which is exactly the dependence structure of the backward/transpose
        kernel (``L^T x = y``), so one inspection serves both sweeps of a
        preconditioner application.
        """
        levels = [
            [
                WidthPartition(core=part.core, vertices=part.vertices[::-1].copy())
                for part in level
            ]
            for level in reversed(self.levels)
        ]
        return Schedule(
            n=self.n,
            levels=levels,
            sync=self.sync,
            algorithm=f"{self.algorithm}-reversed",
            n_cores=self.n_cores,
            fine_grained=self.fine_grained,
            meta=dict(self.meta, reversed=True),
        )

    # ------------------------------------------------------------------
    # serialization (inspector/executor separation across processes)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form; inverse of :meth:`from_dict`.

        The inspector is the expensive half of the framework, so being able
        to persist its output and reuse it across runs/processes is part of
        the library contract (the paper's NRE analysis assumes exactly this
        reuse).
        """
        return {
            "n": self.n,
            "sync": self.sync,
            "algorithm": self.algorithm,
            "n_cores": self.n_cores,
            "fine_grained": self.fine_grained,
            "levels": [
                [{"core": int(part.core), "vertices": part.vertices.tolist()} for part in level]
                for level in self.levels
            ],
            "meta": {k: v for k, v in self.meta.items() if _json_safe(v)},
        }

    @classmethod
    def from_dict(cls, blob: dict) -> "Schedule":
        """Rebuild a schedule serialised by :meth:`to_dict`."""
        levels = [
            [
                WidthPartition(
                    core=int(p["core"]),
                    vertices=np.asarray(p["vertices"], dtype=INDEX_DTYPE),
                )
                for p in level
            ]
            for level in blob["levels"]
        ]
        return cls(
            n=int(blob["n"]),
            levels=levels,
            sync=blob["sync"],
            algorithm=blob["algorithm"],
            n_cores=int(blob["n_cores"]),
            fine_grained=bool(blob.get("fine_grained", False)),
            meta=dict(blob.get("meta", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule({self.algorithm}, n={self.n}, levels={self.n_levels}, "
            f"partitions={self.n_partitions}, sync={self.sync})"
        )
