"""Compressed Sparse Row (CSR) matrix container.

CSR is the canonical storage format of this library, mirroring the paper's
implementation which operates on CSR inputs for all three kernels (SpTRSV,
SpIC0, SpILU0).  The container is a thin, immutable wrapper over three NumPy
arrays (``indptr``, ``indices``, ``data``) so that inspector algorithms can
work directly on the flat arrays without per-element Python objects.

Design notes
------------
* Index arrays are ``INDEX_DTYPE`` (int64) throughout; value arrays are
  float64.  Using one index dtype everywhere avoids silent up/down casts in
  the hot inspector loops.
* Column indices within each row are kept sorted and duplicate-free; the
  constructor verifies this (cheaply, vectorized) unless told not to.
* The structure arrays are set read-only.  Numeric kernels that need to
  update values (e.g. factorizations) copy ``data`` explicitly, which makes
  aliasing bugs impossible.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

__all__ = [
    "INDEX_DTYPE",
    "VALUE_DTYPE",
    "CSRMatrix",
    "csr_from_coo",
    "csr_from_dense",
    "csr_from_scipy",
]

#: Canonical dtype for all index arrays (indptr / indices / permutations).
INDEX_DTYPE = np.int64

#: Canonical dtype for all numeric value arrays.
VALUE_DTYPE = np.float64


def _as_index_array(a, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(a, dtype=INDEX_DTYPE)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def _as_value_array(a, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(a, dtype=VALUE_DTYPE)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


class CSRMatrix:
    """An ``n_rows x n_cols`` sparse matrix in CSR format.

    Parameters
    ----------
    n_rows, n_cols:
        Matrix dimensions.
    indptr:
        Row pointer array of length ``n_rows + 1``; row ``i`` occupies the
        half-open slice ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        Column index of every stored entry, sorted within each row.
    data:
        Numeric value of every stored entry (aligned with ``indices``).
    check:
        When true (default) validate the invariants: monotone ``indptr``,
        in-range and strictly increasing column indices per row.

    The arrays are stored read-only; use :meth:`with_data` to obtain a matrix
    sharing the structure but carrying fresh values.
    """

    __slots__ = ("n_rows", "n_cols", "indptr", "indices", "data")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        indptr,
        indices,
        data,
        *,
        check: bool = True,
    ) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.indptr = _as_index_array(indptr, "indptr")
        self.indices = _as_index_array(indices, "indices")
        self.data = _as_value_array(data, "data")
        if check:
            self._validate()
        for arr in (self.indptr, self.indices, self.data):
            arr.flags.writeable = False

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.n_rows < 0 or self.n_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if self.indptr.shape[0] != self.n_rows + 1:
            raise ValueError(
                f"indptr has length {self.indptr.shape[0]}, expected {self.n_rows + 1}"
            )
        if self.indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape[0] != nnz or self.data.shape[0] != nnz:
            raise ValueError(
                "indices/data length does not match indptr[-1] "
                f"({self.indices.shape[0]}, {self.data.shape[0]} vs {nnz})"
            )
        if nnz:
            if self.indices.min() < 0 or self.indices.max() >= self.n_cols:
                raise ValueError("column index out of range")
            # Column indices must be strictly increasing inside each row.
            # diff < = 0 is allowed only at row boundaries.
            interior = np.ones(nnz - 1, dtype=bool) if nnz > 1 else np.zeros(0, dtype=bool)
            if nnz > 1:
                boundaries = self.indptr[1:-1]
                interior[boundaries[(boundaries > 0) & (boundaries < nnz)] - 1] = False
                bad = (np.diff(self.indices) <= 0) & interior
                if np.any(bad):
                    raise ValueError("column indices must be strictly increasing per row")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def is_square(self) -> bool:
        return self.n_rows == self.n_cols

    def row_nnz(self) -> np.ndarray:
        """Number of stored entries in each row (length ``n_rows``)."""
        return np.diff(self.indptr)

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(columns, values)`` views of row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(i, columns, values)`` for every row."""
        for i in range(self.n_rows):
            cols, vals = self.row(i)
            yield i, cols, vals

    def _diagonal_mask(self) -> np.ndarray:
        """Boolean mask over stored entries marking ``(i, i)`` positions."""
        row_of = np.repeat(np.arange(self.n_rows, dtype=INDEX_DTYPE), np.diff(self.indptr))
        return self.indices == row_of

    def diagonal(self) -> np.ndarray:
        """Dense main diagonal (missing entries are zero); vectorized."""
        n = min(self.n_rows, self.n_cols)
        d = np.zeros(n, dtype=VALUE_DTYPE)
        mask = self._diagonal_mask()
        if mask.any():
            row_of = np.repeat(
                np.arange(self.n_rows, dtype=INDEX_DTYPE), np.diff(self.indptr)
            )
            hit_rows = row_of[mask]
            in_range = hit_rows < n
            d[hit_rows[in_range]] = self.data[mask][in_range]
        return d

    def has_full_diagonal(self) -> bool:
        """True when every row ``i < min(shape)`` stores entry ``(i, i)``."""
        n = min(self.n_rows, self.n_cols)
        if n == 0:
            return True
        mask = self._diagonal_mask()
        row_of = np.repeat(np.arange(self.n_rows, dtype=INDEX_DTYPE), np.diff(self.indptr))
        present = np.zeros(self.n_rows, dtype=bool)
        present[row_of[mask]] = True
        return bool(present[:n].all())

    # ------------------------------------------------------------------
    # derived matrices
    # ------------------------------------------------------------------
    def with_data(self, data: np.ndarray) -> "CSRMatrix":
        """A matrix with identical structure but new values (no re-check)."""
        data = _as_value_array(data, "data")
        if data.shape[0] != self.nnz:
            raise ValueError(f"data length {data.shape[0]} != nnz {self.nnz}")
        return CSRMatrix(self.n_rows, self.n_cols, self.indptr, self.indices, data, check=False)

    def copy(self) -> "CSRMatrix":
        """Deep copy (fresh arrays)."""
        return CSRMatrix(
            self.n_rows,
            self.n_cols,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
            check=False,
        )

    def transpose(self) -> "CSRMatrix":
        """Return the transpose, also in CSR (i.e. a CSC view of ``self``).

        Implemented as a vectorized counting sort over column indices, so it
        runs in O(nnz + n) without Python-level loops.
        """
        n_rows, n_cols, nnz = self.n_rows, self.n_cols, self.nnz
        counts = np.bincount(self.indices, minlength=n_cols)
        indptr_t = np.zeros(n_cols + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=indptr_t[1:])
        # Row id of every stored entry, then stable sort by column.
        row_of = np.repeat(np.arange(n_rows, dtype=INDEX_DTYPE), np.diff(self.indptr))
        order = np.argsort(self.indices, kind="stable")
        indices_t = row_of[order]
        data_t = self.data[order]
        return CSRMatrix(n_cols, n_rows, indptr_t, indices_t, data_t, check=False)

    def to_dense(self) -> np.ndarray:
        """Dense ``ndarray`` copy — intended for tests and tiny examples."""
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        row_of = np.repeat(np.arange(self.n_rows, dtype=INDEX_DTYPE), np.diff(self.indptr))
        out[row_of, self.indices] = self.data
        return out

    def to_scipy(self):
        """Convert to a ``scipy.sparse.csr_matrix`` (copies the arrays)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()), shape=self.shape
        )

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix-vector product ``A @ x`` (segment-sum, vectorized)."""
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        products = self.data * x[self.indices]
        out = np.zeros(self.n_rows, dtype=VALUE_DTYPE)
        row_of = np.repeat(np.arange(self.n_rows, dtype=INDEX_DTYPE), np.diff(self.indptr))
        np.add.at(out, row_of, products)
        return out

    def permute_symmetric(self, perm: np.ndarray) -> "CSRMatrix":
        """Apply the symmetric permutation ``A[perm, :][:, perm]``.

        ``perm`` lists old indices in new order (i.e. ``new_row k`` is
        ``old_row perm[k]``), matching the convention of
        :mod:`repro.sparse.ordering`.
        """
        if not self.is_square:
            raise ValueError("symmetric permutation requires a square matrix")
        perm = _as_index_array(perm, "perm")
        n = self.n_rows
        if perm.shape[0] != n or np.any(np.sort(perm) != np.arange(n)):
            raise ValueError("perm must be a permutation of range(n)")
        inv = np.empty(n, dtype=INDEX_DTYPE)
        inv[perm] = np.arange(n, dtype=INDEX_DTYPE)

        row_counts = np.diff(self.indptr)[perm]
        indptr_p = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(row_counts, out=indptr_p[1:])
        nnz = self.nnz
        indices_p = np.empty(nnz, dtype=INDEX_DTYPE)
        data_p = np.empty(nnz, dtype=VALUE_DTYPE)
        for new_i in range(n):
            old_i = perm[new_i]
            lo, hi = self.indptr[old_i], self.indptr[old_i + 1]
            cols = inv[self.indices[lo:hi]]
            order = np.argsort(cols, kind="stable")
            dst = slice(indptr_p[new_i], indptr_p[new_i + 1])
            indices_p[dst] = cols[order]
            data_p[dst] = self.data[lo:hi][order]
        return CSRMatrix(n, n, indptr_p, indices_p, data_p, check=False)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"

    def __eq__(self, other: object) -> bool:
        """Structural and numeric equality."""
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    def __hash__(self) -> int:
        raise TypeError("CSRMatrix is not hashable")


def csr_from_coo(
    n_rows: int,
    n_cols: int,
    rows,
    cols,
    vals,
    *,
    sum_duplicates: bool = True,
) -> CSRMatrix:
    """Build a :class:`CSRMatrix` from COO triplets.

    Entries are sorted by ``(row, col)``; duplicates are summed when
    ``sum_duplicates`` is true, otherwise they raise ``ValueError``.
    """
    rows = _as_index_array(rows, "rows")
    cols = _as_index_array(cols, "cols")
    vals = _as_value_array(vals, "vals")
    if not (rows.shape == cols.shape == vals.shape):
        raise ValueError("rows/cols/vals must have equal length")
    if rows.size:
        if rows.min() < 0 or rows.max() >= n_rows:
            raise ValueError("row index out of range")
        if cols.min() < 0 or cols.max() >= n_cols:
            raise ValueError("column index out of range")
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    if rows.size:
        dup = (np.diff(rows) == 0) & (np.diff(cols) == 0)
        if np.any(dup):
            if not sum_duplicates:
                raise ValueError("duplicate (row, col) entries present")
            # Collapse runs of duplicates with a segmented sum.
            first = np.concatenate(([True], ~dup))
            group = np.cumsum(first) - 1
            n_groups = int(group[-1]) + 1
            summed = np.zeros(n_groups, dtype=VALUE_DTYPE)
            np.add.at(summed, group, vals)
            rows, cols, vals = rows[first], cols[first], summed
    indptr = np.zeros(n_rows + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.bincount(rows, minlength=n_rows), out=indptr[1:])
    return CSRMatrix(n_rows, n_cols, indptr, cols, vals, check=False)


def csr_from_dense(dense: np.ndarray, *, tol: float = 0.0) -> CSRMatrix:
    """Build a :class:`CSRMatrix` from a dense array, dropping ``|a| <= tol``."""
    dense = np.asarray(dense, dtype=VALUE_DTYPE)
    if dense.ndim != 2:
        raise ValueError("dense input must be two-dimensional")
    mask = np.abs(dense) > tol
    rows, cols = np.nonzero(mask)
    return csr_from_coo(dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols])


def csr_from_scipy(mat) -> CSRMatrix:
    """Build a :class:`CSRMatrix` from any ``scipy.sparse`` matrix."""
    m = mat.tocsr().sorted_indices()
    m.sum_duplicates()
    return CSRMatrix(m.shape[0], m.shape[1], m.indptr, m.indices, m.data, check=False)
