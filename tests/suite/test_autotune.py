"""Tests for NRE-driven scheduler auto-selection."""

import numpy as np
import pytest

from repro.kernels import KERNELS
from repro.runtime import LAPTOP4
from repro.sparse import apply_ordering, lower_triangle, poisson2d
from repro.suite import DEFAULT_CANDIDATES, choose_scheduler


@pytest.fixture(scope="module")
def problem():
    a, _ = apply_ordering(poisson2d(24, seed=1), "nd")
    kernel = KERNELS["sptrsv"]
    low = lower_triangle(a)
    g = kernel.dag(low)
    return g, kernel.cost(low), kernel.memory_model(low, g)


def test_single_execution_prefers_serial(problem):
    g, cost, mem = problem
    choice = choose_scheduler(g, cost, mem, LAPTOP4, 1)
    assert choice.algorithm == "serial"
    assert not choice.amortised
    assert choice.inspector_cycles == 0.0


def test_many_executions_prefer_an_inspector(problem):
    g, cost, mem = problem
    choice = choose_scheduler(g, cost, mem, LAPTOP4, 100_000)
    assert choice.algorithm != "serial"
    assert choice.amortised


def test_monotone_total_in_executions(problem):
    g, cost, mem = problem
    totals = [
        choose_scheduler(g, cost, mem, LAPTOP4, n).total_cycles
        for n in (1, 10, 100, 1000)
    ]
    assert totals == sorted(totals)


def test_breakdown_covers_candidates(problem):
    g, cost, mem = problem
    choice = choose_scheduler(g, cost, mem, LAPTOP4, 50)
    assert set(choice.breakdown) == set(DEFAULT_CANDIDATES)
    assert choice.total_cycles == min(choice.breakdown.values())


def test_custom_candidates(problem):
    g, cost, mem = problem
    choice = choose_scheduler(
        g, cost, mem, LAPTOP4, 1000, candidates=("serial", "hdagg")
    )
    assert choice.algorithm in ("serial", "hdagg")


def test_validation(problem):
    g, cost, mem = problem
    with pytest.raises(ValueError):
        choose_scheduler(g, cost, mem, LAPTOP4, 0)


def test_schedule_is_usable(problem):
    g, cost, mem = problem
    choice = choose_scheduler(g, cost, mem, LAPTOP4, 1000)
    choice.schedule.validate(g)
