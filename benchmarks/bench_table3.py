"""Table III: category breakdown of HDagg vs SpMP/Wavefront (SpILU0, Intel).

Paper rows (categories by nnz and average parallelism):

=========================  ==========  ========  ======  =======
category                    nnz/wave    loc.impr  fast%   speedup
=========================  ==========  ========  ======  =======
nnz > 1e7                   61747       1.90      93%     1.75
nnz <= 1e7, AP > 400        47280       1.37      100%    1.26
nnz <= 1e7, AP <= 400       7787        0.92      63%     0.90
=========================  ==========  ========  ======  =======

Thresholds are rescaled by the dataset scale (see repro.suite.tables); the
shape claim is the *gradient*: HDagg's advantage grows with nnz-per-
wavefront and shrinks on small, low-parallelism matrices.
"""

import math

from _common import write_report
from repro.suite import format_table, table3_categories


def test_table3(benchmark, records_intel, output_dir):
    headers, rows, data = benchmark(
        table3_categories, records_intel, kernel="spilu0", machine="intel20"
    )
    text = format_table(
        headers, rows, title="Table III: category breakdown vs SpMP/Wavefront (SpILU0, intel20)"
    )
    write_report(output_dir, "table3_intel20", text)

    cats = list(data.values())
    assert len(cats) == 3
    populated = [c for c in cats if c["matrices"] > 0]
    assert len(populated) >= 2, "need at least two populated categories"

    # gradient claims (paper): the large-nnz bucket has the most data per
    # wavefront and the strongest HDagg results.  The low-AP bucket is
    # compared only when it holds enough matrices to average out noise
    # (the synthetic suite leaves it thin).
    large, mid, small_low = cats
    if large["matrices"] and mid["matrices"]:
        assert large["avg nnz/wavefront"] > mid["avg nnz/wavefront"]
        assert large["speedup"] > mid["speedup"]
        assert large["locality impr"] > mid["locality impr"]
    if small_low["matrices"] >= 4 and large["matrices"]:
        assert large["avg nnz/wavefront"] > small_low["avg nnz/wavefront"]
        assert large["speedup"] > small_low["speedup"]
