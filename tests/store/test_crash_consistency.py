"""Crash-consistency property suite: kill the store at every fault point.

The property the ISSUE pins, verbatim: for every store fault site, every
injection occurrence, and every seed — after the fault, reopening the
store must find that **every retrievable schedule passes
``assert_schedule_safe`` bit-identically, or is quarantined**.  The store
may lose the record that was in flight (the caller re-inspects); it may
never serve a wrong one, and it may never fail to open.

Fault-site → damage-pattern map:

* ``store.torn_write`` / ``raise``   — kill between temp write and rename
  (no visible record, temp litter only);
* ``store.torn_write`` / ``corrupt`` — a tear that became visible: the
  renamed record holds a seeded strict prefix of the real bytes;
* ``store.bit_flip`` / ``corrupt``   — one seeded bit flipped before the
  bytes hit the disk;
* ``store.stale_manifest`` / ``raise`` — kill between rename and index
  write: record on disk, manifest behind.
"""

import itertools

import pytest

from repro.analysis.verifier import assert_schedule_safe
from repro.resilience.faults import FaultError, FaultPlan, FaultSpec, armed
from repro.store import ScheduleStore, encode_schedule

SEEDS = (0, 1, 2)
#: every (site, action) combination FAULT_SITES registers for the store
STORE_FAULTS = (
    ("store.torn_write", "raise"),
    ("store.torn_write", "corrupt"),
    ("store.bit_flip", "corrupt"),
    ("store.stale_manifest", "raise"),
)


@pytest.fixture(scope="module")
def workload(corpus):
    """Four (key, schedule, dag) rows — one per golden matrix, hdagg."""
    rows = []
    for i, m in enumerate(("poisson2d", "banded", "random", "power_law")):
        schedule, g = corpus[("hdagg", m)]
        rows.append((f"{i:064x}", schedule, g))
    return rows


def run_workload_with_fault(root, workload, spec, seed):
    """Drive the puts under an armed plan; a raised fault plays kill -9."""
    store = ScheduleStore(root)
    survived = []
    with armed(FaultPlan([spec], seed=seed)):
        for key, schedule, _ in workload:
            try:
                store.put(key, schedule)
            except FaultError:
                # the "process" died here: everything after is lost too
                break
            survived.append(key)
    return survived


def assert_crash_consistent(root, workload):
    """The suite's core invariant, checked on a fresh post-crash open."""
    store = ScheduleStore(root)  # opening after the crash must never fail
    originals = {key: (schedule, g) for key, schedule, g in workload}
    served = {}
    for key in originals:
        got = store.get(key)
        if got is None:
            continue  # lost or quarantined: the caller re-inspects
        served[key] = got
    for key, got in served.items():
        schedule, g = originals[key]
        assert encode_schedule(got) == encode_schedule(schedule), (
            f"record {key[:8]} served non-bit-identical bytes"
        )
        assert_schedule_safe(got, g)
    return store, served


@pytest.mark.parametrize(
    "site,action,at,seed",
    [
        (site, action, at, seed)
        for (site, action), at, seed in itertools.product(STORE_FAULTS, range(4), SEEDS)
    ],
)
def test_kill_or_corrupt_at_every_store_fault_point(tmp_path, workload, site, action, at, seed):
    root = tmp_path / "store"
    ScheduleStore(root)  # pre-create so reopen exercises the existing path
    spec = FaultSpec(site, action, at=at)
    survived = run_workload_with_fault(root, workload, spec, seed)
    store, served = assert_crash_consistent(root, workload)

    faulted_key = workload[at][0]
    if action == "raise":
        # a kill loses at most the in-flight record; all the puts that
        # completed before it must still be retrievable
        assert survived == [key for key, _, _ in workload[:at]]
        for key in survived:
            assert key in served, f"pre-crash record {key[:8]} lost"
        if site == "store.stale_manifest":
            # the record itself landed before the kill: the probe must
            # recover it even though the manifest never saw it
            assert faulted_key in served
            assert store.stats.manifest_repairs >= 1
    else:
        # corruption is silent at write time: every put "succeeded", and
        # the damaged record surfaces as quarantine-on-read, never as a
        # wrong schedule (assert_crash_consistent already checked that)
        assert survived == [key for key, _, _ in workload]
        assert faulted_key not in served
        assert [e.key for e in store.events] == [faulted_key]
        reasons = {e.key: e.reason for e in store.events}
        assert "mismatch" in reasons[faulted_key] or "codec" in reasons[faulted_key]
        # quarantine keeps the bytes for the post-mortem
        assert list((root / "quarantine").glob(f"{faulted_key}.*"))


@pytest.mark.parametrize("seed", SEEDS)
def test_repeated_torn_writes_never_poison_the_store(tmp_path, workload, seed):
    """Every put tears visibly; the store must degrade to 'everything is a
    miss' — zero served records, zero crashes, full quarantine trail."""
    root = tmp_path / "store"
    spec = FaultSpec("store.torn_write", "corrupt", at=0, times=-1)
    survived = run_workload_with_fault(root, workload, spec, seed)
    assert len(survived) == len(workload)
    store, served = assert_crash_consistent(root, workload)
    assert served == {}
    assert store.stats.quarantined == len(workload)


@pytest.mark.parametrize("seed", SEEDS)
def test_crash_then_rewrite_heals(tmp_path, workload, seed):
    """After any tear, simply re-putting the record restores service."""
    root = tmp_path / "store"
    run_workload_with_fault(root, workload, FaultSpec("store.bit_flip", "corrupt", at=1), seed)
    store, served = assert_crash_consistent(root, workload)
    assert workload[1][0] not in served
    store.put(workload[1][0], workload[1][1])
    healed = store.get(workload[1][0])
    assert healed is not None
    assert encode_schedule(healed) == encode_schedule(workload[1][1])
