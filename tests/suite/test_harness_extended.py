"""Extended harness tests: extra kernels, orderings, multi-machine grids."""

import numpy as np
import pytest

from repro.runtime import LAPTOP4, MachineConfig
from repro.suite import Harness, suite_by_name, table1_speedups


@pytest.fixture(scope="module")
def spec():
    return suite_by_name()["mesh2d-s"]


def test_extension_kernels_run_through_harness(spec):
    """gauss_seidel and spchol plug into the same grid as the paper's trio."""
    h = Harness(machines=(LAPTOP4,), kernels=("gauss_seidel",),
                algorithms=("hdagg", "wavefront"))
    records = h.run_matrix(spec)
    assert {r.kernel for r in records} == {"gauss_seidel"}
    for r in records:
        assert r.speedup > 0
        assert np.isfinite(r.avg_memory_access_latency)


def test_spchol_through_harness():
    # chol on a smaller mesh (fill makes it heavy)
    spec = suite_by_name()["mesh2d-s"]
    h = Harness(machines=(LAPTOP4,), kernels=("spchol",), algorithms=("hdagg", "lbc"))
    records = h.run_matrix(spec)
    assert len(records) == 2
    # the DAG the harness reports is the *filled* one
    assert all(r.n == 2304 for r in records)


def test_ordering_option_changes_results(spec):
    h_nd = Harness(machines=(LAPTOP4,), kernels=("sptrsv",), algorithms=("hdagg",))
    h_nat = Harness(machines=(LAPTOP4,), kernels=("sptrsv",), algorithms=("hdagg",),
                    ordering="natural")
    r_nd = h_nd.run_matrix(spec)[0]
    r_nat = h_nat.run_matrix(spec)[0]
    assert r_nd.n_wavefronts != r_nat.n_wavefronts


def test_epsilon_option_propagates(spec):
    tight = Harness(machines=(LAPTOP4,), kernels=("spilu0",), algorithms=("hdagg",),
                    epsilon=0.01).run_matrix(spec)[0]
    loose = Harness(machines=(LAPTOP4,), kernels=("spilu0",), algorithms=("hdagg",),
                    epsilon=0.95).run_matrix(spec)[0]
    assert loose.schedule_levels <= tight.schedule_levels


def test_multi_machine_grid(spec):
    tiny = MachineConfig(name="tiny2", n_cores=2, cache_lines_per_core=64)
    h = Harness(machines=(LAPTOP4, tiny), kernels=("sptrsv",), algorithms=("hdagg",))
    records = h.run_matrix(spec)
    assert {r.machine for r in records} == {"laptop4", "tiny2"}
    headers, rows, data = table1_speedups(records)
    # one column block per machine (no baselines -> zero rows, but headers split)
    assert any("laptop4" in h for h in headers)
    assert any("tiny2" in h for h in headers)


def test_validate_flag_can_be_disabled(spec):
    h = Harness(machines=(LAPTOP4,), kernels=("sptrsv",), algorithms=("hdagg",),
                validate=False)
    assert h.run_matrix(spec)[0].speedup > 0
