"""Tests for topological ordering and schedule-order verification."""

import numpy as np
import pytest

from repro.graph import (
    DAG,
    CycleError,
    dag_from_matrix_lower,
    is_acyclic,
    topological_order,
    verify_schedule_order,
)
from repro.sparse import lower_triangle


def test_topological_order_linear_chain():
    g = DAG.from_edges(4, [0, 1, 2], [1, 2, 3])
    np.testing.assert_array_equal(topological_order(g), [0, 1, 2, 3])


def test_topological_order_respects_edges(irregular):
    g = dag_from_matrix_lower(irregular)
    order = topological_order(g)
    assert verify_schedule_order(g, order)


def test_topological_order_deterministic(mesh):
    g = dag_from_matrix_lower(mesh)
    np.testing.assert_array_equal(topological_order(g), topological_order(g))


def test_cycle_detected():
    # 0 -> 1 -> 2 -> 0 plus an acyclic part
    g = DAG(4, np.array([0, 1, 2, 3, 3]), np.array([1, 2, 0]), check=False)
    with pytest.raises(CycleError):
        topological_order(g)
    assert not is_acyclic(g)


def test_acyclic_check(mesh):
    assert is_acyclic(dag_from_matrix_lower(mesh))


def test_empty_graph():
    g = DAG.empty(0)
    assert topological_order(g).size == 0


def test_no_edges():
    g = DAG.empty(3)
    np.testing.assert_array_equal(topological_order(g), [0, 1, 2])


def test_verify_schedule_order_detects_violation():
    g = DAG.from_edges(3, [0, 1], [1, 2])
    assert verify_schedule_order(g, np.array([0, 1, 2]))
    assert not verify_schedule_order(g, np.array([1, 0, 2]))


def test_verify_schedule_order_rejects_non_permutation():
    g = DAG.from_edges(2, [0], [1])
    with pytest.raises(ValueError):
        verify_schedule_order(g, np.array([0, 0]))
    with pytest.raises(ValueError):
        verify_schedule_order(g, np.array([0]))


def test_all_kernel_dags_are_acyclic(all_small_matrices):
    for name, a in all_small_matrices.items():
        g = dag_from_matrix_lower(a)
        assert is_acyclic(g), name
        assert g.is_id_topological(), name
