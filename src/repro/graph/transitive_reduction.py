"""Two-hop transitive edge reduction (SpMP-style approximation).

HDagg's step 1 (Algorithm 1, Line 1) removes *transitive* edges before
hunting for subtrees: an edge ``i -> f`` is redundant when some other path
already enforces the ordering.  Exact transitive reduction is as expensive as
transitive closure, so the paper adopts the two-hop approximation of
SpMP [4]: remove ``i -> f`` whenever a vertex ``j`` exists with ``i -> j``
and ``j -> f``.

Implementation note: "does a two-edge path i -> j -> f exist?" is exactly
"is ``(A @ A)[i, f]`` non-zero?" for the boolean adjacency matrix ``A``.  We
therefore evaluate the rule with one sparse boolean matrix product (SciPy,
C speed) instead of a Python loop over parents-of-parents; the complexity is
the paper's ``O(|E| * E[D] + |V| * Var[D])`` either way.  The membership
test "edge (i, f) appears in A@A" is a single merged pass over the two CSR
structures: both edge sets are encoded as strictly increasing ``i * n + f``
keys, so one ``searchsorted`` answers all rows at once.  An explicit
loop-based variant is kept for differential testing.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .dag import DAG

__all__ = [
    "transitive_reduction_two_hop",
    "transitive_reduction_reference",
    "transitive_edge_mask",
    "transitive_edge_mask_reference",
]


def _adjacency_bool(g: DAG) -> sp.csr_matrix:
    # indices/indptr are already INDEX_DTYPE (int64); hand them to SciPy
    # as-is instead of paying two astype copies per call.
    data = np.ones(g.n_edges, dtype=np.int8)
    return sp.csr_matrix((data, g.indices, g.indptr), shape=(g.n, g.n))


def _csr_keys(n: int, indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Encode CSR entries as strictly increasing ``row * n + col`` keys."""
    row = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    return row * np.int64(n) + indices.astype(np.int64, copy=False)


def transitive_edge_mask(g: DAG) -> np.ndarray:
    """Boolean mask over the CSR edge array: True = removable by the two-hop rule."""
    if g.n_edges == 0:
        return np.zeros(0, dtype=bool)
    a = _adjacency_bool(g)
    two_hop = (a @ a).tocsr()  # (i, f) structurally non-zero iff a length-2 path exists
    two_hop.sort_indices()
    # An edge (i, f) is transitive iff (i, f) is in two_hop's structure.
    # Both structures have sorted rows and sorted columns per row, so their
    # (row * n + col) keys are strictly increasing and one binary-search
    # pass decides membership for every edge simultaneously.
    hop_keys = _csr_keys(g.n, two_hop.indptr, two_hop.indices)
    if hop_keys.shape[0] == 0:
        return np.zeros(g.n_edges, dtype=bool)
    edge_keys = _csr_keys(g.n, g.indptr, g.indices)
    pos = np.searchsorted(hop_keys, edge_keys)
    pos_clipped = np.minimum(pos, hop_keys.shape[0] - 1)
    return (pos < hop_keys.shape[0]) & (hop_keys[pos_clipped] == edge_keys)


def transitive_edge_mask_reference(g: DAG) -> np.ndarray:
    """Row-by-row membership loop — the retained oracle for the fast path."""
    if g.n_edges == 0:
        return np.zeros(0, dtype=bool)
    a = _adjacency_bool(g)
    two_hop = a @ a
    two_hop.data = np.ones_like(two_hop.data)
    src, dst = g.edge_list()
    hop = two_hop.tocsr()
    mask = np.zeros(g.n_edges, dtype=bool)
    for i in np.unique(src):
        lo, hi = g.indptr[i], g.indptr[i + 1]
        row = hop.indices[hop.indptr[i] : hop.indptr[i + 1]]
        mask[lo:hi] = np.isin(g.indices[lo:hi], row, assume_unique=True)
    return mask


def transitive_reduction_two_hop(g: DAG) -> DAG:
    """Two-hop transitive reduction of ``g`` (Algorithm 1, Line 1).

    Removes every edge that the two-hop rule marks redundant.  The result
    preserves reachability: any removed edge is covered by a two-edge path
    whose edges are themselves kept or covered (on a DAG the rule can never
    disconnect an ordering, because the certifying path always survives in
    reduced form).
    """
    mask = transitive_edge_mask(g)
    if not mask.any():
        return g
    keep = ~mask
    src, dst = g.edge_list()
    return DAG.from_edges(g.n, src[keep], dst[keep], dedup=False)


def transitive_reduction_reference(g: DAG) -> DAG:
    """Loop-based two-hop reduction — O(parents²) per vertex, for testing.

    For every vertex ``f`` with parent set ``P``: an edge ``i -> f`` is
    removed when some ``j in P`` has ``i`` among *its* parents.  This is the
    formulation as written in Section IV-B, used as a differential oracle for
    the matrix-product implementation.
    """
    remove_src: list[int] = []
    remove_dst: list[int] = []
    for f in range(g.n):
        parents = g.parents(f)
        if parents.shape[0] < 2:
            continue
        pset = set(parents.tolist())
        for j in parents:
            for i in g.parents(int(j)):
                ii = int(i)
                if ii in pset:
                    remove_src.append(ii)
                    remove_dst.append(f)
    if not remove_src:
        return g
    removed = set(zip(remove_src, remove_dst))
    src, dst = g.edge_list()
    keep = np.array([(int(s), int(d)) not in removed for s, d in zip(src, dst)], dtype=bool)
    return DAG.from_edges(g.n, src[keep], dst[keep], dedup=False)
