"""JSONL run journal: checkpoint and resume for suite grid runs.

A full-suite grid run costs minutes; a crash at matrix 30 of 34 should not
cost them again.  The journal is an append-only JSONL file the harness
writes as each matrix completes:

* line 1 — a header: ``{"kind": "header", "version": 1, "fingerprint": ...}``
  where the fingerprint digests the grid configuration (machines, kernels,
  algorithms, ordering, epsilon, matrix names), so a journal can never be
  resumed under a different grid;
* one line per finished matrix —
  ``{"kind": "matrix", "matrix": name, "records": [...]}`` with the
  matrix's serialized :class:`~repro.suite.harness.RunRecord` rows;
* one line per isolated failure —
  ``{"kind": "failure", "failure": {...}}``.

Each line is flushed and fsync'd before the next matrix starts, so a
``kill -9`` mid-grid loses at most the in-flight matrix.  On resume, a
trailing half-written line (the signature of that kill) is truncated away
with a warning — merely skipping it would leave the partial bytes in
place for the append handle to splice the next row onto; corruption
anywhere else is an error.  Because records are replayed from
the journal verbatim, a resumed run's record list is bit-identical to an
uninterrupted run's.

The journal itself is format-only (dict rows in, dict rows out); the
harness owns record (de)serialization.
"""

from __future__ import annotations

import json
import os
import warnings
from os import PathLike
from pathlib import Path
from typing import Dict, List, Union

__all__ = ["JournalError", "RunJournal", "JOURNAL_VERSION"]

JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The journal file is unusable: wrong grid, corrupt body, or clobber risk."""


class RunJournal:
    """One suite run's checkpoint file.

    Parameters
    ----------
    path:
        The JSONL file.  Created (with its header) when absent.
    fingerprint:
        Digest of the grid configuration.  A non-empty fingerprint must
        match an existing journal's header exactly.
    resume:
        Must be true to open an existing non-empty journal — refusing by
        default prevents accidentally appending one grid's rows to
        another's checkpoint.
    """

    def __init__(
        self,
        path: Union[str, PathLike],
        *,
        fingerprint: str = "",
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._completed: Dict[str, List[dict]] = {}
        self.failures: List[dict] = []
        exists = self.path.exists() and self.path.stat().st_size > 0
        if exists:
            if not resume:
                raise JournalError(
                    f"journal {self.path} already exists; pass resume=True "
                    "(--resume) to continue it, or choose a fresh path"
                )
            self._load()
            self._fh = open(self.path, "a", encoding="utf-8")
        else:
            self._fh = open(self.path, "a", encoding="utf-8")
            self._write_row(
                {"kind": "header", "version": JOURNAL_VERSION, "fingerprint": fingerprint}
            )

    # ------------------------------------------------------------------
    def _load(self) -> None:
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        rows: List[dict] = []
        good_end = 0  # byte offset just past the last intact, newline-terminated row
        for i, line in enumerate(lines):
            if not line.strip():
                if i < len(lines) - 1:
                    good_end += len(line) + 1
                continue
            try:
                rows.append(json.loads(line.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                if i == len(lines) - 1:
                    # trailing half-written line: the run was killed
                    # mid-append; everything before it is intact
                    break
                raise JournalError(f"{self.path}: corrupt journal line {i + 1}") from exc
            good_end += len(line) + 1
        if not rows:
            raise JournalError(f"{self.path}: journal has no readable rows")
        header = rows[0]
        if header.get("kind") != "header":
            raise JournalError(f"{self.path}: first row is not a journal header")
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{self.path}: journal version {header.get('version')!r} "
                f"!= supported {JOURNAL_VERSION}"
            )
        if self.fingerprint and header.get("fingerprint") != self.fingerprint:
            raise JournalError(
                f"{self.path}: journal was written for a different grid "
                "configuration (fingerprint mismatch) — it cannot seed this run"
            )
        for row in rows[1:]:
            kind = row.get("kind")
            if kind == "matrix":
                self._completed[row["matrix"]] = row["records"]
            elif kind == "failure":
                self.failures.append(row["failure"])
            else:
                raise JournalError(f"{self.path}: unknown journal row kind {kind!r}")
        good_end = min(good_end, len(raw))
        if good_end < len(raw):
            # Truncate the torn tail *before* the append handle opens:
            # leaving it in place would splice the next checkpoint row onto
            # the partial line, corrupting a row that was perfectly healthy.
            warnings.warn(
                f"{self.path}: dropping torn trailing journal line "
                f"({len(raw) - good_end} bytes) left by a killed run",
                RuntimeWarning,
                stacklevel=3,
            )
            with open(self.path, "r+b") as fh:
                fh.truncate(good_end)
                fh.flush()
                os.fsync(fh.fileno())

    def _write_row(self, row: dict) -> None:
        self._fh.write(json.dumps(row, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------
    @property
    def completed(self) -> List[str]:
        """Names of matrices already checkpointed, in journal order."""
        return list(self._completed)

    def has(self, matrix: str) -> bool:
        """True when ``matrix`` has a checkpointed record row."""
        return matrix in self._completed

    def record_blobs_for(self, matrix: str) -> List[dict]:
        """The serialized records checkpointed for ``matrix``."""
        return self._completed[matrix]

    def append_matrix(self, matrix: str, record_blobs: List[dict]) -> None:
        """Checkpoint one finished matrix (flushed + fsync'd)."""
        self._completed[matrix] = record_blobs
        self._write_row({"kind": "matrix", "matrix": matrix, "records": record_blobs})

    def append_failure(self, failure_blob: dict) -> None:
        """Checkpoint one isolated failure row."""
        self.failures.append(failure_blob)
        self._write_row({"kind": "failure", "failure": failure_blob})

    def close(self) -> None:
        """Close the underlying file handle."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None  # type: ignore[assignment]

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunJournal({str(self.path)!r}, completed={len(self._completed)})"
