"""Tests for the two-hop transitive reduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    DAG,
    dag_from_matrix_lower,
    topological_order,
    transitive_edge_mask,
    transitive_reduction_reference,
    transitive_reduction_two_hop,
)


def reachable_pairs(g: DAG) -> set:
    """All (u, v) with a directed path u -> ... -> v (test oracle)."""
    import networkx as nx

    nxg = nx.DiGraph()
    nxg.add_nodes_from(range(g.n))
    nxg.add_edges_from(g.iter_edges())
    closure = nx.transitive_closure(nxg)
    return set(closure.edges())


def test_diamond(diamond_dag):
    r = transitive_reduction_two_hop(diamond_dag)
    assert r.n_edges == 4
    assert not r.has_edge(0, 3)
    assert r.has_edge(0, 1) and r.has_edge(1, 3)


def test_chain_untouched():
    g = DAG.from_edges(4, [0, 1, 2], [1, 2, 3])
    assert transitive_reduction_two_hop(g) == g


def test_total_order_becomes_chain():
    # complete DAG on 5 vertices: all (i, j) i < j; two-hop leaves the chain
    src, dst = zip(*[(i, j) for i in range(5) for j in range(i + 1, 5)])
    g = DAG.from_edges(5, list(src), list(dst))
    r = transitive_reduction_two_hop(g)
    assert list(r.iter_edges()) == [(0, 1), (1, 2), (2, 3), (3, 4)]


def test_three_hop_not_removed():
    # 0->1->2->3 and 0->3: only a 3-hop path certifies 0->3, so the
    # two-hop approximation keeps it (documented behaviour, matching [4]).
    g = DAG.from_edges(4, [0, 1, 2, 0], [1, 2, 3, 3])
    r = transitive_reduction_two_hop(g)
    assert r.has_edge(0, 3)


def test_mask_marks_only_transitive(diamond_dag):
    mask = transitive_edge_mask(diamond_dag)
    src, dst = diamond_dag.edge_list()
    marked = {(int(s), int(d)) for s, d, m in zip(src, dst, mask) if m}
    assert marked == {(0, 3)}


def test_reference_agrees(all_small_matrices):
    for name, a in all_small_matrices.items():
        g = dag_from_matrix_lower(a)
        assert transitive_reduction_two_hop(g) == transitive_reduction_reference(g), name


def test_reachability_preserved(kite):
    g = dag_from_matrix_lower(kite)
    r = transitive_reduction_two_hop(g)
    assert r.n_edges < g.n_edges  # cliques shrink
    assert reachable_pairs(g) == reachable_pairs(r)


def test_no_edges():
    g = DAG.empty(3)
    assert transitive_reduction_two_hop(g) == g
    assert transitive_edge_mask(g).size == 0


@given(st.integers(2, 12), st.integers(0, 30), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_property_reachability_and_minimality(n, m, seed):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src < dst  # id-topological random DAG
    g = DAG.from_edges(n, src[keep], dst[keep])
    r = transitive_reduction_two_hop(g)
    # edges only removed, never added
    kept = set(r.iter_edges())
    assert kept <= set(g.iter_edges())
    # reachability identical
    assert reachable_pairs(g) == reachable_pairs(r)
    # still a DAG with the same vertex set
    assert topological_order(r).shape[0] == n
    # agreement with the loop-based oracle
    assert r == transitive_reduction_reference(g)
