"""Tests for first-fit bin packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import first_fit_pack


def test_equal_items_balance():
    pack = first_fit_pack([1.0] * 8, 4)
    assert pack.loads.tolist() == [2.0, 2.0, 2.0, 2.0]
    assert pack.pgp() == 0.0


def test_first_fit_order():
    # target = 6/2 = 3; first two items fill bin 0 to >= 3, rest go to bin 1
    pack = first_fit_pack([2.0, 2.0, 1.0, 1.0], 2)
    assert pack.assignment.tolist() == [0, 0, 1, 1]


def test_fewer_items_than_bins():
    pack = first_fit_pack([3.0], 4)
    assert pack.n_bins_used == 1
    assert pack.loads[0] == 3.0


def test_overflow_goes_to_least_loaded():
    # items larger than target: each bin reaches target immediately
    pack = first_fit_pack([10.0, 10.0, 10.0], 2)
    assert sorted(pack.loads.tolist()) == [10.0, 20.0]


def test_empty():
    pack = first_fit_pack([], 3)
    assert pack.n_bins_used == 0
    assert pack.loads.tolist() == [0.0, 0.0, 0.0]


def test_items_per_bin_preserves_order():
    pack = first_fit_pack([1.0, 1.0, 1.0, 1.0], 2)
    per_bin = pack.items_per_bin(2)
    assert per_bin[0].tolist() == [0, 1]
    assert per_bin[1].tolist() == [2, 3]


def test_negative_cost_rejected():
    with pytest.raises(ValueError):
        first_fit_pack([-1.0], 2)


def test_bad_p_rejected():
    with pytest.raises(ValueError):
        first_fit_pack([1.0], 0)


@given(
    st.lists(st.floats(0.0, 100.0), min_size=0, max_size=64),
    st.integers(1, 16),
)
@settings(max_examples=100, deadline=None)
def test_packing_invariants(costs, p):
    pack = first_fit_pack(costs, p)
    # every item assigned to a valid bin
    assert pack.assignment.shape[0] == len(costs)
    if costs:
        assert pack.assignment.min() >= 0
        assert pack.assignment.max() < p
    # loads add up
    assert pack.loads.sum() == pytest.approx(sum(costs))
    # loads consistent with assignment
    recomputed = np.zeros(p)
    for item, b in enumerate(pack.assignment):
        recomputed[b] += costs[item]
    np.testing.assert_allclose(recomputed, pack.loads)


@given(st.lists(st.floats(0.1, 10.0), min_size=4, max_size=64), st.integers(2, 8))
@settings(max_examples=60, deadline=None)
def test_max_load_within_target_plus_one_item(costs, p):
    """First-fit guarantee: max bin <= target + max item."""
    pack = first_fit_pack(costs, p)
    target = sum(costs) / p
    assert pack.loads.max() <= target + max(costs) + 1e-9
