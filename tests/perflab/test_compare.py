"""Comparison engine: verdicts, stage attribution, point-ratio fallback."""

import math

import numpy as np
import pytest

from repro.perflab.compare import (
    classify_point_ratio,
    compare_observations,
    compare_series,
    stage_series,
)
from repro.perflab.protocol import MeasurementProtocol, ObservationKey

from .test_fingerprint import make_fp

KEY = ObservationKey("bench", "m", "sptrsv", "hdagg", "intel20")
PROTO = MeasurementProtocol(warmup=0, min_reps=12, max_reps=12,
                            target_rel_ci=0.001)  # fixed 12 reps


def observe(total, *, lbp, coarsen=0.002, execute=0.003, jitter=0.00005,
            fp=None, seed=0):
    """Observation whose reps hover around the given stage split."""
    rng = np.random.default_rng(seed)

    def rep():
        eps = float(rng.normal(0.0, jitter))
        stages = {
            "inspect": total - execute + eps,
            "inspect/lbp": lbp + eps,
            "inspect/coarsen": coarsen,
            "execute": execute,
        }
        return total + eps, stages

    return PROTO.measure(KEY, rep, fingerprint=fp or make_fp())


def test_stage_series_includes_residual():
    obs = observe(0.010, lbp=0.004)
    series = stage_series(obs)
    assert set(series) == {"inspect/lbp", "inspect/coarsen", "execute",
                           "inspect/other"}
    # residual = inspect - (lbp + coarsen), clipped at zero, per rep
    assert all(v >= 0 for v in series["inspect/other"])
    assert np.median(series["inspect/other"]) == pytest.approx(
        0.010 - 0.003 - 0.004 - 0.002, abs=2e-4
    )


def test_unchanged_pair_is_quiet():
    c = compare_observations(observe(0.010, lbp=0.004, seed=1),
                             observe(0.010, lbp=0.004, seed=2))
    assert not c.regressed
    assert c.fingerprint_match
    assert "REGRESSED" not in c.describe()


def test_regression_attributed_to_moved_stage():
    old = observe(0.010, lbp=0.004, seed=1)
    new = observe(0.013, lbp=0.007, seed=2)  # +30%, entirely in lbp
    c = compare_observations(old, new)
    assert c.regressed
    assert c.total.rel_shift == pytest.approx(0.30, abs=0.05)
    who = c.responsible_stages
    assert who and who[0].stage == "inspect/lbp"
    assert who[0].delta_seconds == pytest.approx(0.003, abs=5e-4)
    assert "stage=inspect/lbp" in c.describe()
    blob = c.as_dict()
    assert blob["regressed"] is True
    assert blob["responsible_stages"][0] == "inspect/lbp"


def test_improvement_is_not_a_regression():
    c = compare_observations(observe(0.013, lbp=0.007, seed=1),
                             observe(0.010, lbp=0.004, seed=2))
    assert c.total.verdict == "improved"
    assert not c.regressed


def test_fingerprint_mismatch_is_flagged():
    c = compare_observations(
        observe(0.010, lbp=0.004, fp=make_fp()),
        observe(0.010, lbp=0.004, fp=make_fp(numpy="9.9.9")),
    )
    assert not c.fingerprint_match
    assert "WARNING" in c.describe()


def test_compare_series_uses_history_for_change_point():
    series = [observe(0.010, lbp=0.004, seed=s) for s in range(6)]
    series += [observe(0.013, lbp=0.007, seed=10 + s) for s in range(6)]
    c = compare_series(series)
    assert c is not None
    # latest vs predecessor: both post-shift, so no new regression...
    assert not c.regressed
    # ...but the change point localizes when the series moved
    assert c.change_point is not None
    assert abs(c.change_point.index - 6) <= 1


def test_compare_series_with_explicit_baseline():
    baseline = observe(0.010, lbp=0.004, seed=1)
    series = [observe(0.013, lbp=0.007, seed=2)]
    c = compare_series(series, baseline=baseline)
    assert c is not None and c.regressed


def test_compare_series_degenerate():
    assert compare_series([]) is None
    assert compare_series([observe(0.01, lbp=0.004)]) is None


def test_classify_point_ratio():
    assert classify_point_ratio(2.0, 1.0) == "regressed"
    assert classify_point_ratio(2.0, 2.0) == "ok"
    assert classify_point_ratio(2.0, 1.95) == "ok"  # above 0.95 threshold
    for bad in (0.0, -1.0, float("nan"), float("inf")):
        assert classify_point_ratio(bad, 1.0) == "indeterminate"
    assert classify_point_ratio(1.0, float("nan")) == "indeterminate"
    assert classify_point_ratio(1.0, -0.5) == "indeterminate"
