"""Build the data-dependence DAG of a sparse kernel from its input matrix.

Section III of the paper: "To compute the DAG of the three supported kernels
... we use the input matrix.  We do not create the DAG explicitly for
efficiency and instead reuse the input matrix as the DAG."  For all three
kernels the dependence structure is the strictly-lower-triangular pattern:

* **SpTRSV** (``Lx = b``, CSR forward substitution): computing ``x[i]`` reads
  ``x[j]`` for every stored ``L[i, j]`` with ``j < i`` — edge ``j -> i``.
* **SpIC0 / SpILU0** (row-wise up-looking factorisation): factoring row ``i``
  reads the already-factored row ``j`` for every stored ``A[i, j]`` with
  ``j < i`` — again edge ``j -> i``.

Hence one builder serves all kernels; they differ only in cost functions
(:mod:`repro.kernels.cost`).
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix, INDEX_DTYPE
from .dag import DAG

__all__ = ["dag_from_lower_triangular", "dag_from_matrix_lower", "dag_to_matrix_pattern"]


def dag_from_lower_triangular(low: CSRMatrix) -> DAG:
    """DAG of a lower-triangular CSR matrix: edge ``j -> i`` per ``L[i, j]``, ``j < i``.

    Entries on or above the diagonal contribute no edges.  The result is
    id-topological by construction (every edge goes from a smaller id to a
    larger one), which downstream inspectors exploit.
    """
    if not low.is_square:
        raise ValueError("kernel matrices must be square")
    row_of = np.repeat(np.arange(low.n_rows, dtype=INDEX_DTYPE), low.row_nnz())
    below = low.indices < row_of
    src = low.indices[below]
    dst = row_of[below]
    return DAG.from_edges(low.n_rows, src, dst, dedup=False)


def dag_from_matrix_lower(a: CSRMatrix) -> DAG:
    """DAG of a general matrix's lower triangle (SpIC0/SpILU0 dependence DAG).

    Works directly off the full matrix without materialising the triangle:
    any stored ``A[i, j]`` with ``j < i`` yields the edge ``j -> i``.
    """
    if not a.is_square:
        raise ValueError("kernel matrices must be square")
    row_of = np.repeat(np.arange(a.n_rows, dtype=INDEX_DTYPE), a.row_nnz())
    below = a.indices < row_of
    return DAG.from_edges(a.n_rows, a.indices[below], row_of[below], dedup=False)


def dag_to_matrix_pattern(g: DAG) -> CSRMatrix:
    """Inverse view: the strictly-lower-triangular pattern matrix of a DAG.

    Each edge ``j -> i`` (requires ``j < i``) becomes a unit entry ``(i, j)``.
    Useful to route synthetic DAGs through the matrix-driven pipeline.
    """
    src, dst = g.edge_list()
    if src.size and not np.all(src < dst):
        raise ValueError("DAG must be id-topological to embed as a lower triangle")
    from ..sparse.csr import csr_from_coo

    rows = np.concatenate([dst, np.arange(g.n, dtype=INDEX_DTYPE)])
    cols = np.concatenate([src, np.arange(g.n, dtype=INDEX_DTYPE)])
    vals = np.ones(rows.shape[0], dtype=np.float64)
    return csr_from_coo(g.n, g.n, rows, cols, vals, sum_duplicates=False)
