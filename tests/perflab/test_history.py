"""History store, trajectory snapshot, and schema-1 migration."""

import json
import os

import pytest

from repro.perflab.history import (
    LEGACY_DIGEST,
    HistoryStore,
    load_trajectory,
    migrate_bench_inspector,
    write_trajectory,
)
from repro.perflab.protocol import MeasurementProtocol, ObservationKey

from .test_fingerprint import make_fp

KEY = ObservationKey("bench", "m", "sptrsv", "hdagg", "intel20")


def observe(value=0.01, key=KEY, fp=None, note=""):
    proto = MeasurementProtocol(warmup=0, min_reps=5, max_reps=5)
    return proto.measure(key, lambda: (value, {"inspect": value * 0.7}),
                         fingerprint=fp or make_fp(), note=note)


def test_append_and_reload(tmp_path):
    path = tmp_path / "h.jsonl"
    store = HistoryStore(path)
    store.append(observe(0.01))
    store.append(observe(0.02))
    store.append(observe(0.01, key=ObservationKey("bench", "m2", "sptrsv", "hdagg")))
    again = HistoryStore(path)
    assert len(again) == 3
    assert len(again.series_keys()) == 2
    series = again.series(KEY, make_fp().digest)
    assert [o.stats.statistic for o in series] == pytest.approx([0.01, 0.02])
    assert again.latest(KEY, make_fp().digest).stats.statistic == pytest.approx(0.02)


def test_different_environments_are_different_series(tmp_path):
    store = HistoryStore(tmp_path / "h.jsonl")
    store.append(observe(fp=make_fp()))
    store.append(observe(fp=make_fp(numpy="9.9.9")))
    assert len(store.series_keys()) == 2


def test_header_is_validated(tmp_path):
    path = tmp_path / "h.jsonl"
    path.write_text('{"kind": "header", "schema": 99}\n')
    with pytest.raises(ValueError, match="schema"):
        HistoryStore(path)
    path.write_text('{"not": "a header"}\n')
    with pytest.raises(ValueError, match="header"):
        HistoryStore(path)


def test_appends_are_durable_per_line(tmp_path):
    path = tmp_path / "h.jsonl"
    store = HistoryStore(path)
    store.append(observe())
    # simulate a killed run: a torn trailing line on disk
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"kind": "observation", "schema": 2, "trunc')
    with pytest.raises(json.JSONDecodeError):
        HistoryStore(path)


def test_trajectory_roundtrip_and_atomicity(tmp_path):
    store = HistoryStore(tmp_path / "h.jsonl")
    store.append(observe(0.01))
    store.append(observe(0.02))
    traj = tmp_path / "traj.json"
    doc = write_trajectory(store, traj)
    assert not os.path.exists(f"{traj}.tmp")  # tmp file replaced, not left
    loaded = load_trajectory(traj)
    assert loaded["schema"] == 2
    (series,) = loaded["series"]
    assert series["n_observations"] == 2
    assert series["median_seconds"] == pytest.approx([0.01, 0.02])
    assert series["latest"]["reps"] == 5
    assert "inspect" in series["latest"]["stage_medians"]
    assert doc["series"][0]["key"] == KEY.as_dict()
    # regenerating produces the same document (derived state)
    assert write_trajectory(store, traj) == doc


def test_load_trajectory_refuses_other_kinds(tmp_path):
    p = tmp_path / "x.json"
    p.write_text('{"kind": "observation", "schema": 2}')
    with pytest.raises(ValueError):
        load_trajectory(p)


def test_migrate_schema1(tmp_path):
    legacy = tmp_path / "BENCH_inspector.json"
    legacy.write_text(json.dumps({
        "version": 1,
        "sizes": [
            {"matrix": "poisson2d(32)", "n": 1024, "edges": 1984,
             "inspector_ms": 10.0,
             "stage_ms": {"lbp": 6.0, "coarsen": 1.0},
             "coarse_wavefronts": 21},
            {"matrix": "poisson2d(48)", "n": 2304, "edges": 4512,
             "inspector_ms": 20.0, "stage_ms": {}, "coarse_wavefronts": 30},
        ],
    }))
    migrated = migrate_bench_inspector(legacy)
    assert len(migrated) == 2
    first = migrated[0]
    assert first.key.benchmark == "inspector_scaling"
    assert first.key.matrix == "poisson2d(32)"
    assert first.timings == [pytest.approx(0.010)]
    assert first.stages["inspect/lbp"] == [pytest.approx(0.006)]
    assert first.fingerprint.digest == LEGACY_DIGEST
    assert first.fingerprint.extra["migrated_from"] == str(legacy)
    assert "migrated" in first.note
    # single-sample migrated points flow through the store like any other
    store = HistoryStore(tmp_path / "h.jsonl")
    store.extend(migrated)
    assert len(HistoryStore(tmp_path / "h.jsonl")) == 2


def test_migrate_schema2_keeps_fingerprint(tmp_path):
    fp = make_fp()
    f = tmp_path / "BENCH_inspector.json"
    f.write_text(json.dumps({
        "schema": 2,
        "fingerprint": fp.as_dict(),
        "sizes": [{"matrix": "poisson2d(32)", "n": 1024, "edges": 1984,
                   "inspector_ms": 10.0, "stage_ms": {"lbp": 6.0},
                   "coarse_wavefronts": 21}],
    }))
    (obs,) = migrate_bench_inspector(f)
    assert obs.fingerprint.digest == fp.digest


def test_migrate_refuses_unknown_versions(tmp_path):
    f = tmp_path / "x.json"
    f.write_text('{"version": 7, "sizes": []}')
    with pytest.raises(ValueError, match="version"):
        migrate_bench_inspector(f)
