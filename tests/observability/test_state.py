"""Unit tests for the ambient observability state and its integrations."""

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import NULL_TRACER, Tracer
from repro.observability.state import (
    STATE,
    current_registry,
    current_tracer,
    disable,
    enable,
    is_enabled,
    observed,
)
from repro.resilience import faults as faults_mod
from repro.resilience.faults import FaultPlan, FaultSpec, armed, fault_point


@pytest.fixture(autouse=True)
def _clean_state():
    """Every test starts and ends with the ambient state off."""
    disable()
    yield
    disable()


def test_disabled_is_the_default_contract():
    assert is_enabled() is False
    assert current_tracer() is NULL_TRACER
    assert current_registry() is None


def test_enable_installs_fresh_tracer_and_registry():
    tracer, registry = enable()
    assert is_enabled() is True
    assert isinstance(tracer, Tracer)
    assert isinstance(registry, MetricsRegistry)
    assert current_tracer() is tracer
    assert current_registry() is registry
    disable()
    assert current_tracer() is NULL_TRACER
    assert current_registry() is None


def test_enable_accepts_caller_objects():
    my_tracer, my_registry = Tracer(), MetricsRegistry()
    tracer, registry = enable(my_tracer, my_registry)
    assert tracer is my_tracer and registry is my_registry
    assert STATE.tracer is my_tracer


def test_observed_restores_prior_state():
    with observed() as (tracer, registry):
        assert is_enabled() is True
        with tracer.span("inspect/x"):
            registry.counter("c").inc()
    assert is_enabled() is False
    assert current_tracer() is NULL_TRACER
    # the objects survive the block for post-hoc inspection
    assert [s.name for s in tracer.spans] == ["inspect/x"]
    assert registry.counter("c").value == 1.0


def test_observed_restores_on_exception():
    with pytest.raises(RuntimeError):
        with observed():
            raise RuntimeError("boom")
    assert is_enabled() is False


def test_observed_nests_and_restores_outer_pair():
    with observed() as (outer_tracer, outer_registry):
        with observed() as (inner_tracer, _):
            assert STATE.tracer is inner_tracer
        assert STATE.tracer is outer_tracer
        assert STATE.registry is outer_registry
        assert is_enabled() is True
    assert is_enabled() is False


def test_fault_observer_counts_fired_faults():
    plan = FaultPlan([FaultSpec("inspector", "raise", at=0)])
    with observed() as (_, registry):
        with armed(plan):
            with pytest.raises(faults_mod.FaultError):
                fault_point("inspector", label="mesh2d-s")
    assert registry.counter("resilience.faults_fired").value == 1.0
    assert registry.counter("resilience.faults_fired.inspector").value == 1.0


def test_fault_observer_ignores_unfired_occurrences():
    plan = FaultPlan([FaultSpec("inspector", "raise", at=5)])
    with observed() as (_, registry):
        with armed(plan):
            fault_point("inspector")  # occurrence 0: does not fire
    assert "resilience.faults_fired" not in registry


def test_fault_observer_uninstalled_after_observed():
    with observed():
        assert faults_mod._OBSERVER is not None
    assert faults_mod._OBSERVER is None
    # and firing a fault outside observed() must not touch any registry
    plan = FaultPlan([FaultSpec("inspector", "raise", at=0)])
    with armed(plan):
        with pytest.raises(faults_mod.FaultError):
            fault_point("inspector")
