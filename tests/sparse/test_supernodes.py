"""Tests for supernode detection on the symbolic factor."""

import numpy as np
import pytest

from repro.sparse import (
    apply_ordering,
    csr_from_dense,
    supernodes,
    symbolic_cholesky,
    tridiagonal_spd,
)


def column_structures(a):
    """Strictly-below-diagonal row sets per column of the symbolic factor."""
    l = symbolic_cholesky(a).transpose()  # factor columns as rows
    out = []
    for j in range(a.n_rows):
        rows, _ = l.row(j)
        out.append(set(int(r) for r in rows if r > j))
    return out


def test_labels_are_run_starts(mesh):
    labels = supernodes(mesh)
    assert labels[0] == 0
    # labels are non-decreasing and equal the first column of their run
    for j in range(1, mesh.n_rows):
        assert labels[j] in (labels[j - 1], j)


def test_supernode_columns_nest(mesh_nd):
    """Within a supernode, each column's below-structure equals the next
    column's structure plus that next column (the defining property)."""
    labels = supernodes(mesh_nd)
    structs = column_structures(mesh_nd)
    for j in range(1, mesh_nd.n_rows):
        if labels[j] == labels[j - 1]:
            assert structs[j - 1] == structs[j] | {j}


def test_dense_matrix_single_supernode(rng):
    dense = rng.random((8, 8))
    spd = dense @ dense.T + 8 * np.eye(8)
    labels = supernodes(csr_from_dense(spd))
    assert len(set(labels.tolist())) == 1


def test_tridiagonal_merges_only_last_pair():
    """Tridiagonal columns do not nest (struct(j) = {j+1} != {j+1, j+2});
    only the final pair satisfies the supernode rule."""
    a = tridiagonal_spd(12, seed=1)
    labels = supernodes(a)
    assert len(set(labels.tolist())) == 11
    assert labels[-1] == labels[-2]


def test_diagonal_matrix_all_singletons():
    a = csr_from_dense(np.diag([2.0, 3.0, 4.0]))
    labels = supernodes(a)
    assert labels.tolist() == [0, 1, 2]


def test_mesh_has_nontrivial_supernodes(mesh_nd):
    labels = supernodes(mesh_nd)
    n_super = len(set(labels.tolist()))
    assert n_super < mesh_nd.n_rows  # some amalgamation
    assert n_super > 1


def test_supernodal_grouping_feeds_hdagg(mesh_nd):
    """Supernode labels work as a pre-grouping for the scheduling stack."""
    from repro.core import hdagg
    from repro.graph import (
        coarsen_dag,
        dag_from_lower_triangular,
        grouping_from_labels,
        is_acyclic,
    )

    pattern = symbolic_cholesky(mesh_nd)
    g = dag_from_lower_triangular(pattern)
    grouping = grouping_from_labels(supernodes(mesh_nd))
    grouping.validate()
    quotient = coarsen_dag(g, grouping)
    assert is_acyclic(quotient)  # supernodes are convex in the factor DAG
    s = hdagg(quotient, grouping.group_costs(np.ones(g.n)), 4)
    s.validate(quotient)
