"""Process-local metrics registry: counters, gauges, histograms.

The inspector and runtime report *what happened* through named metrics —
vertices coarsened, the PGP seen at every LBP merge decision, bin-pack
occupancy, schedule-cache hits, fault-site triggers — and the registry
turns them into one JSON document.  Instruments are created on first use
(``registry.counter("schedule_cache.hits").inc()``) so call sites never
need registration boilerplate, and every instrument is thread-safe (the
threaded executor increments from worker threads).

Naming convention: dotted ``subsystem.metric`` names
(``inspector.vertices_coarsened``, ``binpack.occupancy``,
``resilience.faults_fired``).  Histograms keep full summary statistics
plus fixed decade-style buckets, which is enough to reconstruct the
paper-style distributions without storing every observation.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge for ups and downs")
        with self._lock:
            self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (plus min/max watermarks)."""

    __slots__ = ("name", "value", "min", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        v = float(value)
        with self._lock:
            self.value = v
            self.min = v if self.min is None else min(self.min, v)
            self.max = v if self.max is None else max(self.max, v)

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value, "min": self.min, "max": self.max}


#: Default histogram bucket upper bounds: decade ladder spanning the
#: quantities we observe (ratios around 1e-3..1, counts up to 1e6).
DEFAULT_BUCKETS = (
    0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 2.5, 10.0, 100.0, 1e4, 1e6,
)


class Histogram:
    """Summary statistics plus cumulative bucket counts.

    ``buckets`` are upper bounds (an implicit ``+inf`` bucket catches the
    rest).  ``observe`` is O(len(buckets)); with the default 13 buckets the
    cost is negligible next to the work being measured.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        v = float(value)
        with self._lock:
            self.count += 1
            self.sum += v
            self.min = v if self.min is None else min(self.min, v)
            self.max = v if self.max is None else max(self.max, v)
            for i, bound in enumerate(self.buckets):
                if v <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    def observe_many(self, values: Sequence[Union[int, float]]) -> None:
        """Record a batch under one lock, bucketed vectorially.

        ``searchsorted`` against the sorted bounds reproduces the scalar
        path's ``v <= bound`` rule exactly (overflow lands past the last
        bound, i.e. in the +inf bucket), which is what lets the replay
        harness stream millions of latencies without a Python-level loop.
        """
        vals = np.asarray(values if hasattr(values, "__len__") else list(values), dtype=float)
        if vals.size == 0:
            return
        idx = np.searchsorted(np.asarray(self.buckets), vals, side="left")
        per_bucket = np.bincount(idx, minlength=len(self.buckets) + 1)
        with self._lock:
            self.count += int(vals.size)
            self.sum += float(vals.sum())
            lo, hi = float(vals.min()), float(vals.max())
            self.min = lo if self.min is None else min(self.min, lo)
            self.max = hi if self.max is None else max(self.max, hi)
            for i, n in enumerate(per_bucket):
                self.bucket_counts[i] += int(n)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-interpolated quantile estimate (``None`` when empty).

        Accuracy is bounded by the bucket ladder — good enough for the
        decade-scale questions the registry answers ("where does the p95
        land"), not a substitute for the perf-lab's full sample sets.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return None
            target = q * self.count
            seen = 0
            lo = self.min if self.min is not None else 0.0
            for i, bound in enumerate(self.buckets):
                n = self.bucket_counts[i]
                if n and seen + n >= target:
                    lower = lo if i == 0 else self.buckets[i - 1]
                    lower = max(lower, self.min if self.min is not None else lower)
                    upper = min(bound, self.max if self.max is not None else bound)
                    frac = (target - seen) / n
                    return lower + frac * (upper - lower)
                seen += n
            return self.max

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
        }

    @classmethod
    def from_dict(cls, name: str, blob: dict) -> "Histogram":
        """Rehydrate from :meth:`as_dict` output (snapshot/JSONL lines), so
        archived registries answer the same quantile questions live ones do."""
        h = cls(name, blob["buckets"])
        h.bucket_counts = [int(n) for n in blob["bucket_counts"]]
        h.count = int(blob["count"])
        h.sum = float(blob["sum"])
        h.min = None if blob.get("min") is None else float(blob["min"])
        h.max = None if blob.get("max") is None else float(blob["max"])
        return h


class MetricsRegistry:
    """Name -> instrument map with create-on-first-use accessors.

    Asking for an existing name with a different instrument type raises —
    a typo'd metric silently splitting into two instruments is exactly the
    reporting bug this layer exists to prevent.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, *args):
        inst = self._instruments.get(name)
        if inst is None:
            with self._lock:
                inst = self._instruments.get(name)
                if inst is None:
                    inst = cls(name, *args)
                    self._instruments[name] = inst
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} is a {type(inst).__name__}, requested {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, buckets)

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def as_dict(self) -> dict:
        """All instruments as one JSON-safe document (sorted by name)."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: inst.as_dict() for name, inst in items}

    def to_json(self, *, indent: int = 1) -> str:
        return json.dumps({"version": 1, "metrics": self.as_dict()}, indent=indent)

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()
