"""Helpers shared by the benchmark modules (kept out of conftest so the
module name never collides with the test-suite conftest)."""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.perflab.fingerprint import PERF_SCHEMA_VERSION, collect_fingerprint
from repro.suite import SUITE, suite_by_name

#: Representative subset: every family, both size buckets, both AP buckets.
SUBSET = [
    "mesh2d-s",
    "mesh2d-xl",
    "mesh3d-m",
    "mesh3d-xl",
    "band-narrow",
    "rand-mid",
    "rand-large",
    "chain-pure",
    "blocks-many",
    "power-soft",
    "kite-small",
    "arrow-many",
]

#: Where regenerated tables/figures land; ``HDAGG_BENCH_OUT`` redirects the
#: whole artifact tree (CI points it at the uploaded-artifact directory).
OUTPUT_DIR = Path(os.environ.get("HDAGG_BENCH_OUT") or Path(__file__).parent / "output")


def bench_specs():
    """Dataset for the bench session: 12-matrix subset, or all 34 with
    ``HDAGG_BENCH_FULL=1``."""
    if os.environ.get("HDAGG_BENCH_FULL"):
        return list(SUITE)
    by_name = suite_by_name()
    return [by_name[n] for n in SUBSET]


def provenance_footer() -> str:
    """Environment stamp appended to every text artifact: which machine,
    which commit, which schema — so a diff between two committed outputs
    is attributable before anyone re-runs anything."""
    fp = collect_fingerprint()
    return (
        f"# schema {PERF_SCHEMA_VERSION} | env {fp.digest} ({fp.describe()})"
        + (f" | git {fp.git_sha}" if fp.git_sha else "")
    )


def write_report(output_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated table/figure under the output tree."""
    (output_dir / f"{name}.txt").write_text(
        text + "\n" + provenance_footer() + "\n", encoding="utf-8"
    )


def write_json_payload(output_dir: Path, name: str, payload: dict,
                       backend: str = "") -> Path:
    """Persist a machine-readable artifact, stamped with the perf schema
    version and the environment fingerprint (digest + full description).

    The stamp lives at the top level next to the payload keys, so readers
    like :func:`repro.perflab.history.migrate_bench_inspector` can route
    on ``schema`` and recover the provenance without any side files.
    ``backend`` (canonical ``BackendSpec.describe()`` form) enters the
    fingerprint's environment key when non-empty, so compiled-tier and
    numpy-tier artifacts never share a digest.
    """
    fp = collect_fingerprint(backend=backend)
    doc = {
        "schema": PERF_SCHEMA_VERSION,
        "fingerprint": fp.as_dict(),
        **payload,
    }
    path = output_dir / f"{name}.json"
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
