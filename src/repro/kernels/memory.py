"""Edge-based memory model: what each iteration reads from whom.

The locality story of the paper (Sections I, V-A) is about *dependence
data*: iteration ``v`` consumes data produced by every ``u`` with an edge
``u -> v`` — ``x[u]`` for SpTRSV, the factored row ``u`` for SpIC0/SpILU0.
That data is a cache hit only when ``u`` ran recently *on the same core*;
on any other core it is a coherence/remote miss no matter how big the cache
is.  Grouping dependent iterations onto one core (HDagg step 1, and the
smallest-id-first bin order) is precisely what converts this traffic into
hits.

:class:`MemoryModel` captures the two access classes per kernel:

* ``stream_lines[v]`` — lines iteration ``v`` streams through
  unconditionally (its own row of the operand/factor): cold, always misses;
* ``edge_lines[e]`` — lines transferred along dependence edge ``e``
  (aligned with ``dag.edge_list()``): hit iff producer and consumer share a
  core within the reuse window.

The line counts reuse :func:`repro.kernels.base.lines_of_rows` (64-byte
lines, 8 doubles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.dag import DAG
from ..sparse.csr import CSRMatrix
from .base import lines_of_rows

__all__ = ["MemoryModel", "sptrsv_memory_model", "factor_memory_model"]


@dataclass(frozen=True)
class MemoryModel:
    """Per-vertex streaming lines + per-edge dependence lines for one kernel run."""

    stream_lines: np.ndarray  # (n,) lines streamed by each iteration
    edge_lines: np.ndarray  # (n_edges,) lines consumed along each DAG edge

    @property
    def total_stream(self) -> int:
        return int(self.stream_lines.sum())

    @property
    def total_edge(self) -> int:
        return int(self.edge_lines.sum())

    @property
    def total_accesses(self) -> int:
        """All modelled line accesses of one kernel execution."""
        return self.total_stream + self.total_edge

    def validate(self, g: DAG) -> None:
        if self.stream_lines.shape[0] != g.n:
            raise ValueError("stream_lines length mismatch")
        if self.edge_lines.shape[0] != g.n_edges:
            raise ValueError("edge_lines length mismatch")


def sptrsv_memory_model(low: CSRMatrix, g: DAG, *, line_elems: int = 8) -> MemoryModel:
    """SpTRSV: stream row ``i`` of ``L`` (+1 line for ``x[i]``); each edge
    ``u -> v`` moves the single line holding ``x[u]``."""
    per_row_lines, _ = lines_of_rows(low, line_elems=line_elems)
    stream = per_row_lines.astype(np.float64) + 1.0  # own row + write of x[i]
    edges = np.ones(g.n_edges, dtype=np.float64)
    return MemoryModel(stream_lines=stream, edge_lines=edges)


def factor_memory_model(rows: CSRMatrix, g: DAG, *, line_elems: int = 8) -> MemoryModel:
    """SpIC0/SpILU0: stream row ``i`` of the factor storage; each edge
    ``u -> v`` re-reads factored row ``u`` (its full line count).

    ``rows`` is the storage whose row sizes matter: the lower triangle for
    SpIC0, the full pattern for SpILU0.
    """
    per_row_lines, _ = lines_of_rows(rows, line_elems=line_elems)
    stream = per_row_lines.astype(np.float64)
    src, _ = g.edge_list()
    edges = per_row_lines[src].astype(np.float64)
    return MemoryModel(stream_lines=stream, edge_lines=edges)
