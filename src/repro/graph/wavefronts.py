"""Wavefront (level-set) computation.

A *wavefront* is the set of vertices whose longest incoming path has the same
length; wavefront ``k`` can execute once wavefronts ``0..k-1`` are done.
Wavefront parallelism (the paper's first baseline) executes the wavefronts in
order with a global barrier between them; HDagg's step 2 coarsens them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csr import INDEX_DTYPE
from .dag import DAG, gather_slices
from .topological import CycleError

__all__ = ["Wavefronts", "compute_wavefronts", "level_of_vertices"]


@dataclass(frozen=True)
class Wavefronts:
    """Level decomposition of a DAG.

    Attributes
    ----------
    level:
        Per-vertex level (length ``n``), 0-based.
    order:
        Vertex ids sorted by ``(level, id)``; the slice
        ``order[ptr[k]:ptr[k+1]]`` is wavefront ``k``.
    ptr:
        Wavefront pointer array of length ``n_levels + 1``.
    """

    level: np.ndarray
    order: np.ndarray
    ptr: np.ndarray

    @property
    def n_levels(self) -> int:
        """Number of wavefronts (the DAG's critical-path length)."""
        return self.ptr.shape[0] - 1

    def wavefront(self, k: int) -> np.ndarray:
        """Vertex ids of wavefront ``k`` in ascending id order."""
        return self.order[self.ptr[k] : self.ptr[k + 1]]

    def sizes(self) -> np.ndarray:
        """Number of vertices per wavefront."""
        return np.diff(self.ptr)

    def vertices_in_range(self, lo: int, hi: int) -> np.ndarray:
        """Vertices of wavefronts ``lo .. hi-1`` (``W[lo:hi]`` in Algorithm 1)."""
        return self.order[self.ptr[lo] : self.ptr[hi]]


def level_of_vertices(g: DAG) -> np.ndarray:
    """Longest-path level of every vertex (vectorized Kahn sweep).

    Per-level work is proportional to the frontier's out-edges, not to
    ``|V|``: in-degrees are decremented only at touched vertices, so deep
    narrow DAGs (long chains) cost O(|V| + |E| log |E|) total instead of
    O(|V| * levels).
    """
    indeg = g.in_degree().copy()
    level = np.zeros(g.n, dtype=INDEX_DTYPE)
    frontier = np.flatnonzero(indeg == 0).astype(INDEX_DTYPE)
    if g.n and frontier.size == 0:
        raise CycleError("graph has no source vertex")
    current = 0
    seen = 0
    while frontier.size:
        level[frontier] = current
        seen += frontier.size
        touched = gather_slices(g.indptr, g.indices, frontier)
        if touched.size:
            np.subtract.at(indeg, touched, 1)
            frontier = np.unique(touched[indeg[touched] == 0]).astype(
                INDEX_DTYPE, copy=False
            )
        else:
            frontier = np.empty(0, dtype=INDEX_DTYPE)
        current += 1
    if seen != g.n:
        raise CycleError("graph has a cycle")
    return level


def compute_wavefronts(g: DAG) -> Wavefronts:
    """Compute the full :class:`Wavefronts` decomposition of ``g``."""
    level = level_of_vertices(g)
    if g.n == 0:
        return Wavefronts(
            level=level,
            order=np.empty(0, dtype=INDEX_DTYPE),
            ptr=np.zeros(1, dtype=INDEX_DTYPE),
        )
    order = np.lexsort((np.arange(g.n, dtype=INDEX_DTYPE), level)).astype(INDEX_DTYPE)
    n_levels = int(level.max()) + 1
    ptr = np.zeros(n_levels + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.bincount(level, minlength=n_levels), out=ptr[1:])
    return Wavefronts(level=level, order=order, ptr=ptr)
