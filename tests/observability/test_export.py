"""Unit tests for the exporters: JSONL span logs and Chrome trace_event."""

import json

import pytest

from repro.observability.export import (
    SPAN_PID,
    TIMELINE_PID,
    chrome_trace,
    spans_to_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.observability.spans import Span
from repro.observability.timeline import TimelineRecorder


def _spans():
    return [
        Span(name="inspect/hdagg", t0=1.0, t1=3.0, tid=11, attrs={"n": 4}),
        Span(name="inspect/lbp", t0=1.5, t1=2.5, tid=11, parent=0, depth=1),
        Span(name="execute/partition[0,1]", t0=3.0, t1=4.0, tid=22),
    ]


def _timeline():
    rec = TimelineRecorder()
    rec.open(2)
    rec.wall_t0, rec.wall_t1 = 0.0, 4.0
    rec.record(0, "busy", 0.0, 3.0, vertex=1, level=0)
    rec.record(1, "busy", 0.0, 1.0, vertex=2, level=0)
    rec.record(1, "p2p_wait", 1.0, 2.0, vertex=3, dependence=1)
    return rec.finalize()


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def test_spans_to_jsonl_one_object_per_line():
    text = spans_to_jsonl(_spans())
    lines = text.splitlines()
    assert len(lines) == 3
    objs = [json.loads(line) for line in lines]
    assert objs[0]["name"] == "inspect/hdagg"
    assert objs[0]["attrs"] == {"n": 4}
    assert objs[1]["parent"] == 0 and objs[1]["depth"] == 1
    assert spans_to_jsonl([]) == ""


def test_write_spans_jsonl_roundtrip(tmp_path):
    path = tmp_path / "spans.jsonl"
    write_spans_jsonl(_spans(), path)
    objs = [json.loads(line) for line in path.read_text().splitlines()]
    assert [o["name"] for o in objs] == [s.name for s in _spans()]


# ----------------------------------------------------------------------
# trace_event
# ----------------------------------------------------------------------
def test_chrome_trace_spans_become_complete_events():
    doc = chrome_trace(_spans(), None, time_unit="s", label="t")
    events = doc["traceEvents"]
    x = [e for e in events if e["ph"] == "X"]
    assert len(x) == 3
    # timestamps rebased to the earliest span and scaled to microseconds
    first = next(e for e in x if e["name"] == "inspect/hdagg")
    assert first["ts"] == 0.0
    assert first["dur"] == pytest.approx(2.0 * 1e6)
    assert first["pid"] == SPAN_PID
    assert first["args"] == {"n": 4}
    # the two distinct tids map to two distinct rows
    assert len({e["tid"] for e in x}) == 2


def test_chrome_trace_metadata_names_processes_and_threads():
    doc = chrome_trace(_spans(), _timeline(), time_unit="s", label="mesh")
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    names = {(e["pid"], e.get("tid")): e["args"]["name"] for e in meta
             if e["name"] == "process_name" or e["name"] == "thread_name"}
    assert names[(SPAN_PID, None)] == "mesh: spans"
    assert "per-core timeline" in names[(TIMELINE_PID, None)]
    assert names[(TIMELINE_PID, 0)] == "core 0"
    assert names[(TIMELINE_PID, 1)] == "core 1"


def test_chrome_trace_timeline_rows_one_per_core_with_colors():
    tl = _timeline()
    doc = chrome_trace(None, tl, time_unit="cycles", label="t")
    x = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert all(e["pid"] == TIMELINE_PID for e in x)
    # every segment (including derived idle) exported, cycles scale 1:1
    assert len(x) == sum(len(segs) for segs in tl.cores.values())
    busy0 = next(e for e in x if e["tid"] == 0 and e["name"] == "busy")
    assert busy0["ts"] == 0.0 and busy0["dur"] == 3.0
    assert busy0["cname"] == "thread_state_running"
    assert busy0["args"] == {"vertex": 1, "level": 0}
    wait = next(e for e in x if e["name"] == "p2p_wait")
    assert wait["cname"] == "thread_state_iowait"
    assert wait["args"] == {"vertex": 3, "dependence": 1}
    idle = next(e for e in x if e["name"] == "idle")
    assert idle["cname"] == "thread_state_sleeping"
    assert "args" not in idle


def test_chrome_trace_rejects_unknown_time_unit():
    with pytest.raises(ValueError):
        chrome_trace(_spans(), None, time_unit="ms")


def test_write_chrome_trace_is_loadable_json(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(path, _spans(), _timeline(), time_unit="s", label="t")
    doc = json.loads(path.read_text())
    assert "traceEvents" in doc
    assert doc["displayTimeUnit"] == "ms"
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


# ----------------------------------------------------------------------
# cross-thread flow events
# ----------------------------------------------------------------------
def test_chrome_trace_draws_handoff_arrows_across_threads():
    spans = [
        Span(name="service.request", t0=0.0, t1=1.0, tid=1,
             span_id=1, parent_span_id=-1),
        Span(name="service.broker", t0=0.1, t1=0.9, tid=2,
             span_id=2, parent_span_id=1),
        Span(name="service.memory", t0=0.2, t1=0.8, tid=2,
             span_id=3, parent_span_id=2),
    ]
    events = chrome_trace(spans)["traceEvents"]
    flows = [e for e in events if e.get("cat") == "handoff"]
    # one s/f pair for the single cross-tid parent link (1 -> 2);
    # the same-thread 2 -> 3 link draws no arrow
    assert [e["ph"] for e in flows] == ["s", "f"]
    assert {e["id"] for e in flows} == {2}
    start, finish = flows
    assert start["ts"] <= finish["ts"]
    assert start["tid"] != finish["tid"]


def test_chrome_trace_without_ids_draws_no_flows():
    events = chrome_trace(_spans())["traceEvents"]
    assert [e for e in events if e.get("cat") == "handoff"] == []


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def test_prometheus_text_renders_each_instrument_kind():
    from repro.observability.export import prometheus_text

    metrics = {
        "service.requests": {"type": "counter", "value": 5.0},
        "store.quarantine_count": {"type": "gauge", "value": 2.0,
                                   "min": 0.0, "max": 2.0},
        "service.queue_wait_seconds": {
            "type": "histogram", "count": 3, "sum": 0.6,
            "min": 0.1, "max": 0.3, "mean": 0.2,
            "buckets": [0.15, 0.25], "bucket_counts": [1, 1, 1],
        },
    }
    text = prometheus_text(metrics)
    assert "# TYPE repro_service_requests_total counter" in text
    assert "repro_service_requests_total 5" in text
    assert "repro_store_quarantine_count 2" in text
    assert 'repro_service_queue_wait_seconds_bucket{le="0.15"} 1' in text
    assert 'repro_service_queue_wait_seconds_bucket{le="0.25"} 2' in text
    assert 'repro_service_queue_wait_seconds_bucket{le="+Inf"} 3' in text
    assert "repro_service_queue_wait_seconds_sum 0.6" in text
    assert "repro_service_queue_wait_seconds_count 3" in text


def test_prometheus_text_sanitizes_names_and_unset_gauges():
    from repro.observability.export import prometheus_text

    text = prometheus_text({
        "service.latency.tier.memory": {"type": "counter", "value": 1},
        "empty.gauge": {"type": "gauge", "value": None, "min": None, "max": None},
    })
    assert "repro_service_latency_tier_memory_total 1" in text
    assert "repro_empty_gauge NaN" in text


def test_write_prometheus_is_parseable_text(tmp_path):
    from repro.observability.export import write_prometheus

    path = tmp_path / "metrics.prom"
    write_prometheus(path, {"a.b": {"type": "counter", "value": 0}})
    assert path.read_text() == "# TYPE repro_a_b_total counter\nrepro_a_b_total 0\n"


def test_prometheus_text_of_empty_registry_is_empty():
    from repro.observability.export import prometheus_text

    assert prometheus_text({}) == ""
