"""Ambient observability state: one process-global enable switch.

Inspectors are invoked through the fixed registry signature
``SCHEDULERS[name](g, cost, p, **options)`` — there is no clean place to
thread a tracer argument through, so instrumentation reads an *ambient*
state instead, exactly like :mod:`repro.resilience.faults` arms its plan.

The contract instrumented code follows:

* hot paths (per vertex, per merge candidate) guard on ``STATE.enabled`` —
  a single attribute read on a module-global slot object — or take an
  explicit ``timeline=``/``trace=`` argument the caller controls;
* stage-granularity paths may call :func:`current_tracer`, which returns
  :data:`~repro.observability.spans.NULL_TRACER` when disabled (its
  ``span()`` is a shared no-op);
* metric writes are always guarded: ``if STATE.enabled:
  STATE.registry.counter(...).inc()``.

``observed()`` is the canonical entry point: it enables tracing for a
block and restores the previous state (including the fault-observer hook
it installs into :mod:`repro.resilience.faults`) on exit.  Disabled is the
default and the dormant path changes nothing — RunRecords and CLI output
stay byte-identical, which ``benchmarks/smoke_observability.py`` gates.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple, Union

from ..resilience import faults as _faults
from .metrics import MetricsRegistry
from .spans import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "STATE",
    "ObservabilityState",
    "enable",
    "disable",
    "is_enabled",
    "current_tracer",
    "current_registry",
    "observed",
]


class ObservabilityState:
    """The ambient switch plus the active tracer and registry."""

    __slots__ = ("enabled", "tracer", "registry")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.tracer: Union[Tracer, NullTracer] = NULL_TRACER
        self.registry: Optional[MetricsRegistry] = None


#: The process-global state instrumented code reads.
STATE = ObservabilityState()


def is_enabled() -> bool:
    return STATE.enabled


def current_tracer() -> Union[Tracer, NullTracer]:
    """The active tracer, or the shared no-op tracer when disabled."""
    return STATE.tracer if STATE.enabled else NULL_TRACER


def current_registry() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when disabled."""
    return STATE.registry if STATE.enabled else None


def _fault_observer(site: str, action: str, label: Optional[str]) -> None:
    """Counts every fired fault into the active registry."""
    if STATE.enabled and STATE.registry is not None:
        STATE.registry.counter("resilience.faults_fired").inc()
        STATE.registry.counter(f"resilience.faults_fired.{site}").inc()


def enable(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Tuple[Tracer, MetricsRegistry]:
    """Turn the ambient state on; returns the (tracer, registry) in effect.

    Re-enabling while already enabled swaps in the new objects (callers
    that need strict scoping should use :func:`observed`).
    """
    STATE.tracer = tracer if tracer is not None else Tracer()
    STATE.registry = registry if registry is not None else MetricsRegistry()
    STATE.enabled = True
    _faults.set_fault_observer(_fault_observer)
    return STATE.tracer, STATE.registry


def disable() -> None:
    """Turn the ambient state off and drop the tracer/registry references."""
    STATE.enabled = False
    STATE.tracer = NULL_TRACER
    STATE.registry = None
    _faults.set_fault_observer(None)


@contextmanager
def observed(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Enable observability for one block, restoring the prior state after.

    >>> from repro.observability import observed
    >>> with observed() as (tracer, registry):
    ...     pass  # run instrumented work; inspect tracer.spans after
    """
    prev = (STATE.enabled, STATE.tracer, STATE.registry)
    pair = enable(tracer, registry)
    try:
        yield pair
    finally:
        STATE.enabled, STATE.tracer, STATE.registry = prev
        if not STATE.enabled:
            _faults.set_fault_observer(None)
