"""Triangular extraction and structural helpers for factorisation kernels.

The three kernels of the paper operate on triangular structure: SpTRSV solves
``Lx = b`` for a lower-triangular ``L``; SpIC0/SpILU0 compute factors whose
sparsity equals the lower/upper triangle of the input.  These helpers extract
the triangles from a general CSR matrix while keeping the canonical invariants
of :class:`~repro.sparse.csr.CSRMatrix`.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix, INDEX_DTYPE

__all__ = [
    "lower_triangle",
    "upper_triangle",
    "strict_lower_triangle",
    "strict_upper_triangle",
    "is_lower_triangular",
    "is_upper_triangular",
    "unit_diagonal_lower",
]


def _triangle(a: CSRMatrix, keep) -> CSRMatrix:
    """Filter entries with a vectorized row/col predicate ``keep(rows, cols)``."""
    row_of = np.repeat(np.arange(a.n_rows, dtype=INDEX_DTYPE), np.diff(a.indptr))
    mask = keep(row_of, a.indices)
    indices = a.indices[mask]
    data = a.data[mask]
    counts = np.bincount(row_of[mask], minlength=a.n_rows)
    indptr = np.zeros(a.n_rows + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(a.n_rows, a.n_cols, indptr, indices, data, check=False)


def lower_triangle(a: CSRMatrix) -> CSRMatrix:
    """Entries with ``col <= row`` (inclusive of the diagonal)."""
    return _triangle(a, lambda r, c: c <= r)


def upper_triangle(a: CSRMatrix) -> CSRMatrix:
    """Entries with ``col >= row`` (inclusive of the diagonal)."""
    return _triangle(a, lambda r, c: c >= r)


def strict_lower_triangle(a: CSRMatrix) -> CSRMatrix:
    """Entries with ``col < row``."""
    return _triangle(a, lambda r, c: c < r)


def strict_upper_triangle(a: CSRMatrix) -> CSRMatrix:
    """Entries with ``col > row``."""
    return _triangle(a, lambda r, c: c > r)


def is_lower_triangular(a: CSRMatrix) -> bool:
    """True when no entry lies strictly above the diagonal."""
    row_of = np.repeat(np.arange(a.n_rows, dtype=INDEX_DTYPE), np.diff(a.indptr))
    return bool(np.all(a.indices <= row_of))


def is_upper_triangular(a: CSRMatrix) -> bool:
    """True when no entry lies strictly below the diagonal."""
    row_of = np.repeat(np.arange(a.n_rows, dtype=INDEX_DTYPE), np.diff(a.indptr))
    return bool(np.all(a.indices >= row_of))


def unit_diagonal_lower(a: CSRMatrix) -> CSRMatrix:
    """Lower triangle of ``a`` with the diagonal forced to 1.0.

    The structure must already contain every diagonal entry (factorisation
    kernels require a full diagonal); missing diagonals raise ``ValueError``.
    """
    low = lower_triangle(a)
    if not low.has_full_diagonal():
        raise ValueError("matrix is missing diagonal entries")
    data = low.data.copy()
    # the diagonal is the last stored entry of every lower-triangular row
    data[low.indptr[1:] - 1] = 1.0
    return low.with_data(data)
