"""Wavefront parallelism baseline (level-set scheduling with global barriers).

The classic inspector [2], [3]: traverse the DAG in topological order to
build the list of wavefronts; each wavefront's iterations run in parallel
and a global barrier follows every wavefront.  Within a wavefront, rows are
split into at most ``p`` contiguous cost-balanced chunks (the standard
``omp parallel for`` with static cost-aware chunking).

Weaknesses the paper calls out — a barrier per level (count grows with the
critical path), no reuse of dependent iterations on one core — fall out of
the structure and are measured by the metrics layer.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import Schedule, WidthPartition
from ..graph.dag import DAG
from ..graph.wavefronts import compute_wavefronts
from .base import chunk_by_cost, register_scheduler

__all__ = ["wavefront_schedule"]


@register_scheduler("wavefront")
def wavefront_schedule(g: DAG, cost: np.ndarray, p: int) -> Schedule:
    """One coarsened wavefront per level, cost-balanced chunks, barrier sync."""
    cost = np.asarray(cost, dtype=np.float64)
    waves = compute_wavefronts(g)
    levels = []
    for k in range(waves.n_levels):
        verts = waves.wavefront(k)
        chunks = chunk_by_cost(verts, cost, p)
        levels.append([WidthPartition(core=i, vertices=ch) for i, ch in enumerate(chunks)])
    return Schedule(
        n=g.n,
        levels=levels,
        sync="barrier",
        algorithm="wavefront",
        n_cores=p,
        meta={"n_wavefronts": waves.n_levels},
    )
