"""Shared scaffolding for the baseline inspectors.

Every scheduler in this package has the signature
``schedule(g, cost, p, **options) -> Schedule`` so the harness can treat the
paper's five comparison points (Wavefront, SpMP, LBC, DAGP, MKL) and HDagg
uniformly.  The registry at the bottom maps names to callables.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List

import numpy as np

from ..core.schedule import WidthPartition
from ..observability.state import STATE as _OBS_STATE
from ..sparse.csr import INDEX_DTYPE

__all__ = ["chunk_by_cost", "chunk_by_count", "SCHEDULERS", "register_scheduler", "get_scheduler"]


def chunk_by_cost(vertices: np.ndarray, cost: np.ndarray, p: int) -> List[np.ndarray]:
    """Split ``vertices`` (kept in order) into at most ``p`` contiguous chunks
    of approximately equal total cost.

    This is the static "balanced chunks" strategy of cost-aware level-set
    executors: chunk boundaries fall where the cost prefix crosses multiples
    of ``total / p``.
    """
    if vertices.shape[0] == 0:
        return []
    c = cost[vertices]
    total = float(c.sum())
    if total <= 0.0 or p == 1:
        return [vertices]
    prefix = np.cumsum(c)
    bounds = [0]
    for k in range(1, p):
        # greedy fill: a chunk ends with the vertex whose prefix reaches the
        # k-th cost quantile (so a single huge vertex gets its own chunk)
        pos = int(np.searchsorted(prefix, total * k / p, side="left")) + 1
        if pos > bounds[-1] and pos < vertices.shape[0]:
            bounds.append(pos)
    bounds.append(vertices.shape[0])
    return [vertices[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]


def chunk_by_count(vertices: np.ndarray, p: int) -> List[np.ndarray]:
    """Split ``vertices`` into at most ``p`` contiguous chunks of equal count
    (cost-oblivious static scheduling, the vendor-library default)."""
    n = vertices.shape[0]
    if n == 0:
        return []
    p = min(p, n)
    bounds = np.linspace(0, n, p + 1).astype(INDEX_DTYPE)
    return [vertices[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]


def partitions_from_chunks(chunks: List[np.ndarray]) -> List[WidthPartition]:
    """Wrap chunk arrays as width-partitions on cores ``0..len-1``."""
    return [WidthPartition(core=i, vertices=ch) for i, ch in enumerate(chunks)]


#: name -> schedule builder ``(g, cost, p, **opts) -> Schedule``
SCHEDULERS: Dict[str, Callable] = {}


def register_scheduler(name: str) -> Callable:
    """Decorator adding a builder to :data:`SCHEDULERS`.

    The registry entry is wrapped with an ``inspect/<name>`` span and a
    per-inspector run counter when the ambient observability state is on
    (``hdagg-bench trace``); disabled, the wrapper costs one attribute
    read.  The decorated function itself is returned unwrapped, so direct
    module-level calls (and the inspectors' own internal reuse of each
    other) stay uninstrumented — only registry dispatch is observed.
    """

    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def dispatch(*args, **options):
            if not _OBS_STATE.enabled:
                return fn(*args, **options)
            attrs = {}
            if args:
                attrs["n"] = int(getattr(args[0], "n", -1))
            p = options.get("p", args[2] if len(args) > 2 else None)
            if p is not None:
                attrs["p"] = int(p)
            with _OBS_STATE.tracer.span(f"inspect/{name}", **attrs):
                schedule = fn(*args, **options)
            if _OBS_STATE.registry is not None:
                _OBS_STATE.registry.counter(f"inspector.runs.{name}").inc()
            return schedule

        SCHEDULERS[name] = dispatch
        return fn

    return deco


def get_scheduler(name: str) -> Callable:
    """Look up a registered scheduler; raises ``KeyError`` with choices listed."""
    try:
        return SCHEDULERS[name]
    except KeyError:
        raise KeyError(f"unknown scheduler {name!r}; available: {sorted(SCHEDULERS)}") from None
