"""Property-based tests: every scheduler on random id-topological DAGs.

The kernel builders only produce id-topological DAGs, but within that class
hypothesis explores shapes no generator family covers — dense fans, long
tendrils, isolated vertices, duplicate-edge patterns — hunting for
violations of the schedule contract.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import accumulated_pgp, hdagg
from repro.graph import DAG, verify_schedule_order
from repro.schedulers import SCHEDULERS


@st.composite
def random_dags(draw, max_n=24, max_edges=80):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_edges))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src < dst
    return DAG.from_edges(n, src[keep], dst[keep])


@st.composite
def random_costs(draw, n):
    kind = draw(st.sampled_from(["unit", "uniform", "skewed"]))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    if kind == "unit":
        return np.ones(n)
    if kind == "uniform":
        return rng.uniform(0.5, 2.0, size=n)
    cost = rng.uniform(0.5, 1.0, size=n)
    cost[rng.integers(0, n)] = 100.0
    return cost


@given(random_dags(), st.integers(1, 6), st.data())
@settings(max_examples=60, deadline=None)
def test_hdagg_contract(g, p, data):
    cost = data.draw(random_costs(g.n))
    s = hdagg(g, cost, p)
    s.validate(g)
    assert verify_schedule_order(g, s.execution_order())
    assert 0.0 <= accumulated_pgp(s, cost) <= 1.0


@given(random_dags(), st.integers(1, 6), st.sampled_from(
    ["wavefront", "spmp", "lbc", "dagp", "mkl"]
))
@settings(max_examples=80, deadline=None)
def test_baseline_contract(g, p, algo):
    cost = np.ones(g.n)
    s = SCHEDULERS[algo](g, cost, p)
    s.validate(g)
    assert verify_schedule_order(g, s.execution_order())


@given(random_dags(max_n=16, max_edges=40), st.integers(2, 4))
@settings(max_examples=40, deadline=None)
def test_hdagg_epsilon_extremes(g, p):
    cost = np.ones(g.n)
    tight = hdagg(g, cost, p, epsilon=0.0)
    loose = hdagg(g, cost, p, epsilon=1.0)
    tight.validate(g)
    loose.validate(g)
    # epsilon = 1 merges every wavefront into one coarsened wavefront
    assert loose.n_levels <= 1 or g.n == 0


@given(random_dags(max_n=16, max_edges=40))
@settings(max_examples=40, deadline=None)
def test_simulation_invariants(g):
    """Simulated metrics stay in range on arbitrary schedules/DAGs."""
    from repro.kernels import MemoryModel
    from repro.runtime import LAPTOP4, simulate

    cost = np.ones(g.n)
    mem = MemoryModel(np.ones(g.n), np.ones(g.n_edges))
    for algo in ("hdagg", "spmp"):
        s = SCHEDULERS[algo](g, cost, LAPTOP4.n_cores)
        r = simulate(s, g, cost, mem, LAPTOP4)
        if g.n:
            assert r.makespan_cycles > 0
            assert r.total_accesses == mem.total_accesses
        assert 0.0 <= r.hit_rate <= 1.0
        assert 0.0 <= r.potential_gain < 1.0
        assert float(r.core_busy_cycles.max(initial=0.0)) <= r.makespan_cycles + 1e-9
