"""Stats core: bootstrap CIs, shift verdicts, change-point detection.

The calibration tests follow the issue's acceptance recipe: synthetic
timing streams with known injected shifts (0%, 3%, 10%) under realistic
heavy-tailed noise — the gate must flag the 10% shift, stay quiet at 0%,
and the change-point detector must localize the shift index.
"""

import numpy as np
import pytest

from repro.perflab.stats import (
    BootstrapCI,
    bootstrap_ci,
    detect_change_point,
    shift_verdict,
)


def heavy_tailed_stream(rng, n, base=0.010, shift=0.0):
    """Timing-like samples: a floor plus right-skewed (lognormal) noise with
    occasional large outliers — the shape of real wall-clock reps."""
    body = base * (1.0 + shift) + base * 0.02 * rng.lognormal(0.0, 1.0, size=n)
    spikes = rng.random(n) < 0.05
    body[spikes] += base * rng.random(spikes.sum()) * 2.0
    return list(body)


# ----------------------------------------------------------------------
class TestBootstrapCI:
    def test_interval_covers_the_median(self):
        rng = np.random.default_rng(0)
        ci = bootstrap_ci(heavy_tailed_stream(rng, 30))
        assert ci.lo <= ci.statistic <= ci.hi
        assert ci.halfwidth > 0
        assert 0 < ci.rel_halfwidth < 1

    def test_deterministic_under_seed(self):
        rng = np.random.default_rng(1)
        samples = heavy_tailed_stream(rng, 20)
        a = bootstrap_ci(samples, seed=7)
        b = bootstrap_ci(samples, seed=7)
        assert (a.lo, a.hi, a.statistic) == (b.lo, b.hi, b.statistic)

    def test_more_samples_tighten_the_interval(self):
        rng = np.random.default_rng(2)
        wide = bootstrap_ci(heavy_tailed_stream(rng, 8), seed=0)
        tight = bootstrap_ci(heavy_tailed_stream(rng, 200), seed=0)
        assert tight.rel_halfwidth < wide.rel_halfwidth

    def test_degenerate_inputs(self):
        one = bootstrap_ci([0.01])
        assert one.lo == one.hi == one.statistic == pytest.approx(0.01)
        const = bootstrap_ci([0.02] * 10)
        assert const.halfwidth == 0.0
        assert const.statistic == pytest.approx(0.02)

    def test_roundtrip(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0, 4.0, 5.0])
        again = BootstrapCI(**ci.as_dict())
        assert again.statistic == ci.statistic


# ----------------------------------------------------------------------
class TestShiftCalibration:
    """The issue's 0% / 3% / 10% calibration matrix."""

    def test_flags_10pct_shift(self):
        rng = np.random.default_rng(3)
        old = heavy_tailed_stream(rng, 25)
        new = heavy_tailed_stream(rng, 25, shift=0.10)
        v = shift_verdict(old, new, min_effect=0.05)
        assert v.verdict == "regressed"
        assert v.confirmed
        assert v.rel_shift > 0.05
        assert v.shift_lo > 0  # whole interval above zero

    def test_quiet_at_0pct(self):
        # many independent same-distribution pairs: none may confirm
        for seed in range(10):
            rng = np.random.default_rng(100 + seed)
            old = heavy_tailed_stream(rng, 25)
            new = heavy_tailed_stream(rng, 25)
            v = shift_verdict(old, new, min_effect=0.05)
            assert not v.confirmed, f"seed {seed}: false positive {v}"

    def test_3pct_shift_stays_below_the_5pct_floor(self):
        # a real-but-small move must not clear a 5% noise floor
        rng = np.random.default_rng(4)
        old = heavy_tailed_stream(rng, 25)
        new = heavy_tailed_stream(rng, 25, shift=0.03)
        v = shift_verdict(old, new, min_effect=0.05)
        assert not v.confirmed

    def test_improvement_direction(self):
        rng = np.random.default_rng(5)
        old = heavy_tailed_stream(rng, 25, shift=0.15)
        new = heavy_tailed_stream(rng, 25)
        v = shift_verdict(old, new, min_effect=0.05)
        assert v.verdict == "improved"
        assert v.confirmed

    def test_indeterminate_lanes(self):
        assert shift_verdict([0.01], [0.01, 0.02]).verdict == "indeterminate"
        assert shift_verdict([], []).verdict == "indeterminate"
        assert shift_verdict([0.0, 0.0, 0.0], [0.01, 0.01, 0.01]).verdict == "indeterminate"


# ----------------------------------------------------------------------
class TestChangePoint:
    def test_localizes_injected_shift(self):
        rng = np.random.default_rng(6)
        before = heavy_tailed_stream(rng, 12)
        after = heavy_tailed_stream(rng, 12, shift=0.10)
        cp = detect_change_point(before + after, seed=0)
        assert cp is not None
        assert abs(cp.index - 12) <= 2
        assert cp.rel_shift > 0.0
        assert cp.p_value <= 0.05

    def test_quiet_on_stationary_series(self):
        for seed in range(5):
            rng = np.random.default_rng(200 + seed)
            cp = detect_change_point(heavy_tailed_stream(rng, 24), seed=0)
            # permutation test at alpha=0.05 may rarely fire; demand the
            # detected shift (if any) be small rather than forbidding it
            if cp is not None:
                assert abs(cp.rel_shift) < 0.05, f"seed {seed}: {cp}"

    def test_short_series_returns_none(self):
        assert detect_change_point([0.01] * 4) is None

    def test_deterministic(self):
        rng = np.random.default_rng(7)
        series = heavy_tailed_stream(rng, 10) + heavy_tailed_stream(rng, 10, shift=0.2)
        a = detect_change_point(series, seed=3)
        b = detect_change_point(series, seed=3)
        assert a is not None and b is not None
        assert (a.index, a.p_value) == (b.index, b.p_value)
