"""Traffic replay: determinism, report shape, perf-lab recording, CLI."""

import asyncio
import json

import numpy as np
import pytest

from repro.perflab.fingerprint import collect_fingerprint
from repro.perflab.history import HistoryStore, load_trajectory, write_trajectory
from repro.perflab.protocol import Observation, ObservationKey
from repro.service.cli import service_main
from repro.service.replay import (
    ReplayConfig,
    build_catalog,
    record_replay,
    run_replay,
    zipf_weights,
)

SMALL = dict(n_requests=40, n_structures=3, seed=0, p=4, concurrency=4)


@pytest.fixture(scope="module")
def report():
    return run_replay(ReplayConfig(**SMALL))


class TestTrafficModel:
    def test_zipf_weights_normalised_and_skewed(self):
        w = zipf_weights(6, 1.2)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) < 0), "popularity must fall with rank"
        flat = zipf_weights(6, 0.0)
        np.testing.assert_allclose(flat, np.full(6, 1 / 6))

    def test_catalog_is_seeded_and_distinct(self):
        a = build_catalog(4, "sptrsv", seed=0)
        b = build_catalog(4, "sptrsv", seed=0)
        assert [n for n, _, _ in a] == [n for n, _, _ in b]
        for (_, ga, _), (_, gb, _) in zip(a, b):
            np.testing.assert_array_equal(ga.indptr, gb.indptr)
        digests = {(g.n, g.n_edges, g.indices.tobytes()) for _, g, _ in a}
        assert len(digests) == 4, "structures must be distinct"

    def test_catalog_rejects_empty(self):
        with pytest.raises(ValueError):
            build_catalog(0, "sptrsv")


class TestReplay:
    def test_report_accounts_for_every_request(self, report):
        assert report.n_ok + report.n_rejected == SMALL["n_requests"]
        assert sum(report.sources.values()) == report.n_ok
        assert report.wall_seconds > 0

    def test_zipf_head_yields_hits(self, report):
        """With 40 requests over 3 structures, at most 3 fresh inspections
        happen; everything else must come from cache/coalescing."""
        assert report.sources.get("inspected", 0) <= SMALL["n_structures"]
        assert report.hit_rate > 0.5
        assert 0 < report.p50 <= report.p99

    def test_replay_traffic_is_deterministic(self, report):
        again = run_replay(ReplayConfig(**SMALL))
        # wall-clock numbers differ run to run; the traffic must not
        assert again.n_ok == report.n_ok
        assert again.sources.get("inspected", 0) == report.sources.get("inspected", 0)
        assert again.n_degraded == report.n_degraded

    def test_replay_with_store_and_pacing(self, tmp_path):
        cfg = ReplayConfig(
            n_requests=20, n_structures=2, seed=1, p=4,
            store_root=str(tmp_path / "store"), arrival_rate=2000.0,
        )
        first = run_replay(cfg)
        assert first.n_ok == 20
        # a second replay against the same store serves the catalog from
        # disk: zero fresh inspections
        second = run_replay(cfg)
        assert second.sources.get("inspected", 0) == 0
        assert second.hit_rate == 1.0

    def test_as_dict_is_json_clean(self, report):
        blob = json.dumps(report.as_dict())
        assert "p50_seconds" in blob and "hit_rate" in blob


class TestRecording:
    def test_observation_carries_the_roadmap_series(self, report):
        from repro.service.replay import replay_observation

        obs = replay_observation(report)
        assert obs.key.benchmark == "service_replay"
        assert len(obs.timings) == report.n_ok
        assert obs.stages["p50"] == [report.p50]
        assert obs.stages["p99"] == [report.p99]
        assert obs.stages["hit_rate"] == [report.hit_rate]

    def test_record_replay_appends_history_and_writes_trajectory(self, tmp_path, report):
        history = tmp_path / "svc.jsonl"
        trajectory = tmp_path / "traj.json"
        record_replay(report, str(history), str(trajectory))
        assert len(HistoryStore(str(history))) == 1
        doc = load_trajectory(str(trajectory))
        (series,) = doc["series"]
        assert series["key"]["benchmark"] == "service_replay"
        medians = series["latest"]["stage_medians"]
        for channel in ("p50", "p99", "hit_rate"):
            assert channel in medians
        assert medians["hit_rate"] == pytest.approx(report.hit_rate)

    def test_merge_preserves_foreign_series(self, tmp_path, report):
        """The replay must never clobber the inspector series already in
        BENCH_trajectory.json — merge, not rewrite."""
        trajectory = tmp_path / "traj.json"
        other = HistoryStore(str(tmp_path / "inspector.jsonl"))
        other.append(
            Observation(
                key=ObservationKey("inspector", "poisson2d", "sptrsv", "hdagg"),
                timings=[0.1, 0.11, 0.09],
                stages={},
                fingerprint=collect_fingerprint(benchmark="inspector"),
                warmup=1,
                target_rel_ci=0.05,
                confidence=0.95,
                seed=0,
                converged=True,
            )
        )
        write_trajectory(other, str(trajectory))
        record_replay(report, str(tmp_path / "svc.jsonl"), str(trajectory))
        doc = load_trajectory(str(trajectory))
        benchmarks = sorted(s["key"]["benchmark"] for s in doc["series"])
        assert benchmarks == ["inspector", "service_replay"]


class TestCli:
    def test_replay_command_reports_the_numbers(self, tmp_path, capsys):
        rc = service_main(
            [
                "replay", "--requests", "30", "--structures", "2", "--p", "4",
                "--history", str(tmp_path / "svc.jsonl"),
                "--trajectory", str(tmp_path / "traj.json"),
                "--json", str(tmp_path / "report.json"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "p50_ms" in out and "p99_ms" in out and "hit_rate" in out
        assert (tmp_path / "traj.json").exists()
        blob = json.loads((tmp_path / "report.json").read_text())
        assert blob["n_ok"] + blob["n_rejected"] == 30

    def test_audit_command(self, tmp_path, capsys, request_a):
        from repro.service import ScheduleBroker
        from repro.store import ScheduleStore

        root = tmp_path / "store"
        ScheduleBroker(ScheduleStore(root)).request(request_a)
        assert service_main(["audit", str(root), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "scanned" in out and "quarantined 0" in out

    def test_audit_strict_flags_quarantines(self, tmp_path, capsys, request_a):
        from repro.service import ScheduleBroker
        from repro.store import ScheduleStore

        root = tmp_path / "store"
        broker = ScheduleBroker(ScheduleStore(root))
        broker.request(request_a)
        record = next((root / "shards").rglob("*.sched"))
        record.write_bytes(record.read_bytes()[:-2])
        assert service_main(["audit", str(root), "--strict"]) == 1

    def test_suite_cli_dispatches_service(self, capsys):
        from repro.suite.cli import main

        with pytest.raises(SystemExit):
            main(["service"])  # argparse: missing subcommand


def test_frontdoor_loop_isolation(report):
    """run_replay owns its event loop; calling it from sync code with no
    running loop (the CLI path) must leave asyncio clean."""
    with pytest.raises(RuntimeError):
        asyncio.get_running_loop()
