"""Dataset characterisation report (the paper's matrix-list table).

Evaluation papers list their matrices with the structural quantities that
matter to the experiment; for this suite those are size, non-zeros, DAG
depth, average parallelism (Table III's axis), nnz per wavefront (the
locality-potential proxy), and the Table III bucket each matrix lands in.
"""

from __future__ import annotations

from typing import List, Sequence

from ..graph.build import dag_from_matrix_lower
from ..metrics.parallelism import dag_shape
from ..sparse.ordering import apply_ordering
from .matrices import SUITE, MatrixSpec
from .tables import HIGH_PARALLELISM_THRESHOLD, LARGE_NNZ_THRESHOLD

__all__ = ["dataset_rows", "dataset_report"]

_BUCKETS = ("large", "small/high-AP", "small/low-AP")


def _bucket(nnz: int, ap: float) -> str:
    if nnz > LARGE_NNZ_THRESHOLD:
        return _BUCKETS[0]
    if ap > HIGH_PARALLELISM_THRESHOLD:
        return _BUCKETS[1]
    return _BUCKETS[2]


def dataset_rows(
    specs: Sequence[MatrixSpec] | None = None, *, ordering: str = "nd"
) -> List[list]:
    """One row per matrix: name, family, n, nnz, waves, AP, nnz/wave, bucket.

    The DAG quantities are computed after the harness's pre-ordering so
    they describe what the schedulers actually see.
    """
    rows: List[list] = []
    for spec in specs if specs is not None else SUITE:
        a = spec.build()
        ordered, _ = apply_ordering(a, ordering)
        shape = dag_shape(dag_from_matrix_lower(ordered))
        ap = shape.average_parallelism
        rows.append(
            [
                spec.name,
                spec.family,
                a.n_rows,
                a.nnz,
                shape.n_wavefronts,
                ap,
                a.nnz / max(1, shape.n_wavefronts),
                _bucket(a.nnz, ap),
            ]
        )
    return rows


def dataset_report(specs: Sequence[MatrixSpec] | None = None, *, ordering: str = "nd") -> str:
    """Formatted dataset table."""
    from .reporting import format_table

    headers = ["matrix", "family", "n", "nnz", "waves", "avg par", "nnz/wave", "bucket"]
    return format_table(
        headers,
        dataset_rows(specs, ordering=ordering),
        title=f"Evaluation dataset ({ordering} ordering)",
        digits=1,
    )
