"""Tests for the fixed-window coarsening baseline."""

import numpy as np
import pytest

from repro.core import accumulated_pgp, hdagg
from repro.graph import compute_wavefronts, dag_from_matrix_lower, verify_schedule_order
from repro.kernels import KERNELS
from repro.schedulers import SCHEDULERS, coarsen_k_schedule


def test_valid_on_every_family(all_small_matrices):
    for name, a in all_small_matrices.items():
        g = dag_from_matrix_lower(a)
        s = coarsen_k_schedule(g, np.ones(g.n), 4, k=3)
        s.validate(g)
        assert verify_schedule_order(g, s.execution_order()), name


def test_window_one_equals_wavefront_levels(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = coarsen_k_schedule(g, np.ones(g.n), 4, k=1)
    assert s.n_levels == compute_wavefronts(g).n_levels


def test_window_reduces_levels(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    waves = compute_wavefronts(g).n_levels
    s = coarsen_k_schedule(g, np.ones(g.n), 4, k=4)
    assert s.n_levels == -(-waves // 4)


def test_huge_window_single_level(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = coarsen_k_schedule(g, np.ones(g.n), 4, k=10**6)
    assert s.n_levels == 1


def test_window_validated(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    with pytest.raises(ValueError):
        coarsen_k_schedule(g, np.ones(g.n), 4, k=0)


def test_registered():
    assert "coarsenk" in SCHEDULERS


def test_lbp_balances_better_than_fixed_window(mesh_nd):
    """The point of LBP (Section IV-C): balance-aware cuts beat a blind
    window on accumulated load balance for comparable coarsening."""
    kernel = KERNELS["spilu0"]
    g = kernel.dag(mesh_nd)
    cost = kernel.cost(mesh_nd)
    h = hdagg(g, cost, 4)
    naive = coarsen_k_schedule(g, cost, 4, k=max(1, round(
        compute_wavefronts(g).n_levels / max(1, h.n_levels))))
    assert accumulated_pgp(h, cost) <= accumulated_pgp(naive, cost) + 0.05
