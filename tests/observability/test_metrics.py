"""Unit tests for the metrics registry: counters, gauges, histograms."""

import json
import threading

import pytest

from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
def test_counter_increments_and_rejects_negative():
    c = Counter("x")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 3.5
    assert c.as_dict() == {"type": "counter", "value": 3.5}


def test_gauge_tracks_value_and_watermarks():
    g = Gauge("x")
    assert g.as_dict() == {"type": "gauge", "value": None, "min": None, "max": None}
    g.set(5)
    g.set(-2)
    g.set(3)
    assert g.value == 3.0
    assert g.min == -2.0 and g.max == 5.0


def test_histogram_summary_statistics():
    h = Histogram("x", buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count == 3
    assert h.sum == 55.5
    assert h.min == 0.5 and h.max == 50.0
    assert h.mean == pytest.approx(18.5)
    # one observation per bucket: <=1, <=10, +inf overflow
    assert h.bucket_counts == [1, 1, 1]


def test_histogram_bucket_edges_are_inclusive_upper_bounds():
    h = Histogram("x", buckets=(1.0, 10.0))
    h.observe(1.0)
    h.observe(10.0)
    assert h.bucket_counts == [1, 1, 0]


def test_histogram_sorts_buckets_and_rejects_empty():
    h = Histogram("x", buckets=(10.0, 1.0))
    assert h.buckets == (1.0, 10.0)
    with pytest.raises(ValueError):
        Histogram("y", buckets=())


def test_histogram_observe_many_matches_observe():
    a = Histogram("a", buckets=(1.0, 10.0))
    b = Histogram("b", buckets=(1.0, 10.0))
    values = [0.5, 1.0, 5.0, 50.0, 0.1]
    for v in values:
        a.observe(v)
    b.observe_many(values)
    b.observe_many([])  # no-op
    assert a.as_dict() == {**b.as_dict()}
    assert b.count == 5


def test_histogram_quantile_estimates():
    h = Histogram("x", buckets=(1.0, 2.0, 4.0, 8.0))
    h.observe_many([0.5, 1.5, 2.5, 3.5, 6.0])
    assert h.quantile(0.0) == pytest.approx(0.5, abs=0.6)
    assert h.quantile(1.0) == pytest.approx(6.0)
    # the median lands in the (2, 4] bucket
    assert 2.0 <= h.quantile(0.5) <= 4.0
    assert Histogram("empty").quantile(0.5) is None
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_default_buckets_shape():
    h = Histogram("x")
    assert h.buckets == tuple(sorted(DEFAULT_BUCKETS))
    assert len(h.bucket_counts) == len(DEFAULT_BUCKETS) + 1
    assert h.mean == 0.0  # no observations yet


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_create_on_first_use_returns_same_instrument():
    reg = MetricsRegistry()
    c1 = reg.counter("inspector.runs")
    c1.inc()
    c2 = reg.counter("inspector.runs")
    assert c1 is c2
    assert c2.value == 1.0


def test_registry_type_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("a.b")
    with pytest.raises(TypeError):
        reg.gauge("a.b")
    with pytest.raises(TypeError):
        reg.histogram("a.b")


def test_registry_names_sorted_and_membership():
    reg = MetricsRegistry()
    reg.gauge("z.last")
    reg.counter("a.first")
    assert reg.names() == ["a.first", "z.last"]
    assert "a.first" in reg and "missing" not in reg
    assert len(reg) == 2
    reg.clear()
    assert len(reg) == 0


def test_registry_as_dict_and_to_json():
    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    reg.gauge("g").set(1.5)
    reg.histogram("h", buckets=(1.0,)).observe(0.5)
    doc = json.loads(reg.to_json())
    assert doc["version"] == 1
    m = doc["metrics"]
    assert list(m) == ["c", "g", "h"]  # sorted by name
    assert m["c"] == {"type": "counter", "value": 2.0}
    assert m["g"]["type"] == "gauge" and m["g"]["value"] == 1.5
    assert m["h"]["type"] == "histogram" and m["h"]["count"] == 1


def test_registry_concurrent_increments_are_lossless():
    reg = MetricsRegistry()
    n, per = 8, 500

    def worker():
        for _ in range(per):
            reg.counter("hits").inc()

    threads = [threading.Thread(target=worker) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.counter("hits").value == n * per
