"""Complete sparse Cholesky factorisation on the symbolic fill pattern.

The tree-structured DAGs the paper contrasts HDagg against come from
*complete* factorisations: the filled pattern is chordal, its dependence
structure follows the elimination tree exactly, and LBC was designed for
precisely this case (Section I).  Adding the kernel lets the framework
cover both regimes — incomplete factorisations (non-tree DAGs, HDagg's
target) and complete ones (tree DAGs, LBC's home turf) — and lets tests
pit the schedulers against each other on LBC-favourable inputs.

Construction: embed ``A`` into its symbolic factor pattern
(:func:`repro.sparse.symbolic.symbolic_cholesky`) with explicit zeros at
fill positions; up-looking row factorisation on that pattern *is* complete
Cholesky, so the numeric core is shared with SpIC0 and the defect
``max |(L L^T - A)[i,j]|`` is zero over the **dense** matrix, not just a
sparsity pattern.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.build import dag_from_lower_triangular
from ..graph.dag import DAG
from ..sparse.csr import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE
from ..sparse.symbolic import symbolic_cholesky
from ..sparse.triangular import lower_triangle
from ._trace import trace_self_plus_lower_neighbors
from .base import KernelError, SparseKernel
from .memory import MemoryModel, factor_memory_model
from .spic0 import _factor_row

__all__ = ["SpChol", "embed_in_fill_pattern", "cholesky_reference", "cholesky_in_order", "cholesky_defect"]


def embed_in_fill_pattern(a: CSRMatrix) -> CSRMatrix:
    """Lower triangle of ``a`` embedded in its symbolic factor pattern.

    Fill positions carry explicit zeros; original entries keep their
    values.  The result is the storage the numeric factorisation updates
    in place.
    """
    if not a.is_square:
        raise KernelError("cholesky: matrix must be square")
    pattern = symbolic_cholesky(a)
    low = lower_triangle(a)
    n = a.n_rows
    data = np.zeros(pattern.nnz, dtype=VALUE_DTYPE)
    for i in range(n):
        plo, phi = pattern.indptr[i], pattern.indptr[i + 1]
        alo, ahi = low.indptr[i], low.indptr[i + 1]
        pos = np.searchsorted(pattern.indices[plo:phi], low.indices[alo:ahi])
        data[plo + pos] = low.data[alo:ahi]
    return pattern.with_data(data)


def cholesky_reference(a: CSRMatrix) -> CSRMatrix:
    """Sequential complete Cholesky; returns ``L`` on the filled pattern."""
    emb = embed_in_fill_pattern(a)
    l_data = np.zeros(emb.nnz, dtype=VALUE_DTYPE)
    for i in range(emb.n_rows):
        _factor_row(i, emb.indptr, emb.indices, emb.data, l_data)
    return emb.with_data(l_data)


def cholesky_in_order(a: CSRMatrix, order: np.ndarray) -> CSRMatrix:
    """Complete Cholesky with rows factored in ``order``; asserts dependences."""
    emb = embed_in_fill_pattern(a)
    n = emb.n_rows
    order = np.asarray(order, dtype=INDEX_DTYPE)
    if order.shape[0] != n or np.any(np.sort(order) != np.arange(n)):
        raise KernelError("cholesky: order must be a permutation of range(n)")
    done = np.zeros(n, dtype=bool)
    l_data = np.zeros(emb.nnz, dtype=VALUE_DTYPE)
    for i in order:
        lo, hi = emb.indptr[i], emb.indptr[i + 1]
        deps = emb.indices[lo : hi - 1]
        if not np.all(done[deps]):
            missing = deps[~done[deps]][:5].tolist()
            raise KernelError(f"cholesky: row {int(i)} factored before rows {missing}")
        _factor_row(int(i), emb.indptr, emb.indices, emb.data, l_data)
        done[i] = True
    return emb.with_data(l_data)


def cholesky_defect(a: CSRMatrix, factor: CSRMatrix) -> float:
    """Max relative defect of ``L L^T - A`` over the *dense* matrix."""
    ls = factor.to_scipy()
    diff = np.abs((ls @ ls.T).toarray() - a.to_dense())
    scale = float(np.abs(a.data).max()) or 1.0
    return float(diff.max()) / scale


class SpChol(SparseKernel):
    """Complete sparse Cholesky as a schedulable kernel (tree-DAG regime)."""

    name = "spchol"

    def _pattern(self, a: CSRMatrix) -> CSRMatrix:
        return symbolic_cholesky(a)

    def dag(self, a: CSRMatrix) -> DAG:
        """Dependence DAG of the *filled* pattern — etree-structured."""
        return dag_from_lower_triangular(self._pattern(a))

    def cost(self, a: CSRMatrix) -> np.ndarray:
        """Non-zeros touched per row of the filled factor."""
        pattern = self._pattern(a)
        from .cost import spic0_cost

        return spic0_cost(pattern)

    def memory_trace(self, a: CSRMatrix, *, line_elems: int = 8) -> Tuple[np.ndarray, np.ndarray]:
        return trace_self_plus_lower_neighbors(self._pattern(a), line_elems=line_elems)

    def memory_model(self, a: CSRMatrix, g: DAG | None = None, *, line_elems: int = 8) -> MemoryModel:
        pattern = self._pattern(a)
        if g is None:
            g = dag_from_lower_triangular(pattern)
        return factor_memory_model(pattern, g, line_elems=line_elems)

    def reference(self, a: CSRMatrix, b: np.ndarray | None = None) -> CSRMatrix:
        return cholesky_reference(a)

    def execute_in_order(
        self, a: CSRMatrix, order: np.ndarray, b: np.ndarray | None = None
    ) -> CSRMatrix:
        return cholesky_in_order(a, order)

    def verify(self, a: CSRMatrix, result, b: np.ndarray | None = None) -> float:
        return cholesky_defect(a, result)
