"""Incomplete Cholesky factorisation with zero fill-in (SpIC0).

Computes a lower-triangular ``L`` with the sparsity of ``tril(A)`` such that
``(L @ L.T)[i, j] == A[i, j]`` on every stored position of the lower pattern
(the defining IC(0) property).  Row ``i`` of ``L`` needs the finished rows
``j`` for every stored ``A[i, j]`` with ``j < i`` — the same dependence DAG
as SpTRSV on the lower triangle, which is why the paper drives all three
kernels through one inspector.

The paper selects SPD inputs precisely so this factorisation exists; a
non-positive pivot raises :class:`~repro.kernels.base.KernelError` rather
than silently producing NaNs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.build import dag_from_matrix_lower
from ..graph.dag import DAG
from ..sparse.csr import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE
from ..sparse.triangular import lower_triangle
from ._trace import trace_self_plus_lower_neighbors
from .base import KernelError, SparseKernel
from .cost import spic0_cost

__all__ = ["SpIC0", "spic0_reference", "spic0_in_order", "ic0_defect"]


def _sparse_prefix_dot(
    cols_a: np.ndarray, vals_a: np.ndarray, cols_b: np.ndarray, vals_b: np.ndarray, bound: int
) -> float:
    """Dot product of two sparse rows over columns ``< bound`` (sorted inputs)."""
    ka = int(np.searchsorted(cols_a, bound))
    kb = int(np.searchsorted(cols_b, bound))
    ca, va = cols_a[:ka], vals_a[:ka]
    cb, vb = cols_b[:kb], vals_b[:kb]
    if ka == 0 or kb == 0:
        return 0.0
    pos = np.searchsorted(cb, ca)
    pos_c = np.minimum(pos, kb - 1)
    match = cb[pos_c] == ca
    if not match.any():
        return 0.0
    return float(va[match] @ vb[pos_c[match]])


def _factor_row(
    i: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    a_data: np.ndarray,
    l_data: np.ndarray,
) -> None:
    """Factor row ``i`` of the lower CSR in place (up-looking)."""
    lo, hi = int(indptr[i]), int(indptr[i + 1])
    cols_i = indices[lo:hi]
    # stored lower row always ends with the diagonal (cols sorted, col <= i)
    if hi == lo or cols_i[-1] != i:
        raise KernelError(f"spic0: row {i} is missing its diagonal entry")
    for t in range(hi - lo - 1):
        j = int(cols_i[t])
        jlo, jhi = int(indptr[j]), int(indptr[j + 1])
        cols_j = indices[jlo:jhi]
        s = a_data[lo + t] - _sparse_prefix_dot(
            cols_i, l_data[lo:hi], cols_j, l_data[jlo:jhi], j
        )
        djj = l_data[jhi - 1]
        l_data[lo + t] = s / djj
    off = l_data[lo : hi - 1]
    pivot = a_data[hi - 1] - float(off @ off)
    if pivot <= 0.0:
        raise KernelError(f"spic0: non-positive pivot {pivot!r} at row {i} (matrix not SPD enough)")
    l_data[hi - 1] = np.sqrt(pivot)


def spic0_reference(a: CSRMatrix) -> CSRMatrix:
    """Sequential IC(0): returns lower-triangular ``L`` on ``tril(A)``'s pattern."""
    low = lower_triangle(a)
    if not low.has_full_diagonal():
        raise KernelError("spic0: matrix must have a full diagonal")
    l_data = np.zeros(low.nnz, dtype=VALUE_DTYPE)
    for i in range(low.n_rows):
        _factor_row(i, low.indptr, low.indices, low.data, l_data)
    return low.with_data(l_data)


def spic0_in_order(a: CSRMatrix, order: np.ndarray) -> CSRMatrix:
    """IC(0) with rows factored in ``order``; asserts every dependence."""
    low = lower_triangle(a)
    if not low.has_full_diagonal():
        raise KernelError("spic0: matrix must have a full diagonal")
    n = low.n_rows
    order = np.asarray(order, dtype=INDEX_DTYPE)
    if order.shape[0] != n or np.any(np.sort(order) != np.arange(n)):
        raise KernelError("spic0: order must be a permutation of range(n)")
    done = np.zeros(n, dtype=bool)
    l_data = np.zeros(low.nnz, dtype=VALUE_DTYPE)
    for i in order:
        lo, hi = low.indptr[i], low.indptr[i + 1]
        deps = low.indices[lo : hi - 1]
        if not np.all(done[deps]):
            missing = deps[~done[deps]][:5].tolist()
            raise KernelError(f"spic0: row {int(i)} factored before rows {missing}")
        _factor_row(int(i), low.indptr, low.indices, low.data, l_data)
        done[i] = True
    return low.with_data(l_data)


def ic0_defect(a: CSRMatrix, factor: CSRMatrix) -> float:
    """Max relative defect ``|(L L^T - A)[i, j]|`` over the lower pattern.

    Zero (to rounding) certifies a correct IC(0) factor.
    """
    low = lower_triangle(a)
    ls = factor.to_scipy()
    prod = (ls @ ls.T).tocsr()
    prod.sort_indices()
    worst = 0.0
    scale = float(np.abs(low.data).max()) or 1.0
    for i in range(low.n_rows):
        cols, vals = low.row(i)
        s, e = prod.indptr[i], prod.indptr[i + 1]
        prow, pval = prod.indices[s:e], prod.data[s:e]
        if prow.shape[0] == 0:
            got = np.zeros_like(vals)
        else:
            pos = np.clip(np.searchsorted(prow, cols), 0, prow.shape[0] - 1)
            got = np.where(prow[pos] == cols, pval[pos], 0.0)
        worst = max(worst, float(np.abs(got - vals).max(initial=0.0)))
    return worst / scale


class SpIC0(SparseKernel):
    """The SpIC0 kernel object (inspector + executor interface)."""

    name = "spic0"

    def dag(self, a: CSRMatrix) -> DAG:
        """Dependence DAG from the strictly-lower pattern of ``a``."""
        return dag_from_matrix_lower(a)

    def cost(self, a: CSRMatrix) -> np.ndarray:
        return spic0_cost(a)

    def memory_trace(self, a: CSRMatrix, *, line_elems: int = 8) -> Tuple[np.ndarray, np.ndarray]:
        """Trace over the lower-triangular factor storage."""
        return trace_self_plus_lower_neighbors(lower_triangle(a), line_elems=line_elems)

    def memory_model(self, a: CSRMatrix, g: DAG | None = None, *, line_elems: int = 8):
        """Edge-based memory model over the lower-triangular factor storage."""
        from .memory import factor_memory_model

        return factor_memory_model(
            lower_triangle(a), g if g is not None else self.dag(a), line_elems=line_elems
        )

    def reference(self, a: CSRMatrix, b: np.ndarray | None = None) -> CSRMatrix:
        return spic0_reference(a)

    def execute_in_order(
        self, a: CSRMatrix, order: np.ndarray, b: np.ndarray | None = None
    ) -> CSRMatrix:
        return spic0_in_order(a, order)

    def verify(self, a: CSRMatrix, result, b: np.ndarray | None = None) -> float:
        return ic0_defect(a, result)
