#!/usr/bin/env python
"""Scheduled Gauss-Seidel smoothing — a kernel beyond the paper's three.

Forward Gauss-Seidel has the same loop-carried dependence DAG as SpTRSV
(rows read freshly-updated values for columns below the diagonal), so the
HDagg inspector schedules it unchanged.  This example smooths a Poisson
right-hand side with scheduled sweeps — the workload of a multigrid
smoother — executed through the *threaded* runtime (real concurrent
threads with barrier synchronisation), and compares residual histories for
plain and scheduled execution (they are identical: the two-vector
formulation is order-independent).

Run:  python examples/gauss_seidel_smoother.py
"""

import numpy as np

from repro import hdagg
from repro.kernels import GaussSeidel, gauss_seidel_sweep
from repro.runtime import run_threaded
from repro.sparse import apply_ordering, poisson2d


def main() -> None:
    a, _ = apply_ordering(poisson2d(32, seed=5), "nd")
    rng = np.random.default_rng(1)
    b = rng.normal(size=a.n_rows)
    print(f"system: n={a.n_rows}, nnz={a.nnz}")

    kernel = GaussSeidel()
    g = kernel.dag(a)
    schedule = hdagg(g, kernel.cost(a), 4)
    schedule.validate(g)
    print(
        f"schedule: {schedule.meta['n_wavefronts']} wavefronts -> "
        f"{schedule.n_levels} coarsened wavefronts on 4 cores"
    )

    # -- scheduled sweeps through real threads -------------------------
    indptr, indices, data = a.indptr, a.indices, a.data
    x = np.zeros(a.n_rows)
    residuals = [float(np.linalg.norm(a.matvec(x) - b))]
    for sweep in range(8):
        x_old = x.copy()
        x_new = np.empty_like(x)

        def relax(i: int) -> None:
            lo, hi = indptr[i], indptr[i + 1]
            cols = indices[lo:hi]
            vals = data[lo:hi]
            below = cols < i
            above = cols > i
            k = int(np.searchsorted(cols, i))
            s = b[i] - vals[below] @ x_new[cols[below]] - vals[above] @ x_old[cols[above]]
            x_new[i] = s / vals[k]

        run_threaded(schedule, g, relax, cost=kernel.cost(a))
        x = x_new
        residuals.append(float(np.linalg.norm(a.matvec(x) - b)))

    # -- sequential oracle ----------------------------------------------
    y = np.zeros(a.n_rows)
    for sweep in range(8):
        y = gauss_seidel_sweep(a, b, y)

    print("residual history:", " ".join(f"{r:.2e}" for r in residuals))
    print(f"threaded == sequential: {np.allclose(x, y)}")
    print(f"residual reduced {residuals[0] / residuals[-1]:.1f}x over 8 sweeps")


if __name__ == "__main__":
    main()
