"""Symmetric fill-reducing / bandwidth-reducing orderings.

The paper reorders every input with METIS before handing it to any of the
schedulers (Section V).  METIS itself is a native library; this module
provides pure-Python equivalents that play the same role in the pipeline:

* :func:`rcm` — reverse Cuthill-McKee bandwidth reduction;
* :func:`nested_dissection` — recursive BFS-bisection ND, the same family of
  ordering METIS_NodeND computes;
* :func:`natural` / :func:`random_permutation` — controls for ablations.

All functions return a permutation ``perm`` with the convention used by
:meth:`repro.sparse.csr.CSRMatrix.permute_symmetric`: new index ``k``
corresponds to old index ``perm[k]``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .csr import CSRMatrix, INDEX_DTYPE

__all__ = ["rcm", "nested_dissection", "natural", "random_permutation", "apply_ordering"]


def _adjacency(a: CSRMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Symmetrised adjacency (indptr, indices) without self-loops."""
    at = a.transpose()
    n = a.n_rows
    # Union of patterns of A and A^T, dropping the diagonal.
    rows = np.concatenate(
        [
            np.repeat(np.arange(n, dtype=INDEX_DTYPE), a.row_nnz()),
            np.repeat(np.arange(n, dtype=INDEX_DTYPE), at.row_nnz()),
        ]
    )
    cols = np.concatenate([a.indices, at.indices])
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    pair = np.unique(np.stack([rows, cols], axis=1), axis=0)
    indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.bincount(pair[:, 0], minlength=n), out=indptr[1:])
    return indptr, np.ascontiguousarray(pair[:, 1])


def _pseudo_peripheral(indptr: np.ndarray, indices: np.ndarray, start: int) -> int:
    """Find a pseudo-peripheral vertex by repeated BFS (George-Liu)."""
    n = indptr.shape[0] - 1
    u = start
    last_ecc = -1
    for _ in range(n):
        dist = np.full(n, -1, dtype=INDEX_DTYPE)
        dist[u] = 0
        q = deque([u])
        far = u
        while q:
            v = q.popleft()
            for w in indices[indptr[v] : indptr[v + 1]]:
                if dist[w] < 0:
                    dist[w] = dist[v] + 1
                    far = int(w)
                    q.append(int(w))
        ecc = int(dist[far])
        if ecc <= last_ecc:
            return u
        last_ecc = ecc
        u = far
    return u


def rcm(a: CSRMatrix) -> np.ndarray:
    """Reverse Cuthill-McKee ordering of the symmetrised pattern of ``a``.

    Visits components in order of their smallest vertex id, starts each from
    a pseudo-peripheral vertex, and enqueues neighbours by increasing degree.
    Deterministic: ties break on vertex id.
    """
    n = a.n_rows
    indptr, indices = _adjacency(a)
    degree = np.diff(indptr)
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    for seed in range(n):
        if visited[seed]:
            continue
        root = _pseudo_peripheral(indptr, indices, seed)
        if visited[root]:  # component already swept via another seed
            root = seed
        visited[root] = True
        q = deque([root])
        while q:
            v = q.popleft()
            order.append(v)
            nbrs = indices[indptr[v] : indptr[v + 1]]
            nbrs = nbrs[~visited[nbrs]]
            # sort by (degree, id) for determinism
            nbrs = nbrs[np.lexsort((nbrs, degree[nbrs]))]
            visited[nbrs] = True
            q.extend(int(x) for x in nbrs)
    perm = np.array(order[::-1], dtype=INDEX_DTYPE)
    return perm


def _bfs_bisect(indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``nodes`` into (left, right, separator) via BFS level halving.

    BFS from a pseudo-peripheral vertex of the subgraph; the level that first
    covers half the vertices becomes the separator.
    """
    sub = set(nodes.tolist())
    start = int(nodes[0])
    # local BFS to find levels within the subgraph
    dist = {start: 0}
    q = deque([start])
    order = [start]
    while q:
        v = q.popleft()
        for w in indices[indptr[v] : indptr[v + 1]]:
            w = int(w)
            if w in sub and w not in dist:
                dist[w] = dist[v] + 1
                q.append(w)
                order.append(w)
    # restart from the farthest vertex for a better (deeper) level structure
    far = order[-1]
    dist = {far: 0}
    q = deque([far])
    order = [far]
    while q:
        v = q.popleft()
        for w in indices[indptr[v] : indptr[v + 1]]:
            w = int(w)
            if w in sub and w not in dist:
                dist[w] = dist[v] + 1
                q.append(w)
                order.append(w)
    unreached = [v for v in nodes.tolist() if v not in dist]
    half = (len(dist) + 1) // 2
    # choose separator level: first level where cumulative count >= half
    max_level = max(dist.values())
    counts = np.zeros(max_level + 1, dtype=np.int64)
    for v, d in dist.items():
        counts[d] += 1
    cum = np.cumsum(counts)
    sep_level = int(np.searchsorted(cum, half))
    sep_level = min(sep_level, max_level)
    left = [v for v, d in dist.items() if d < sep_level]
    sep = [v for v, d in dist.items() if d == sep_level]
    right = [v for v, d in dist.items() if d > sep_level] + unreached
    return (
        np.array(sorted(left), dtype=INDEX_DTYPE),
        np.array(sorted(right), dtype=INDEX_DTYPE),
        np.array(sorted(sep), dtype=INDEX_DTYPE),
    )


def nested_dissection(a: CSRMatrix, *, leaf_size: int = 64) -> np.ndarray:
    """Recursive BFS-bisection nested dissection ordering.

    Partitions the graph recursively; separators are numbered last within
    their subproblem (the defining property of ND, which keeps factorisation
    DAGs shallow and bushy).  Subproblems of at most ``leaf_size`` vertices
    are ordered by RCM restricted to the subgraph (approximated here by
    sorted ids, which for small leaves is adequate).
    """
    n = a.n_rows
    indptr, indices = _adjacency(a)
    out: list[int] = []

    # Explicit work stack (left, right, then separator emitted last within
    # each subproblem).  Lopsided splits — one tiny side plus a huge rest —
    # would drive plain recursion O(n) deep on chain- and hub-like graphs.
    stack: list[tuple[str, object]] = [("split", np.arange(n, dtype=INDEX_DTYPE))]
    while stack:
        tag, payload = stack.pop()
        if tag == "emit":
            out.extend(payload)  # type: ignore[arg-type]
            continue
        nodes = payload  # type: ignore[assignment]
        if nodes.shape[0] <= leaf_size:
            out.extend(nodes.tolist())
            continue
        left, right, sep = _bfs_bisect(indptr, indices, nodes)
        if left.shape[0] == 0 or right.shape[0] == 0:
            # Degenerate split (e.g. complete graph): stop recursing.
            out.extend(nodes.tolist())
            continue
        stack.append(("emit", sep.tolist()))
        stack.append(("split", right))
        stack.append(("split", left))
    perm = np.array(out, dtype=INDEX_DTYPE)
    if perm.shape[0] != n or np.any(np.sort(perm) != np.arange(n)):
        raise AssertionError("nested dissection produced an invalid permutation")
    return perm


def natural(a: CSRMatrix) -> np.ndarray:
    """Identity ordering (ablation control)."""
    return np.arange(a.n_rows, dtype=INDEX_DTYPE)


def random_permutation(a: CSRMatrix, *, seed: int = 0) -> np.ndarray:
    """Uniformly random ordering (ablation control)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(a.n_rows).astype(INDEX_DTYPE)


def apply_ordering(a: CSRMatrix, method: str = "nd", **kwargs) -> tuple[CSRMatrix, np.ndarray]:
    """Reorder ``a`` symmetrically; returns ``(permuted_matrix, perm)``.

    ``method`` is one of ``"rcm"``, ``"nd"``, ``"natural"``, ``"random"``.
    This is the stand-in for the paper's METIS pre-pass, applied identically
    to all schedulers.
    """
    methods = {
        "rcm": rcm,
        "nd": nested_dissection,
        "natural": natural,
        "random": random_permutation,
    }
    if method not in methods:
        raise ValueError(f"unknown ordering {method!r}; expected one of {sorted(methods)}")
    perm = methods[method](a, **kwargs)
    return a.permute_symmetric(perm), perm
