"""AST lint framework for repo-invariant rules (the ``L0xx`` prong).

Generic linters cannot see this repo's disciplines — that every
``fault_point`` site is registered, that ambient observability state is
always guarded, that pass bodies never mutate their inputs.  This engine
runs *project rules* over the source tree:

* :class:`AstRule` — per-module checks over a parsed AST (with parent
  links and raw source available);
* :class:`ProjectRule` — whole-repo checks that introspect live
  registries (backend tiers, dataclass fields) instead of parsing text.

Suppression is explicit and auditable: ``# statan: ignore[L003]`` on the
flagged line silences exactly that rule there (rule L008 polices the
suppression syntax itself), and a JSON baseline file can grandfather
findings by fingerprint — new violations always fail.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .diagnostics import Diagnostic

__all__ = [
    "ModuleUnit",
    "AstRule",
    "ProjectRule",
    "iter_source_files",
    "run_lint",
    "suppressed_rules",
]

#: directories scanned by default, relative to the repo root
DEFAULT_SCAN_ROOTS = ("src/repro",)

_SUPPRESS_RE = re.compile(r"#\s*statan:\s*ignore\[([A-Za-z0-9_,\s]*)\]")
_SUPPRESS_ANY_RE = re.compile(r"#\s*statan:\s*ignore")


@dataclass
class ModuleUnit:
    """One parsed module handed to every in-scope AST rule."""

    path: str  # repo-relative, forward slashes
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)
    _parents: Dict[int, ast.AST] = field(default_factory=dict)

    @classmethod
    def parse(cls, root: Path, file: Path) -> "ModuleUnit":
        source = file.read_text()
        tree = ast.parse(source, filename=str(file))
        unit = cls(
            path=file.relative_to(root).as_posix(),
            tree=tree,
            source=source,
            lines=source.splitlines(),
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                unit._parents[id(child)] = parent
        return unit

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional["ast.FunctionDef | ast.AsyncFunctionDef"]:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def diagnostic(
        self, rule: "AstRule", node: ast.AST, message: str, hint: Optional[str] = None
    ) -> Diagnostic:
        return Diagnostic(
            rule=rule.id,
            message=message,
            severity=rule.severity,
            path=self.path,
            line=getattr(node, "lineno", None),
            hint=hint if hint is not None else rule.hint,
        )


class AstRule:
    """Base class for per-module AST rules.

    Subclasses set ``id``/``description``/``scope`` and implement
    :meth:`check`.  ``scope`` is a tuple of repo-relative path prefixes;
    empty means every scanned file.  ``exclude`` prefixes are removed
    from the scope (e.g. the observability package itself is exempt from
    the obs-guard rule).
    """

    id: str = ""
    description: str = ""
    scope: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()
    severity: str = "error"
    hint: Optional[str] = None

    def applies_to(self, path: str) -> bool:
        if any(path.startswith(prefix) for prefix in self.exclude):
            return False
        return not self.scope or any(path.startswith(prefix) for prefix in self.scope)

    def check(self, unit: ModuleUnit) -> Iterator[Diagnostic]:  # pragma: no cover
        raise NotImplementedError


class ProjectRule:
    """Base class for whole-repo rules that introspect live objects."""

    id: str = ""
    description: str = ""
    severity: str = "error"

    def check_project(self, root: Path) -> Iterator[Diagnostic]:  # pragma: no cover
        raise NotImplementedError


def iter_source_files(root: Path, paths: Optional[Sequence[str]] = None) -> List[Path]:
    """Python files to lint: explicit ``paths`` or the default scan roots."""
    targets = [root / p for p in (paths or DEFAULT_SCAN_ROOTS)]
    files: List[Path] = []
    for target in targets:
        if target.is_file():
            files.append(target)
        else:
            files.extend(sorted(target.rglob("*.py")))
    return files


def suppressed_rules(line: str) -> Optional[set]:
    """Rule ids suppressed by an inline marker on ``line`` (None = no marker)."""
    m = _SUPPRESS_RE.search(line)
    if m is None:
        return None
    return {part.strip() for part in m.group(1).split(",") if part.strip()}


def _is_suppressed(d: Diagnostic, units: Dict[str, ModuleUnit]) -> bool:
    if d.path is None or d.line is None:
        return False
    unit = units.get(d.path)
    if unit is None or not (1 <= d.line <= len(unit.lines)):
        return False
    rules = suppressed_rules(unit.lines[d.line - 1])
    return rules is not None and d.rule in rules


def run_lint(
    root: "str | Path",
    *,
    rules: Optional[Iterable[object]] = None,
    rule_ids: Optional[Sequence[str]] = None,
    paths: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Run the rule set over the tree rooted at ``root``.

    ``rules`` defaults to the full project rule set
    (:data:`repro.statan.rules.ALL_RULES`); ``rule_ids`` filters it.
    Inline-suppressed findings are dropped here; baseline filtering is
    the caller's concern (the CLI layers it on top).
    """
    from .rules import ALL_RULES

    root = Path(root)
    active = list(rules) if rules is not None else list(ALL_RULES)
    if rule_ids is not None:
        wanted = set(rule_ids)
        unknown = wanted - {r.id for r in active}
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        active = [r for r in active if r.id in wanted]

    units: Dict[str, ModuleUnit] = {}
    diagnostics: List[Diagnostic] = []
    for file in iter_source_files(root, paths):
        try:
            unit = ModuleUnit.parse(root, file)
        except SyntaxError as exc:
            diagnostics.append(
                Diagnostic(
                    rule="E000",
                    message=f"syntax error: {exc.msg}",
                    path=file.relative_to(root).as_posix(),
                    line=exc.lineno,
                    hint="fix the parse error; no rules ran on this file",
                )
            )
            continue
        units[unit.path] = unit
        for rule in active:
            if isinstance(rule, AstRule) and rule.applies_to(unit.path):
                diagnostics.extend(rule.check(unit))
    for rule in active:
        if isinstance(rule, ProjectRule):
            diagnostics.extend(rule.check_project(root))
    kept = [d for d in diagnostics if not _is_suppressed(d, units)]
    kept.sort(key=lambda d: (d.path or "", d.line or 0, d.rule))
    return kept
