"""Static pipeline verification: accept every registered group, reject the
seeded ill-formed recombinations with the exact SP0xx rule and a usable hint.
"""

import pytest

from repro.passes import Contract, PASS_GROUPS, Pass, PassGroup, build_hdagg_group
from repro.statan import assert_valid, verify_pipeline, verify_registered_groups


def _pass(name, requires=(), produces=(), stage=None, tiers=(), **contract_kw):
    return Pass(
        name=name,
        contract=Contract(requires=requires, produces=produces, **contract_kw),
        run=lambda ctx: {},
        stage=stage,
        tiers=tuple(tiers),
    )


def _errors(diags):
    return [d for d in diags if d.severity == "error"]


def _rules(diags):
    return sorted({d.rule for d in diags})


# ----------------------------------------------------------------------
# acceptance: the registered pipelines and their ablations are well-formed
# ----------------------------------------------------------------------
def test_every_registered_group_is_accepted():
    results = verify_registered_groups()
    assert set(results) == set(PASS_GROUPS)
    for name, diags in results.items():
        assert _errors(diags) == [], (name, [d.render() for d in diags])


@pytest.mark.parametrize(
    "kwargs",
    [
        {"transitive_reduce": False},
        {"aggregate": False},
        {"bin_pack": False},
        {"aggregate": False, "bin_pack": False},
    ],
    ids=lambda kw: "+".join(sorted(kw)),
)
def test_hdagg_ablation_variants_are_accepted(kwargs):
    diags = verify_pipeline(build_hdagg_group(**kwargs))
    assert _errors(diags) == [], [d.render() for d in diags]


# ----------------------------------------------------------------------
# rejection: one seeded ill-formed pipeline per rule
# ----------------------------------------------------------------------
def _without_pass(group, name):
    return PassGroup(
        name=f"{group.name}-minus-{name}",
        passes=tuple(p for p in group.passes if p.name != name),
        inputs=group.inputs,
        outputs=group.outputs,
        assumes=group.assumes,
    )


def test_sp001_dropped_producer_is_rejected_with_fix_hint():
    broken = _without_pass(build_hdagg_group(), "coarsen")
    diags = _errors(verify_pipeline(broken))
    assert diags and all(d.rule == "SP001" for d in diags)
    missing = {d.message.split("'")[1] for d in diags}
    assert missing == {"CoarseDAG", "GroupCost"}
    lbp = [d for d in diags if d.pass_name == "lbp"]
    assert lbp, [d.render() for d in diags]
    assert "add 'CoarseDAG' to the group inputs" in lbp[0].hint
    assert lbp[0].group == broken.name


def test_sp001_reordered_passes_hint_names_the_later_producer():
    group = build_hdagg_group()
    reordered = PassGroup(
        name="hdagg-lbp-before-coarsen",
        passes=(
            group.pass_named("reduce"),
            group.pass_named("aggregate"),
            group.pass_named("lbp"),
            group.pass_named("coarsen"),
            group.pass_named("expand"),
        ),
        inputs=group.inputs,
        outputs=group.outputs,
        assumes=group.assumes,
    )
    diags = _errors(verify_pipeline(reordered))
    # lbp's inputs are missing where it now sits, and coarsen's GroupCost is
    # left dead behind it — the misordering surfaces from both directions
    assert _rules(diags) == ["SP001", "SP003"]
    hints = {d.hint for d in diags if d.pass_name == "lbp"}
    assert any("move pass 'coarsen'" in h and "before 'lbp'" in h for h in hints)


def test_sp002_unestablished_invariant_is_rejected():
    group = PassGroup(
        name="needs-reduced",
        passes=(
            _pass(
                "emit",
                requires=("DAG",),
                produces=("Schedule",),
                requires_invariants=("transitively-reduced",),
            ),
        ),
        inputs=("DAG",),
        assumes=("acyclic",),
    )
    diags = _errors(verify_pipeline(group))
    assert _rules(diags) == ["SP002"]
    (d,) = diags
    assert "'transitively-reduced'" in d.message
    assert "assumes" in d.hint


def test_sp003_dead_artifact_is_rejected():
    group = PassGroup(
        name="dead-product",
        passes=(
            _pass("grouper", requires=("DAG",), produces=("Grouping",)),
            _pass("emit", requires=("DAG",), produces=("Schedule",)),
        ),
        inputs=("DAG",),
    )
    diags = _errors(verify_pipeline(group))
    assert _rules(diags) == ["SP003"]
    (d,) = diags
    assert d.pass_name == "grouper" and "'Grouping'" in d.message


def test_sp004_unknown_stage_and_unregistered_tier_are_rejected():
    unknown = PassGroup(
        name="unknown-stage",
        passes=(_pass("emit", requires=("DAG",), produces=("Schedule",),
                      stage="quantize"),),
        inputs=("DAG",),
    )
    diags = _errors(verify_pipeline(unknown))
    assert _rules(diags) == ["SP004"]
    assert "unknown backend stage 'quantize'" in diags[0].message

    untiered = PassGroup(
        name="unregistered-tier",
        passes=(_pass("emit", requires=("DAG",), produces=("Schedule",),
                      stage="reduce", tiers=("reference", "compiled")),),
        inputs=("DAG",),
    )
    diags = _errors(verify_pipeline(untiered))
    assert _rules(diags) == ["SP004"]
    (d,) = diags
    assert "declared tier 'compiled' has no registered loader" in d.message
    assert "register_backend" in d.hint


def test_sp005_duplicate_producer_is_rejected():
    group = PassGroup(
        name="double-schedule",
        passes=(
            _pass("emit-a", requires=("DAG",), produces=("Schedule",)),
            _pass("emit-b", requires=("DAG",), produces=("Schedule",)),
        ),
        inputs=("DAG",),
    )
    diags = _errors(verify_pipeline(group))
    assert _rules(diags) == ["SP005"]
    (d,) = diags
    assert d.pass_name == "emit-b" and "already provided by 'emit-a'" in d.message


def test_sp005_pass_shadowing_an_input_is_rejected():
    group = PassGroup(
        name="shadow-input",
        passes=(
            _pass("rebuild-dag", requires=("Cost",), produces=("DAG",)),
            _pass("emit", requires=("DAG",), produces=("Schedule",)),
        ),
        inputs=("DAG", "Cost"),
    )
    diags = _errors(verify_pipeline(group))
    assert _rules(diags) == ["SP005"]
    assert "already provided by '<inputs>'" in diags[0].message


def test_sp006_unproduced_output_is_rejected():
    group = PassGroup(
        name="no-schedule",
        passes=(_pass("grouper", requires=("DAG",), produces=("Grouping",)),),
        inputs=("DAG",),
        outputs=("Schedule", "Grouping"),
    )
    diags = _errors(verify_pipeline(group))
    assert _rules(diags) == ["SP006"]
    (d,) = diags
    assert d.pass_name is None and "'Schedule' is never produced" in d.message


def test_sp007_invalidated_invariant_names_the_invalidator():
    group = PassGroup(
        name="stale-topo",
        passes=(
            _pass(
                "renumber",
                requires=("DAG",),
                produces=("ReducedDAG",),
                invalidates=("topo-ordered",),
            ),
            _pass(
                "emit",
                requires=("ReducedDAG",),
                produces=("Schedule",),
                requires_invariants=("topo-ordered",),
            ),
        ),
        inputs=("DAG",),
        assumes=("acyclic", "topo-ordered"),
    )
    diags = _errors(verify_pipeline(group))
    assert _rules(diags) == ["SP007"]
    (d,) = diags
    assert "after pass 'renumber' invalidated it" in d.message
    assert "re-establish 'topo-ordered'" in d.hint


def test_sp007_reestablished_invariant_is_accepted():
    group = PassGroup(
        name="reestablished-topo",
        passes=(
            _pass("renumber", requires=("DAG",), produces=("ReducedDAG",),
                  invalidates=("topo-ordered",)),
            _pass("sort", requires=("ReducedDAG",), produces=("CoarseDAG",),
                  establishes=("topo-ordered",)),
            _pass("emit", requires=("CoarseDAG",), produces=("Schedule",),
                  requires_invariants=("topo-ordered",)),
        ),
        inputs=("DAG",),
        assumes=("acyclic", "topo-ordered"),
    )
    assert _errors(verify_pipeline(group)) == []


def test_sp008_vacuous_preserve_is_a_warning_not_an_error():
    group = PassGroup(
        name="vacuous-preserve",
        passes=(
            _pass("emit", requires=("DAG",), produces=("Schedule",),
                  preserves=("balanced-under-epsilon",)),
        ),
        inputs=("DAG",),
    )
    diags = verify_pipeline(group)
    assert _errors(diags) == []  # still accepted
    assert _rules(diags) == ["SP008"]
    (d,) = diags
    assert d.severity == "warning"
    assert "not held here" in d.message


# ----------------------------------------------------------------------
# diagnostics shape and the assertion helper
# ----------------------------------------------------------------------
def test_diagnostics_are_structured_and_renderable():
    broken = _without_pass(build_hdagg_group(), "lbp")
    for d in verify_pipeline(broken):
        assert d.rule.startswith("SP")
        assert d.group == broken.name
        assert d.message and d.hint
        text = d.render()
        assert d.rule in text and broken.name in text
        blob = d.to_json()
        assert blob["rule"] == d.rule and blob["severity"] in ("error", "warning")


def test_assert_valid_raises_with_rendered_errors():
    broken = _without_pass(build_hdagg_group(), "expand")
    with pytest.raises(ValueError) as exc_info:
        assert_valid(broken)
    msg = str(exc_info.value)
    assert "ill-formed" in msg and "SP006" in msg
    # the registered default passes the same gate
    assert_valid(PASS_GROUPS["hdagg"])
