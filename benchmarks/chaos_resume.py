"""Chaos + resume gate: seeded fault injection and journal round-trips.

CI's resilience smoke.  Two phases, both exiting non-zero on any violation:

1. **Chaos sweep** — for each seed, arm ``FaultPlan.chaos(seed)`` and run a
   small grid with failure isolation.  The gate is *zero unhandled
   exceptions*: every outcome must be a (possibly degraded) RunRecord or a
   structured FailureRecord, and re-running the seed must reproduce the
   exact same fired faults and rows (determinism).

2. **Resume round-trip** — run the grid with a journal and an injected
   crash partway through, then resume from the journal without faults.
   The resumed record list must be *bit-identical* (serialized form,
   wall-clock fields included for the replayed prefix) to an uninterrupted
   journaled run's.

Usage::

    PYTHONPATH=src python benchmarks/chaos_resume.py [seed ...]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.core import ScheduleCache
from repro.resilience import FailureRecord
from repro.resilience.faults import FaultPlan, FaultSpec, armed
from repro.resilience.journal import RunJournal
from repro.suite import Harness
from repro.suite.harness import RunRecord
from repro.suite.matrices import SUITE
from repro.suite.storage import record_to_blob

DEFAULT_SEEDS = (0, 1, 2)
SPECS = SUITE[:3]

#: wall-clock fields that may differ between two computations of a row
TIMING_FIELDS = ("inspector_seconds", "stage_seconds", "schedule_cached")


def _strip(record: RunRecord) -> dict:
    return {k: v for k, v in record.__dict__.items() if k not in TIMING_FIELDS}


def _harness() -> Harness:
    return Harness(
        kernels=("sptrsv",),
        algorithms=("hdagg", "wavefront"),
        schedule_cache=ScheduleCache(),
    )


def chaos_round(seed: int) -> tuple:
    failures: list = []
    plan = FaultPlan.chaos(seed)
    with armed(plan):
        records = _harness().run_suite(SPECS, isolate_failures=True, failures=failures)
    for r in records:
        if not isinstance(r, RunRecord):
            raise AssertionError(f"seed {seed}: non-record row {r!r}")
    for f in failures:
        if not isinstance(f, FailureRecord) or not f.error_type:
            raise AssertionError(f"seed {seed}: unstructured failure {f!r}")
    fired = [(e.site, e.action, e.occurrence, e.label) for e in plan.fired]
    return fired, [_strip(r) for r in records], [f.as_dict() for f in failures]


def run_chaos(seeds) -> int:
    bad = 0
    for seed in seeds:
        try:
            first = chaos_round(seed)
            second = chaos_round(seed)
        except Exception as exc:  # the gate: nothing may escape unhandled
            print(f"FAIL seed {seed}: unhandled {type(exc).__name__}: {exc}")
            bad += 1
            continue
        if first != second:
            print(f"FAIL seed {seed}: chaos run is not deterministic")
            bad += 1
            continue
        fired, rows, failures = first
        degraded = sum(1 for r in rows if r.get("degraded"))
        print(
            f"ok seed {seed}: {len(fired)} faults fired, {len(rows)} records "
            f"({degraded} degraded), {len(failures)} isolated failures"
        )
    return bad


def run_resume_round_trip(workdir: Path) -> int:
    crash_path = workdir / "crashed.jsonl"
    clean_path = workdir / "clean.jsonl"

    # uninterrupted journaled run: the reference bytes
    reference = _harness().run_suite(SPECS, journal=str(clean_path))

    # crashed run: an injected failure on the last matrix kills the grid
    # after the earlier checkpoints were fsync'd
    plan = FaultPlan([FaultSpec("suite.matrix", "raise", at=len(SPECS) - 1)])
    try:
        with armed(plan):
            _harness().run_suite(SPECS, journal=str(crash_path))
    except RuntimeError:
        pass
    else:
        print("FAIL resume: the injected crash did not fire")
        return 1
    completed = RunJournal(crash_path, resume=True)
    n_done = len(completed.completed)
    completed.close()
    if n_done != len(SPECS) - 1:
        print(f"FAIL resume: expected {len(SPECS) - 1} checkpoints, found {n_done}")
        return 1

    # resume: replays the checkpoints verbatim, computes only the rest
    resumed = _harness().run_suite(SPECS, journal=str(crash_path))
    if [_strip(r) for r in resumed] != [_strip(r) for r in reference]:
        print("FAIL resume: resumed records differ from the uninterrupted run")
        return 1
    # the replayed prefix is bit-identical, wall-clock fields included
    j = RunJournal(crash_path, resume=True)
    for name in j.completed:
        got = [record_to_blob(r) for r in resumed if r.matrix == name]
        if got != j.record_blobs_for(name):
            print(f"FAIL resume: {name} rows were not replayed bit-identically")
            j.close()
            return 1
    j.close()
    print(f"ok resume: {len(resumed)} records, {n_done} replayed bit-identically")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    seeds = tuple(int(a) for a in argv) or DEFAULT_SEEDS
    bad = run_chaos(seeds)
    with tempfile.TemporaryDirectory(prefix="chaos-resume-") as tmp:
        bad += run_resume_round_trip(Path(tmp))
    if bad:
        print(f"{bad} resilience gate failure(s)")
        return 1
    print("resilience gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
