"""Tests for the cache models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import LRUCache, per_vertex_memory_cycles, reuse_window_hits


class TestLRUCache:
    def test_cold_misses(self):
        c = LRUCache(4)
        assert not c.access(1)
        assert not c.access(2)
        assert c.misses == 2 and c.hits == 0

    def test_hit_on_reuse(self):
        c = LRUCache(4)
        c.access(1)
        assert c.access(1)
        assert c.hits == 1

    def test_eviction_lru_order(self):
        c = LRUCache(2)
        c.access(1)
        c.access(2)
        c.access(3)  # evicts 1
        assert not c.access(1)
        assert len(c) == 2

    def test_touch_refreshes(self):
        c = LRUCache(2)
        c.access(1)
        c.access(2)
        c.access(1)  # 2 becomes LRU
        c.access(3)  # evicts 2
        assert c.access(1)
        assert not c.access(2)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_access_trace(self):
        c = LRUCache(8)
        mask = c.access_trace(np.array([1, 2, 1, 3, 2]))
        assert mask.tolist() == [False, False, True, False, True]


class TestReuseWindow:
    def test_cold_misses(self):
        hits = reuse_window_hits(np.array([1, 2, 3]), capacity=10)
        assert hits.tolist() == [False, False, False]

    def test_near_reuse_hits(self):
        hits = reuse_window_hits(np.array([1, 2, 1]), capacity=10)
        assert hits.tolist() == [False, False, True]

    def test_window_bound(self):
        trace = np.array([1, 2, 3, 4, 1])
        assert reuse_window_hits(trace, capacity=4)[-1]
        assert not reuse_window_hits(trace, capacity=3)[-1]

    def test_empty(self):
        assert reuse_window_hits(np.array([], dtype=np.int64), 4).size == 0

    @given(st.lists(st.integers(0, 10), min_size=0, max_size=100), st.integers(1, 50))
    @settings(max_examples=60, deadline=None)
    def test_window_is_upper_bounded_by_huge_lru(self, trace, cap):
        """With capacity >= trace length, window hits == exact LRU hits
        (every non-cold access hits in both models)."""
        trace = np.array(trace, dtype=np.int64)
        big = max(len(trace), 1)
        window = reuse_window_hits(trace, big)
        lru = LRUCache(big).access_trace(trace) if trace.size else np.zeros(0, bool)
        np.testing.assert_array_equal(window, lru)

    @given(st.lists(st.integers(0, 6), min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_window_conservative_vs_lru(self, trace):
        """Time-window hits never exceed what an LRU of the same capacity
        gives (time distance >= stack distance)."""
        trace = np.array(trace, dtype=np.int64)
        cap = 3
        window = int(reuse_window_hits(trace, cap).sum())
        lru = LRUCache(cap)
        lru.access_trace(trace)
        assert window <= lru.hits


class TestPerVertexFold:
    def test_fold(self):
        ptr = np.array([0, 2, 3])
        mask = np.array([True, False, True])
        cycles, hits, misses = per_vertex_memory_cycles(ptr, mask, 1.0, 10.0)
        assert cycles.tolist() == [11.0, 1.0]
        assert hits == 2 and misses == 1

    def test_empty_vertex(self):
        ptr = np.array([0, 0, 1])
        mask = np.array([False])
        cycles, hits, misses = per_vertex_memory_cycles(ptr, mask, 1.0, 10.0)
        assert cycles.tolist() == [0.0, 10.0]
