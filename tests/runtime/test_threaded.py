"""Tests for the threaded (real-concurrency) executor."""

import numpy as np
import pytest

from repro.core.schedule import Schedule, WidthPartition
from repro.graph import DAG, dag_from_matrix_lower
from repro.kernels import KERNELS
from repro.runtime import ThreadedExecutionError, run_threaded
from repro.schedulers import SCHEDULERS
from repro.sparse import lower_triangle


def make_sptrsv_processor(low, b):
    x = np.empty(low.n_rows)
    indptr, indices, data = low.indptr, low.indices, low.data

    def process(i: int) -> None:
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo : hi - 1]
        x[i] = (b[i] - data[lo : hi - 1] @ x[cols]) / data[hi - 1]

    return x, process


@pytest.mark.parametrize("algo", ["hdagg", "wavefront", "spmp", "lbc", "dagp"])
def test_sptrsv_through_threads(algo, mesh_nd, rng):
    kernel = KERNELS["sptrsv"]
    low = lower_triangle(mesh_nd)
    g = kernel.dag(low)
    cost = kernel.cost(low)
    b = rng.normal(size=mesh_nd.n_rows)
    s = SCHEDULERS[algo](g, cost, 4)
    x, process = make_sptrsv_processor(low, b)
    run_threaded(s, g, process, cost=cost)
    np.testing.assert_allclose(x, kernel.reference(low, b), rtol=1e-10)


def test_counts_every_vertex_once(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = SCHEDULERS["hdagg"](g, np.ones(g.n), 4)
    counts = np.zeros(g.n, dtype=np.int64)

    def process(v: int) -> None:
        counts[v] += 1

    run_threaded(s, g, process)
    assert np.all(counts == 1)


def test_invalid_barrier_schedule_detected():
    # edge 0 -> 1 placed in the same level on different cores
    g = DAG.from_edges(2, [0], [1])
    s = Schedule(
        n=2,
        levels=[[WidthPartition(0, np.array([1])), WidthPartition(1, np.array([0]))]],
        sync="barrier",
        algorithm="bad",
        n_cores=2,
    )
    order = []

    def process(v: int) -> None:
        order.append(v)

    # core 0 starts with vertex 1 whose dependence 0 is not done
    with pytest.raises(ThreadedExecutionError):
        run_threaded(s, g, process)


def test_worker_exception_propagates(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = SCHEDULERS["wavefront"](g, np.ones(g.n), 4)

    def process(v: int) -> None:
        if v == 10:
            raise ValueError("boom")

    with pytest.raises(ThreadedExecutionError, match="boom"):
        run_threaded(s, g, process)


def test_p2p_spin_path(mesh_nd, rng):
    """SpMP's p2p flags let threads overlap levels; results still exact."""
    kernel = KERNELS["sptrsv"]
    low = lower_triangle(mesh_nd)
    g = kernel.dag(low)
    cost = kernel.cost(low)
    b = rng.normal(size=mesh_nd.n_rows)
    s = SCHEDULERS["spmp"](g, cost, 3)
    assert s.sync == "p2p"
    x, process = make_sptrsv_processor(low, b)
    run_threaded(s, g, process, cost=cost, spin_yield=True)
    np.testing.assert_allclose(x, kernel.reference(low, b), rtol=1e-10)


def test_barrier_violation_carries_context():
    g = DAG.from_edges(2, [0], [1])
    s = Schedule(
        n=2,
        levels=[[WidthPartition(0, np.array([1])), WidthPartition(1, np.array([0]))]],
        sync="barrier",
        algorithm="bad",
        n_cores=2,
    )
    with pytest.raises(ThreadedExecutionError) as exc_info:
        run_threaded(s, g, lambda v: None)
    exc = exc_info.value
    assert exc.vertex == 1 and exc.dependence == 0 and exc.core is not None


def test_p2p_deadlock_detected_with_context():
    # vertex 1 spins on dependence 0, which is never scheduled: without
    # deadlock detection this would hang forever
    g = DAG.from_edges(2, [0], [1])
    s = Schedule(
        n=2,
        levels=[[WidthPartition(0, np.array([1]))]],
        sync="p2p",
        algorithm="bad",
        n_cores=1,
    )
    with pytest.raises(ThreadedExecutionError, match="deadlock") as exc_info:
        run_threaded(s, g, lambda v: None, deadlock_timeout=0.3)
    exc = exc_info.value
    assert (exc.core, exc.vertex, exc.dependence) == (0, 1, 0)


def test_worker_exception_carries_core_and_vertex(mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    s = SCHEDULERS["wavefront"](g, np.ones(g.n), 4)

    def process(v: int) -> None:
        if v == 10:
            raise ValueError("boom")

    with pytest.raises(ThreadedExecutionError, match="core \\d+ failed at vertex 10") as ei:
        run_threaded(s, g, process)
    assert ei.value.vertex == 10 and ei.value.core is not None
    assert isinstance(ei.value.__cause__, ValueError)


@pytest.mark.parametrize("algo", ["hdagg", "spmp"])
def test_trace_hook_records_every_vertex(algo, mesh_nd):
    from repro.analysis import TraceRecorder

    g = dag_from_matrix_lower(mesh_nd)
    s = SCHEDULERS[algo](g, np.ones(g.n), 3)
    rec = TraceRecorder()
    run_threaded(s, g, lambda v: None, trace=rec, deadlock_timeout=15.0)
    execs = sorted(a for _, kind, _, a in rec.events if kind == "exec")
    assert execs == list(range(g.n))
    if s.sync == "barrier":
        assert sum(1 for e in rec.events if e[1] == "barrier") > 0
    else:
        assert any(e[1] == "acquire" for e in rec.events)


def test_fine_grained_schedule_bound_first(mesh_nd):
    from repro.core import hdagg

    g = dag_from_matrix_lower(mesh_nd)
    s = hdagg(g, np.ones(g.n), 4, bin_pack=False)
    assert s.fine_grained
    seen = np.zeros(g.n, dtype=bool)

    def process(v: int) -> None:
        seen[v] = True

    run_threaded(s, g, process, cost=np.ones(g.n))
    assert seen.all()
