"""Unit tests for tables/figures over hand-built records (no harness runs)."""

import math

import numpy as np
import pytest

from repro.suite import (
    HIGH_PARALLELISM_THRESHOLD,
    LARGE_NNZ_THRESHOLD,
    RunRecord,
    fig4_pgp_vs_pg,
    fig5_per_matrix_speedups,
    fig8_speedup_vs_locality,
    fig9_nre,
    index_records,
    table1_speedups,
    table2_metric_improvements,
    table3_categories,
)


def make_record(**kw):
    base = dict(
        matrix="m1", family="mesh2d", kernel="spilu0", algorithm="hdagg",
        machine="intel20", n=100, nnz=500, n_wavefronts=10,
        average_parallelism=10.0, nnz_per_wavefront=50.0, speedup=4.0,
        makespan_cycles=250.0, serial_cycles=1000.0,
        avg_memory_access_latency=50.0, hit_rate=0.5, potential_gain=0.1,
        pgp=0.12, equivalent_syncs=100.0, n_barriers=5, n_p2p_syncs=0,
        imbalance_ratio=0.2, inspector_cycles=1000.0, nre=4.0,
        schedule_levels=5, schedule_partitions=20, fine_grained=False,
        inspector_seconds=0.01,
    )
    base.update(kw)
    return RunRecord(**base)


@pytest.fixture
def pair():
    """One matrix, hdagg at 4x and wavefront at 2x."""
    return [
        make_record(algorithm="hdagg", speedup=4.0, avg_memory_access_latency=40.0,
                    potential_gain=0.1, equivalent_syncs=50.0),
        make_record(algorithm="wavefront", speedup=2.0, avg_memory_access_latency=80.0,
                    potential_gain=0.05, equivalent_syncs=200.0),
    ]


def test_table1_ratio(pair):
    _, rows, data = table1_speedups(pair)
    assert rows == [["wavefront", 2.0]]
    assert data["wavefront|spilu0|intel20"]["mean"] == 2.0


def test_table1_missing_hdagg_gives_nan():
    _, rows, data = table1_speedups([make_record(algorithm="wavefront")])
    assert math.isnan(rows[0][1])


def test_table2_directions(pair):
    _, _, data = table2_metric_improvements(pair)
    assert data["locality|wavefront"] == pytest.approx(2.0)
    assert data["load balance|wavefront"] == pytest.approx(0.5, rel=1e-6)
    assert data["synchronization|wavefront"] == pytest.approx(201 / 51)


def test_table3_bucketing():
    recs = []
    for nm, nnz, ap in (
        ("big", LARGE_NNZ_THRESHOLD + 1, 10.0),
        ("wide", 100, HIGH_PARALLELISM_THRESHOLD + 1),
        ("small", 100, 1.0),
    ):
        for algo, sp in (("hdagg", 3.0), ("spmp", 2.0), ("wavefront", 1.0)):
            recs.append(make_record(matrix=nm, nnz=int(nnz),
                                    average_parallelism=ap, algorithm=algo, speedup=sp))
    _, rows, data = table3_categories(recs)
    counts = [row[1] for row in rows]
    assert counts == [1, 1, 1]
    for row in rows:
        assert row[-1] == pytest.approx(1.5)  # hdagg vs best(spmp, wavefront)


def test_fig4_requires_variance():
    # constant PGP -> no fit
    recs = [make_record(kernel="sptrsv", algorithm=a, pgp=0.2, potential_gain=0.2)
            for a in ("hdagg", "spmp")]
    _, rows, data = fig4_pgp_vs_pg(recs)
    assert len(rows) == 2
    assert math.isnan(data["r_squared"])


def test_fig5_per_matrix(pair):
    per_kernel = fig5_per_matrix_speedups(pair)
    _, rows, data = per_kernel["spilu0"]
    assert rows == [["m1", 2.0]]
    assert data["wavefront"]["m1"] == 2.0


def test_fig8_category_filter(pair):
    # nnz small + AP low -> excluded from the fig8 cloud
    low = [make_record(algorithm=a, nnz=10, average_parallelism=1.0) for a in ("hdagg", "spmp")]
    _, rows, _ = fig8_speedup_vs_locality(low)
    assert rows == []


def test_fig9_shapes(pair):
    recs = [make_record(kernel="sptrsv", algorithm=a, nre=v)
            for a, v in (("hdagg", 16.0), ("wavefront", 9.0), ("spmp", 21.0),
                         ("lbc", 24.0), ("dagp", 5000.0))]
    headers, rows, data = fig9_nre(recs)
    assert data["sptrsv"]["hdagg"] == 16.0
    assert data["sptrsv"]["dagp"] == 5000.0
    assert len(rows) == 1


def test_index_records_unique_keys(pair):
    idx = index_records(pair)
    assert len(idx) == 2
    assert ("m1", "spilu0", "hdagg", "intel20") in idx
