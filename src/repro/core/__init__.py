"""HDagg core: the paper's contribution (Algorithm 1) and its data types."""

from .aggregation import aggregate_densely_connected, subtree_grouping
from .analysis import level_table, schedule_report, utilization_chart
from .backends import BackendSpec, resolve_stage
from .binpack import BinPacking, first_fit_pack
from .hdagg import expand_lbp_to_schedule, hdagg
from .incremental import (
    IncrementalScheduleCache,
    InspectionArtifacts,
    PatternDelta,
    RepairResult,
    diff_dag,
    family_key,
    inspect_with_artifacts,
    repair_schedule,
)
from .inspector import HDaggInspector
from .lbp import CoarsenedWavefront, LBPDecision, LBPResult, lbp_coarsen
from .pgp import DEFAULT_EPSILON, accumulated_pgp, pgp, pgp_worst_case
from .schedule import (
    DependenceWitness,
    Schedule,
    ScheduleError,
    WidthPartition,
    dependence_witnesses,
)
from .schedule_cache import CacheStats, ScheduleCache, schedule_key
from .verify import VerificationReport, verify_schedule

__all__ = [
    "hdagg",
    "HDaggInspector",
    "level_table",
    "schedule_report",
    "utilization_chart",
    "expand_lbp_to_schedule",
    "aggregate_densely_connected",
    "subtree_grouping",
    "lbp_coarsen",
    "LBPResult",
    "LBPDecision",
    "CoarsenedWavefront",
    "first_fit_pack",
    "BinPacking",
    "pgp",
    "pgp_worst_case",
    "accumulated_pgp",
    "DEFAULT_EPSILON",
    "Schedule",
    "ScheduleError",
    "DependenceWitness",
    "dependence_witnesses",
    "ScheduleCache",
    "CacheStats",
    "schedule_key",
    "BackendSpec",
    "resolve_stage",
    "PatternDelta",
    "diff_dag",
    "InspectionArtifacts",
    "inspect_with_artifacts",
    "RepairResult",
    "repair_schedule",
    "family_key",
    "IncrementalScheduleCache",
    "verify_schedule",
    "VerificationReport",
    "WidthPartition",
]
