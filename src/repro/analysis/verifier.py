"""Dependence verifier: certify or refute any :class:`Schedule` statically.

The verifier is scheduler-agnostic — it never looks at how a schedule was
constructed, only at the schedule coordinates (coarsened-wavefront level,
width-partition id, intra-partition position) of every DAG edge's endpoints.
A schedule is *certified* when every edge ``u -> v`` satisfies

* ``level[u] < level[v]`` (ordered by an inter-wavefront barrier /
  the p2p no-mid-stream-wait invariant), or
* ``partition[u] == partition[v]`` and ``position[u] < position[v]``
  (ordered by the sequential sweep of one width-partition).

This is the safety invariant both sync models rely on (paper Section IV-A);
the predicate itself lives in :func:`repro.core.schedule.dependence_witnesses`
so :meth:`Schedule.validate` and this verifier cannot drift apart.  On
refutation the verifier extracts minimal counterexample witnesses — the
mis-ordered edges with full level/partition/position context, earliest
execution point first.

Complexity: O(V + E) plus a sort over only the violating edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.schedule import DependenceWitness, Schedule, ScheduleError, dependence_witnesses
from ..graph.dag import DAG
from ..runtime.perf import StageTimer

__all__ = [
    "DependenceReport",
    "verify_dependences",
    "find_dependence_witnesses",
    "assert_schedule_safe",
]

#: ``Schedule.meta["stage_seconds"]`` key under which verification time lands.
VERIFY_STAGE = "verify"


@dataclass
class DependenceReport:
    """Outcome of :func:`verify_dependences`."""

    ok: bool
    n_edges: int
    n_violations: int
    witnesses: List[DependenceWitness] = field(default_factory=list)
    structural_error: Optional[str] = None
    seconds: float = 0.0

    @property
    def certified(self) -> bool:
        """True when the schedule is proven safe (alias of ``ok``)."""
        return self.ok

    def describe(self) -> str:
        """Multi-line account for logs and the ``analyze`` CLI."""
        if self.ok:
            return f"certified: {self.n_edges} edges ordered ({self.seconds * 1e3:.2f} ms)"
        lines = [f"REFUTED: {self.n_violations} of {self.n_edges} edges mis-ordered"]
        if self.structural_error:
            lines.append(f"structural: {self.structural_error}")
        lines.extend(f"  {w.describe()}" for w in self.witnesses)
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "n_edges": self.n_edges,
            "n_violations": self.n_violations,
            "structural_error": self.structural_error,
            "witnesses": [w.as_dict() for w in self.witnesses],
            "seconds": self.seconds,
        }


def find_dependence_witnesses(
    schedule: Schedule, g: DAG, *, max_witnesses: int = 16
) -> List[DependenceWitness]:
    """All (up to ``max_witnesses``) mis-ordered edges, minimal first."""
    if g.n_edges == 0:
        return []
    src, dst = g.edge_list()
    return dependence_witnesses(
        schedule.level_of(),
        schedule.partition_of(),
        schedule.position_of(),
        src,
        dst,
        max_witnesses=max_witnesses,
    )


def _count_violations(schedule: Schedule, g: DAG) -> int:
    if g.n_edges == 0:
        return 0
    level = schedule.level_of()
    pid = schedule.partition_of()
    pos = schedule.position_of()
    src, dst = g.edge_list()
    ok = (level[src] < level[dst]) | ((pid[src] == pid[dst]) & (pos[src] < pos[dst]))
    return int(np.count_nonzero(~ok))


def verify_dependences(
    schedule: Schedule,
    g: DAG,
    *,
    max_witnesses: int = 16,
    structural: bool = True,
    stamp_meta: bool = True,
) -> DependenceReport:
    """Certify or refute ``schedule`` against ``g``; never raises.

    With ``structural`` set (default) the partition-cover / core-uniqueness
    invariants are checked first — a schedule that does not even cover the
    vertex set cannot be reasoned about edge-wise.  With ``stamp_meta`` the
    verification wall-clock is accumulated into
    ``schedule.meta["stage_seconds"]["verify"]`` so harness records report
    verifier runtime next to the inspector stages.
    """
    timer = StageTimer()
    structural_error: Optional[str] = None
    witnesses: List[DependenceWitness] = []
    n_violations = 0
    with timer.stage(VERIFY_STAGE):
        if structural:
            try:
                schedule.validate(g, check_dependences=False)
            except ScheduleError as exc:
                structural_error = str(exc)
        if structural_error is None:
            witnesses = find_dependence_witnesses(schedule, g, max_witnesses=max_witnesses)
            if witnesses:
                n_violations = _count_violations(schedule, g)
    if stamp_meta:
        stages = schedule.meta.setdefault("stage_seconds", {})
        stages[VERIFY_STAGE] = stages.get(VERIFY_STAGE, 0.0) + timer.total
    return DependenceReport(
        ok=structural_error is None and not witnesses,
        n_edges=g.n_edges,
        n_violations=n_violations,
        witnesses=witnesses,
        structural_error=structural_error,
        seconds=timer.total,
    )


def assert_schedule_safe(schedule: Schedule, g: DAG) -> None:
    """Harness-facing wrapper: raise a witness-carrying error on refutation.

    Equivalent to ``schedule.validate(g)`` but routes through the verifier so
    the verification time is stamped into the schedule's stage timings and
    the raised :class:`ScheduleError` always carries the minimal witness.
    """
    report = verify_dependences(schedule, g, max_witnesses=1)
    if not report.ok:
        if report.structural_error is not None:
            raise ScheduleError(report.structural_error)
        raise ScheduleError(report.witnesses[0].describe(), witness=report.witnesses[0])
