"""Figure 8: speedup over SpMP/Wavefront vs locality improvement.

The paper's causal claim: restricted to Table III categories 1-2, HDagg's
speedup over the wavefront family correlates with its locality improvement
with R^2 = 0.95 — locality, not load balance or sync, is what HDagg's
aggregation buys.
"""

from _common import write_report
from repro.suite import fig8_speedup_vs_locality, format_kv, format_table


def test_fig8(benchmark, records_intel, output_dir):
    headers, rows, data = benchmark(
        fig8_speedup_vs_locality, records_intel, kernel="spilu0", machine="intel20"
    )
    text = "\n\n".join(
        [
            format_table(headers, rows, title="Figure 8: speedup vs locality improvement (SpILU0)"),
            format_kv(
                {"R^2": data["r_squared"], "slope": data["slope"], "paper R^2": 0.95},
                title="linear fit",
            ),
        ]
    )
    write_report(output_dir, "fig8_intel20", text)

    assert len(rows) >= 4
    # positive relationship: better locality -> better relative speedup
    assert data["slope"] > 0
    assert data["r_squared"] > 0.25
