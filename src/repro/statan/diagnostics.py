"""Shared diagnostics model for both statan prongs.

The pipeline verifier (``SP0xx`` rules) and the repo lint engine
(``L0xx`` rules) emit the same :class:`Diagnostic` shape: a stable rule
id, a one-line message, a location (file/line for lint, group/pass for
verification), and a fix hint.  One model means one rendering path, one
JSON shape, and one suppression/baseline mechanism.

Baselines hold *fingerprints* — location-normalised digests that survive
unrelated line-number drift — so a rule can be introduced against an
imperfect repo without drowning CI, while every new violation still
fails.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from hashlib import sha256
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "SEVERITIES",
    "Diagnostic",
    "Baseline",
    "render_text",
    "render_json",
]

#: ``error`` fails the gate; ``warning`` only fails under ``--strict``
SEVERITIES = ("error", "warning")

_FINGERPRINT_VERSION = b"statan-fingerprint-v1\0"


@dataclass(frozen=True)
class Diagnostic:
    """One finding, from either prong.

    ``rule`` is the stable id (``"SP001"``, ``"L003"``).  Lint findings
    carry ``path``/``line``; pipeline findings carry ``group`` and
    usually ``pass_name``.  ``hint`` is the actionable fix suggestion
    the ISSUE requires of every structured diagnostic.
    """

    rule: str
    message: str
    severity: str = "error"
    path: Optional[str] = None
    line: Optional[int] = None
    group: Optional[str] = None
    pass_name: Optional[str] = None
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of {SEVERITIES}"
            )

    @property
    def where(self) -> str:
        """Human location: ``file:line`` for lint, ``group/pass`` for verify."""
        if self.path is not None:
            return f"{self.path}:{self.line}" if self.line is not None else self.path
        if self.group is not None:
            return (
                f"{self.group}/{self.pass_name}"
                if self.pass_name is not None
                else self.group
            )
        return "<project>"

    def fingerprint(self) -> str:
        """Location-normalised digest for baseline matching.

        Deliberately excludes the line number: inserting code above a
        baselined finding must not resurrect it.  Includes the message,
        so a finding that *changes* (new artifact name, new site) reads
        as new.
        """
        h = sha256(_FINGERPRINT_VERSION)
        payload = (self.rule, self.path or "", self.group or "", self.pass_name or "", self.message)
        h.update(repr(payload).encode("utf-8"))
        return h.hexdigest()

    def render(self) -> str:
        text = f"{self.where}: {self.severity}[{self.rule}]: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict:
        blob = asdict(self)
        blob["where"] = self.where
        blob["fingerprint"] = self.fingerprint()
        return blob


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """All diagnostics, one block each, plus a one-line tally."""
    lines = [d.render() for d in diagnostics]
    n_err = sum(1 for d in diagnostics if d.severity == "error")
    n_warn = len(diagnostics) - n_err
    lines.append(f"{n_err} error(s), {n_warn} warning(s)")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    return json.dumps(
        {
            "diagnostics": [d.to_json() for d in diagnostics],
            "errors": sum(1 for d in diagnostics if d.severity == "error"),
            "warnings": sum(1 for d in diagnostics if d.severity == "warning"),
        },
        indent=2,
        sort_keys=True,
    )


class Baseline:
    """A set of accepted fingerprints persisted as JSON.

    ``filter(diags)`` drops findings already in the baseline and returns
    the rest; ``record(diags)`` replaces the accepted set (what
    ``hdagg-bench lint --write-baseline`` does).
    """

    def __init__(self, fingerprints: Iterable[str] = ()) -> None:
        self.fingerprints = set(fingerprints)

    @classmethod
    def load(cls, path: "str | Path") -> "Baseline":
        p = Path(path)
        if not p.exists():
            return cls()
        blob = json.loads(p.read_text())
        return cls(blob.get("fingerprints", []))

    def save(self, path: "str | Path") -> None:
        Path(path).write_text(
            json.dumps({"fingerprints": sorted(self.fingerprints)}, indent=2) + "\n"
        )

    def filter(
        self, diagnostics: Sequence[Diagnostic]
    ) -> Tuple[List[Diagnostic], List[Diagnostic]]:
        """Split into (new, baselined) by fingerprint membership."""
        new: List[Diagnostic] = []
        old: List[Diagnostic] = []
        for d in diagnostics:
            (old if d.fingerprint() in self.fingerprints else new).append(d)
        return new, old

    def record(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.fingerprints = {d.fingerprint() for d in diagnostics}
