"""Whole-pipeline integration tests: matrix -> schedule -> numerics -> metrics.

These walk the full user journey for every kernel and every scheduler on a
single matrix, asserting at each stage — the closest thing to running the
examples inside the test suite.
"""

import numpy as np
import pytest

from repro import KERNELS, SCHEDULERS, LAPTOP4, simulate
from repro.core import verify_schedule
from repro.metrics import equivalent_p2p_syncs, imbalance_ratio
from repro.sparse import apply_ordering, lower_triangle, poisson2d

ALGOS = ("hdagg", "wavefront", "spmp", "lbc", "dagp", "coarsenk")
KERNEL_NAMES = ("sptrsv", "spic0", "spilu0", "gauss_seidel")


@pytest.fixture(scope="module")
def matrix():
    ordered, _ = apply_ordering(poisson2d(14, seed=21), "nd")
    return ordered


def operand_for(kernel_name, a):
    return lower_triangle(a) if kernel_name == "sptrsv" else a


@pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
@pytest.mark.parametrize("algo", ALGOS)
def test_full_pipeline(matrix, kernel_name, algo):
    kernel = KERNELS[kernel_name]
    operand = operand_for(kernel_name, matrix)
    g = kernel.dag(operand)
    cost = kernel.cost(operand)
    schedule = SCHEDULERS[algo](g, cost, LAPTOP4.n_cores)

    # 1. schedule safety + numerics under interleaving
    report = verify_schedule(kernel, operand, schedule, g, interleavings=1)
    assert report.ok, (kernel_name, algo, report.errors)

    # 2. machine-model metrics are well-formed
    result = simulate(schedule, g, cost, kernel.memory_model(operand, g), LAPTOP4)
    assert result.makespan_cycles > 0
    assert 0 <= result.potential_gain < 1
    assert 0 <= result.hit_rate <= 1
    assert equivalent_p2p_syncs(result, LAPTOP4.n_cores) >= 0
    assert 0 <= imbalance_ratio(schedule, LAPTOP4.n_cores) <= 1


@pytest.mark.parametrize("kernel_name", ("sptrsv", "spilu0"))
def test_pipeline_deterministic_end_to_end(matrix, kernel_name):
    """Two independent pipeline runs agree bit-for-bit."""
    kernel = KERNELS[kernel_name]
    operand = operand_for(kernel_name, matrix)

    def run():
        g = kernel.dag(operand)
        cost = kernel.cost(operand)
        s = SCHEDULERS["hdagg"](g, cost, 4)
        r = simulate(s, g, cost, kernel.memory_model(operand, g), LAPTOP4)
        out = kernel.execute_in_order(operand, s.execution_order())
        data = out.data if hasattr(out, "data") else out
        return s.execution_order().tolist(), r.makespan_cycles, data

    o1, m1, d1 = run()
    o2, m2, d2 = run()
    assert o1 == o2
    assert m1 == m2
    np.testing.assert_array_equal(d1, d2)


def test_serialized_schedule_survives_pipeline(matrix):
    """Inspector output persisted, reloaded, and re-used for execution +
    simulation — the cross-process inspector-executor flow."""
    import json

    from repro.core import Schedule

    kernel = KERNELS["spilu0"]
    g = kernel.dag(matrix)
    cost = kernel.cost(matrix)
    original = SCHEDULERS["hdagg"](g, cost, 4)
    restored = Schedule.from_dict(json.loads(json.dumps(original.to_dict())))

    r1 = simulate(original, g, cost, kernel.memory_model(matrix, g), LAPTOP4)
    r2 = simulate(restored, g, cost, kernel.memory_model(matrix, g), LAPTOP4)
    assert r1.makespan_cycles == r2.makespan_cycles
    assert r1.hits == r2.hits
