"""Incomplete LU factorisation with zero fill-in (SpILU0).

Computes ``L`` (unit lower) and ``U`` (upper) stored together on the pattern
of ``A`` such that ``(L @ U)[i, j] == A[i, j]`` on every stored position.
The classic row-wise IKJ formulation::

    for i = 0..n-1:
      for k in cols(row i) with k < i, ascending:
        a[i,k] /= a[k,k]                       # L entry
        for j in cols(row i) with j > k:
          if (k, j) stored: a[i,j] -= a[i,k] * a[k,j]

Row ``i`` reads factored row ``k`` for every stored ``A[i, k]``, ``k < i``,
giving the same lower-pattern dependence DAG as the other kernels.  This is
the kernel the paper uses for all of its per-matrix analysis (Figures 6-8)
because it is the hardest of the three to optimise.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.build import dag_from_matrix_lower
from ..graph.dag import DAG
from ..sparse.csr import CSRMatrix, INDEX_DTYPE
from ._trace import trace_self_plus_lower_neighbors
from .base import KernelError, SparseKernel
from .cost import spilu0_cost

__all__ = ["SpILU0", "spilu0_reference", "spilu0_in_order", "ilu0_defect", "split_lu"]


def _eliminate_row(
    i: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    diag_pos: np.ndarray,
) -> None:
    """Apply all updates to row ``i`` of the in-place LU storage."""
    lo, hi = int(indptr[i]), int(indptr[i + 1])
    cols_i = indices[lo:hi]
    row_i = data[lo:hi]  # view: updates write through
    n_lower = int(np.searchsorted(cols_i, i))
    for t in range(n_lower):
        k = int(cols_i[t])
        dk = data[diag_pos[k]]
        if dk == 0.0:
            raise KernelError(f"spilu0: zero pivot at row {k}")
        lik = row_i[t] / dk
        row_i[t] = lik
        # subtract lik * U(k, j) for stored j > k present in row i
        klo, khi = int(indptr[k]), int(indptr[k + 1])
        cols_k = indices[klo:khi]
        start = int(np.searchsorted(cols_k, k)) + 1  # strictly upper part of row k
        if start >= khi - klo:
            continue
        upper_cols = cols_k[start:]
        upper_vals = data[klo + start : khi]
        pos = np.searchsorted(cols_i, upper_cols)
        pos_c = np.minimum(pos, hi - lo - 1)
        match = cols_i[pos_c] == upper_cols
        if match.any():
            row_i[pos_c[match]] -= lik * upper_vals[match]


def _diag_positions(a: CSRMatrix) -> np.ndarray:
    """Flat index of each diagonal entry in the CSR data array."""
    n = a.n_rows
    diag_pos = np.empty(n, dtype=INDEX_DTYPE)
    for i in range(n):
        lo, hi = a.indptr[i], a.indptr[i + 1]
        k = np.searchsorted(a.indices[lo:hi], i)
        if k >= hi - lo or a.indices[lo + k] != i:
            raise KernelError(f"spilu0: row {i} is missing its diagonal entry")
        diag_pos[i] = lo + k
    return diag_pos


def spilu0_reference(a: CSRMatrix) -> CSRMatrix:
    """Sequential ILU(0); returns the combined LU factor on ``a``'s pattern."""
    diag_pos = _diag_positions(a)
    data = a.data.copy()
    for i in range(a.n_rows):
        _eliminate_row(i, a.indptr, a.indices, data, diag_pos)
    return a.with_data(data)


def spilu0_in_order(a: CSRMatrix, order: np.ndarray) -> CSRMatrix:
    """ILU(0) with rows processed in ``order``; asserts every dependence."""
    n = a.n_rows
    order = np.asarray(order, dtype=INDEX_DTYPE)
    if order.shape[0] != n or np.any(np.sort(order) != np.arange(n)):
        raise KernelError("spilu0: order must be a permutation of range(n)")
    diag_pos = _diag_positions(a)
    data = a.data.copy()
    done = np.zeros(n, dtype=bool)
    for i in order:
        lo, hi = a.indptr[i], a.indptr[i + 1]
        cols = a.indices[lo:hi]
        deps = cols[cols < i]
        if not np.all(done[deps]):
            missing = deps[~done[deps]][:5].tolist()
            raise KernelError(f"spilu0: row {int(i)} eliminated before rows {missing}")
        _eliminate_row(int(i), a.indptr, a.indices, data, diag_pos)
        done[i] = True
    return a.with_data(data)


def split_lu(factor: CSRMatrix) -> tuple:
    """Split the combined in-place factor into scipy ``(L, U)`` matrices.

    ``L`` carries a unit diagonal; ``U`` includes the stored diagonal.
    """
    import scipy.sparse as sp

    n = factor.n_rows
    rows_l, cols_l, vals_l = [], [], []
    rows_u, cols_u, vals_u = [], [], []
    for i, cols, vals in factor.iter_rows():
        lower = cols < i
        rows_l.extend([i] * int(lower.sum()))
        cols_l.extend(cols[lower].tolist())
        vals_l.extend(vals[lower].tolist())
        upper = cols >= i
        rows_u.extend([i] * int(upper.sum()))
        cols_u.extend(cols[upper].tolist())
        vals_u.extend(vals[upper].tolist())
    rows_l.extend(range(n))
    cols_l.extend(range(n))
    vals_l.extend([1.0] * n)
    l = sp.csr_matrix((vals_l, (rows_l, cols_l)), shape=(n, n))
    u = sp.csr_matrix((vals_u, (rows_u, cols_u)), shape=(n, n))
    return l, u


def ilu0_defect(a: CSRMatrix, factor: CSRMatrix) -> float:
    """Max relative defect ``|(L U - A)[i, j]|`` over the stored pattern of ``a``."""
    l, u = split_lu(factor)
    prod = (l @ u).tocsr()
    prod.sort_indices()
    worst = 0.0
    scale = float(np.abs(a.data).max()) or 1.0
    for i in range(a.n_rows):
        cols, vals = a.row(i)
        s, e = prod.indptr[i], prod.indptr[i + 1]
        prow, pval = prod.indices[s:e], prod.data[s:e]
        if prow.shape[0] == 0:
            got = np.zeros_like(vals)
        else:
            pos = np.clip(np.searchsorted(prow, cols), 0, prow.shape[0] - 1)
            got = np.where(prow[pos] == cols, pval[pos], 0.0)
        worst = max(worst, float(np.abs(got - vals).max(initial=0.0)))
    return worst / scale


class SpILU0(SparseKernel):
    """The SpILU0 kernel object (inspector + executor interface)."""

    name = "spilu0"

    def dag(self, a: CSRMatrix) -> DAG:
        """Dependence DAG from the strictly-lower pattern of ``a``."""
        return dag_from_matrix_lower(a)

    def cost(self, a: CSRMatrix) -> np.ndarray:
        return spilu0_cost(a)

    def memory_trace(self, a: CSRMatrix, *, line_elems: int = 8) -> Tuple[np.ndarray, np.ndarray]:
        """Trace over the full-pattern in-place factor storage."""
        return trace_self_plus_lower_neighbors(a, line_elems=line_elems)

    def memory_model(self, a: CSRMatrix, g: DAG | None = None, *, line_elems: int = 8):
        """Edge-based memory model over the full-pattern factor storage."""
        from .memory import factor_memory_model

        return factor_memory_model(a, g if g is not None else self.dag(a), line_elems=line_elems)

    def reference(self, a: CSRMatrix, b: np.ndarray | None = None) -> CSRMatrix:
        return spilu0_reference(a)

    def execute_in_order(
        self, a: CSRMatrix, order: np.ndarray, b: np.ndarray | None = None
    ) -> CSRMatrix:
        return spilu0_in_order(a, order)

    def verify(self, a: CSRMatrix, result, b: np.ndarray | None = None) -> float:
        return ilu0_defect(a, result)
