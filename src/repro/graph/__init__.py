"""DAG substrate: CSR-backed graphs, reductions, wavefronts, components."""

from .build import dag_from_lower_triangular, dag_from_matrix_lower, dag_to_matrix_pattern
from .coarsen import (
    Grouping,
    coarsen_dag,
    grouping_from_groups,
    grouping_from_labels,
    identity_grouping,
)
from .connected_components import (
    components_as_lists,
    connected_components_of_subset,
    shiloach_vishkin,
)
from .dag import DAG, gather_slices
from .generators import chain_dag, fan_dag, layered_dag, random_forest, series_parallel_dag
from .io import from_edge_list, read_edge_list, to_dot, to_edge_list, write_edge_list
from .topological import CycleError, is_acyclic, topological_order, verify_schedule_order
from .transitive_reduction import (
    transitive_edge_mask,
    transitive_edge_mask_reference,
    transitive_reduction_reference,
    transitive_reduction_two_hop,
)
from .wavefronts import Wavefronts, compute_wavefronts, level_of_vertices

__all__ = [
    "DAG",
    "gather_slices",
    "to_edge_list",
    "from_edge_list",
    "write_edge_list",
    "read_edge_list",
    "to_dot",
    "layered_dag",
    "random_forest",
    "chain_dag",
    "fan_dag",
    "series_parallel_dag",
    "dag_from_lower_triangular",
    "dag_from_matrix_lower",
    "dag_to_matrix_pattern",
    "Grouping",
    "grouping_from_labels",
    "grouping_from_groups",
    "identity_grouping",
    "coarsen_dag",
    "shiloach_vishkin",
    "connected_components_of_subset",
    "components_as_lists",
    "topological_order",
    "is_acyclic",
    "CycleError",
    "verify_schedule_order",
    "transitive_reduction_two_hop",
    "transitive_reduction_reference",
    "transitive_edge_mask",
    "transitive_edge_mask_reference",
    "Wavefronts",
    "compute_wavefronts",
    "level_of_vertices",
]
