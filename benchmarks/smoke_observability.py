"""Observability overhead + dormancy gate for CI.

Two promises from the observability layer, checked on a smoke-sized cell:

1. **<2% dormant overhead.**  Disabled instrumentation costs one guard —
   an attribute read on the module-global state slot, or a local
   ``is not None`` check — per site.  The gate measures the per-guard cost
   directly (amortised over a tight loop), takes a *generous upper bound*
   on the number of guard sites the smoke cell executes (every vertex,
   every edge, every partition — far more than are actually guarded), and
   asserts that ``guards x cost_per_guard`` stays under 2% of the measured
   cell runtime.  Bounding the product, instead of diffing two noisy
   wall-clock runs, keeps the gate deterministic on shared CI runners.

2. **Byte-identical records when off.**  Two dormant runs of the same
   harness cell must serialise to byte-identical JSON once wall-clock
   timing fields are normalised out, and an *enabled* run must match them
   too — tracing may never perturb a deterministic result field.

Usage::

    PYTHONPATH=src python benchmarks/smoke_observability.py [budget_ms]

``budget_ms`` bounds the smoke cell's inspector runtime (same spirit as
``smoke_inspector.py``); the overhead and identity gates are absolute.
"""

from __future__ import annotations

import json
import sys
import time

from repro.observability.state import STATE, observed
from repro.suite.harness import Harness
from repro.suite.matrices import small_suite
from repro.suite.storage import record_to_blob

DEFAULT_BUDGET_MS = 2000.0
OVERHEAD_LIMIT = 0.02
ROUNDS = 3

#: RunRecord fields derived from wall-clock readings — normalised to 0
#: before byte comparison (they differ between any two runs of anything)
_TIMING_FIELDS = ("inspector_seconds", "inspector_cycles", "nre", "stage_seconds")


def _normalised_json(records) -> str:
    blobs = []
    for r in records:
        blob = record_to_blob(r, encode_floats=False)
        for f in _TIMING_FIELDS:
            blob.pop(f, None)
        blobs.append(blob)
    return json.dumps(blobs, sort_keys=True)


def _guard_cost_seconds(iterations: int = 1_000_000) -> float:
    """Amortised cost of one dormant guard (`STATE.enabled` read)."""
    sink = False
    t0 = time.perf_counter()
    for _ in range(iterations):
        if STATE.enabled:
            sink = True  # pragma: no cover - state is dormant here
    elapsed = time.perf_counter() - t0
    assert not sink
    return elapsed / iterations


def _run_cell(spec):
    harness = Harness(machines=["laptop4"], kernels=["sptrsv"])
    t0 = time.perf_counter()
    records = harness.run_suite([spec])
    return records, time.perf_counter() - t0


def main(budget_ms: float = DEFAULT_BUDGET_MS) -> int:
    spec = min(small_suite(), key=lambda s: s.build().n_rows)
    a = spec.build()
    n, nnz = a.n_rows, int(a.indptr[-1])

    _run_cell(spec)  # warm-up: imports, allocator, caches
    best_s = float("inf")
    runs = []
    for _ in range(ROUNDS):
        records, elapsed = _run_cell(spec)
        runs.append(records)
        best_s = min(best_s, elapsed)

    # --- gate 1: dormant guard overhead bound -------------------------
    per_guard = _guard_cost_seconds()
    # upper bound on guarded events in the cell: one per vertex (executor
    # busy checks), one per edge (p2p wait checks), plus a wide allowance
    # for stage spans, dispatch wrappers, and per-partition checks across
    # every algorithm in the grid
    n_algorithms = len(runs[0])
    n_guards = n_algorithms * (n + nnz) + 10_000
    overhead_s = n_guards * per_guard
    ratio = overhead_s / best_s
    print(f"{spec.name}: cell best of {ROUNDS} = {best_s * 1e3:.1f} ms, "
          f"guard = {per_guard * 1e9:.1f} ns, "
          f"bound = {n_guards} guards -> {overhead_s * 1e3:.2f} ms "
          f"({ratio * 100:.2f}% of cell)")
    ok = True
    if ratio > OVERHEAD_LIMIT:
        print(f"FAIL: dormant overhead bound {ratio * 100:.2f}% exceeds "
              f"{OVERHEAD_LIMIT * 100:.0f}%", file=sys.stderr)
        ok = False

    # --- gate 2: byte-identical records when off ----------------------
    baseline = _normalised_json(runs[0])
    for i, records in enumerate(runs[1:], start=2):
        if _normalised_json(records) != baseline:
            print(f"FAIL: dormant run {i} produced different records",
                  file=sys.stderr)
            ok = False
    with observed():
        traced_records, _ = _run_cell(spec)
    if _normalised_json(traced_records) != baseline:
        print("FAIL: enabling observability changed deterministic record "
              "fields", file=sys.stderr)
        ok = False
    else:
        print(f"records: {len(runs[0])} per run, byte-identical across "
              f"{ROUNDS} dormant runs and 1 observed run")

    # --- budget (smoke-regression tripwire, same spirit as smoke_inspector)
    best_ms = best_s * 1e3
    if best_ms > budget_ms:
        print(f"FAIL: cell takes {best_ms:.0f} ms, budget is "
              f"{budget_ms:.0f} ms", file=sys.stderr)
        ok = False
    if ok:
        print(f"OK: within budget of {budget_ms:.0f} ms, overhead bound "
              f"under {OVERHEAD_LIMIT * 100:.0f}%, records stable")
    return 0 if ok else 1


if __name__ == "__main__":
    try:
        budget = float(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_BUDGET_MS
    except ValueError:
        print(
            f"usage: {sys.argv[0]} [budget_ms]  (budget_ms must be a number, "
            f"got {sys.argv[1]!r})",
            file=sys.stderr,
        )
        raise SystemExit(2)
    raise SystemExit(main(budget))
