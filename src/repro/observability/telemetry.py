"""Request-level telemetry for the serving stack.

The serving path (``FrontDoor`` → ``ScheduleBroker`` → tiers) crosses an
asyncio event loop, a worker thread pool, and — under single-flight
coalescing — *other requests'* threads.  This module defines the shared
vocabulary that keeps those pieces attributable to one request:

* **Request identity** — :func:`next_request_id` mints ``req-NNNNNN`` ids;
  :class:`RequestContext` is the envelope the front door attaches to a
  :class:`~repro.service.broker.ServeRequest` so the broker's
  worker-thread spans parent under the request's root span
  (``Tracer.attach`` consumes its ``parent`` context).
* **Span taxonomy** — the closed set of span names the serving path may
  emit (:data:`SPAN_TAXONOMY`); anything else in a request tree is a
  validation error, which is what keeps dashboards and tests honest.
* **Metric catalog** — :func:`metric_catalog` enumerates every metric
  name the repo is allowed to emit (plus a handful of documented prefix
  families for label-derived names).  ``statan`` rule L009 checks call
  sites statically; :func:`catalog_violations` checks a live registry for
  drift at runtime.
* **Tree assembly & validation** — :func:`request_trees` groups spans by
  request and :func:`validate_request_trees` asserts each request yields
  exactly one correctly parented, time-contained, taxonomy-clean span
  tree whose structure matches its declared outcome.
* **Snapshots** — :class:`MetricsSnapshotter` appends periodic JSONL
  registry snapshots (the dashboard's longitudinal input).

Everything here is read-side or dormant-by-default: nothing allocates
unless the ambient :data:`~repro.observability.state.STATE` switch is on.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from os import PathLike
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .metrics import MetricsRegistry
from .spans import Span, SpanContext

__all__ = [
    "REQUEST_SPAN",
    "BROKER_SPAN",
    "TIER_SPANS",
    "SPAN_TAXONOMY",
    "TIERS",
    "OUTCOMES",
    "LATENCY_BUCKETS",
    "FANIN_BUCKETS",
    "FSTRING_NAME_PREFIXES",
    "RequestContext",
    "next_request_id",
    "reset_request_ids",
    "metric_catalog",
    "METRIC_NAME_PREFIXES",
    "catalog_violations",
    "RequestTree",
    "request_trees",
    "validate_request_trees",
    "tier_breakdown",
    "MetricsSnapshotter",
    "load_snapshots",
]

# ----------------------------------------------------------------------
# span taxonomy

#: Root span of one request, opened by the front door on the event loop.
REQUEST_SPAN = "service.request"
#: The broker's resolution span, on whichever worker thread ran it.
BROKER_SPAN = "service.broker"
#: Per-tier resolution spans under the broker (plus ``queue_wait``, a
#: sibling of the broker span under the request root: it measures the
#: executor queue, i.e. time *before* the broker saw the request).
TIER_SPANS: Tuple[str, ...] = (
    "service.queue_wait",
    "service.coalesce_wait",
    "service.memory",
    "service.store.read",
    "service.store.write",
    "service.inspect",
    "service.verify",
    "service.degrade",
)
#: Every span name the serving path may emit.
SPAN_TAXONOMY = frozenset((REQUEST_SPAN, BROKER_SPAN) + TIER_SPANS)

#: Resolution tiers a successful request can be served from.
TIERS: Tuple[str, ...] = ("memory", "store", "inspected", "coalesced")
#: Root-span ``outcome`` tag values: the hit tier, or the failure mode.
OUTCOMES: Tuple[str, ...] = TIERS + ("shed", "deadline")

#: Latency histogram bounds: quarter-decade ladder from 10µs to ~178s.
#: Fine enough that bucket-interpolated p50/p99 are meaningful for the
#: sub-millisecond cache-hit regime *and* the seconds-scale inspect path.
LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (e / 4.0), 12) for e in range(-20, 10)
)

#: Single-flight fan-in histogram bounds (followers + leader per flight).
FANIN_BUCKETS: Tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 128, 256)


# ----------------------------------------------------------------------
# request identity

_REQUEST_IDS = itertools.count(1)


def next_request_id() -> str:
    """Mint a process-unique request id (``next`` on a count is atomic)."""
    return f"req-{next(_REQUEST_IDS):06d}"


def reset_request_ids() -> None:
    """Restart the id sequence (tests only — ids must be unique in prod)."""
    global _REQUEST_IDS
    _REQUEST_IDS = itertools.count(1)


@dataclass(frozen=True)
class RequestContext:
    """The telemetry envelope the front door pins to a request.

    ``parent`` is the root span's context (what the broker thread
    attaches); ``t_admit`` the tracer-clock reading at admission, from
    which the broker retrospectively records the ``queue_wait`` span.
    """

    request_id: str
    parent: Optional[SpanContext] = None
    t_admit: float = 0.0


# ----------------------------------------------------------------------
# the closed metric catalog

#: Prefix families for genuinely open-ended, label-derived names.  Keep
#: this list short: every entry weakens the closed-world check, so a
#: family belongs here only when its label set is unbounded by design.
METRIC_NAME_PREFIXES: Tuple[str, ...] = (
    # perf-lab per-cell series: benchmark/matrix/kernel/algorithm labels
    "perflab.",
)

#: Prefixes statan's L009 accepts for *f-string* metric names.  Wider
#: than :data:`METRIC_NAME_PREFIXES` because a call site interpolating a
#: site/scheduler/tier label cannot be resolved statically — the runtime
#: drift check (:func:`catalog_violations` over a live registry, run by
#: ``benchmarks/smoke_telemetry.py``) closes exactly that gap.
FSTRING_NAME_PREFIXES: Tuple[str, ...] = METRIC_NAME_PREFIXES + (
    "resilience.faults_fired.",
    "inspector.runs.",
    "service.",
)


def metric_catalog() -> Dict[str, str]:
    """Every metric name the repo may emit, mapped to its instrument kind.

    The catalog is *enumerated*, not pattern-matched: dynamic families
    (per fault site, per scheduler, per tier) are expanded from the same
    registries the emitting code reads, so adding a fault site or a
    scheduler extends the catalog automatically while a typo'd metric
    name stays a hard failure.
    """
    from ..resilience.faults import FAULT_SITES

    catalog: Dict[str, str] = {
        # inspector core (repro.core.hdagg)
        "inspector.vertices": "counter",
        "inspector.vertices_coarsened": "counter",
        "inspector.coarse_vertices": "gauge",
        "inspector.accumulated_pgp": "gauge",
        "inspector.pgp_at_merge": "histogram",
        "binpack.occupancy": "histogram",
        # model-executor simulator (trace CLI)
        "simulator.makespan_cycles": "gauge",
        "simulator.potential_gain": "gauge",
        # in-process schedule cache (L1)
        "schedule_cache.hits": "counter",
        "schedule_cache.misses": "counter",
        "schedule_cache.store_hits": "counter",
        "schedule_cache.store_write_errors": "counter",
        "schedule_cache.evictions": "counter",
        "schedule_cache.entries": "gauge",
        # fault injection
        "resilience.faults_fired": "counter",
        # persistent schedule store (L2)
        "store.writes": "counter",
        "store.hits": "counter",
        "store.misses": "counter",
        "store.quarantined": "counter",
        "store.manifest_repairs": "counter",
        "store.manifest_rebuilds": "counter",
        "store.evictions": "counter",
        "store.codec_errors": "counter",
        "store.quarantine_count": "gauge",
        "store.shard_occupancy": "gauge",
        "store.occupancy_bytes": "gauge",
        # broker lifetime counters (mirrors of BrokerStats)
        "service.requests": "counter",
        "service.memory_hits": "counter",
        "service.store_hits": "counter",
        "service.inspected": "counter",
        "service.coalesced": "counter",
        "service.rejected": "counter",
        "service.degraded": "counter",
        "service.retries": "counter",
        "service.store_write_errors": "counter",
        # request-level service telemetry
        "service.coalesce_fanin": "histogram",
        "service.queue_wait_seconds": "histogram",
        "service.sheds.frontdoor": "counter",
        "service.sheds.broker": "counter",
        "service.deadline_misses": "counter",
    }
    for site in FAULT_SITES:
        catalog[f"resilience.faults_fired.{site}"] = "counter"
    from ..schedulers import SCHEDULERS

    for name in SCHEDULERS:
        catalog[f"inspector.runs.{name}"] = "counter"
    for tier in TIERS:
        catalog[f"service.latency.tier.{tier}"] = "histogram"
    for outcome in ("ok", "degraded", "shed", "deadline"):
        catalog[f"service.latency.outcome.{outcome}"] = "histogram"
    return catalog


def catalog_violations(names: Iterable[str]) -> List[str]:
    """Emitted names not declared in the catalog (the drift check)."""
    catalog = metric_catalog()
    out = []
    for name in names:
        if name in catalog:
            continue
        if any(name.startswith(p) for p in METRIC_NAME_PREFIXES):
            continue
        out.append(name)
    return sorted(out)


# ----------------------------------------------------------------------
# span-tree assembly and validation


@dataclass
class RequestTree:
    """One request's spans, rooted and indexed for structural checks."""

    request_id: str
    root: Span
    spans: List[Span] = field(default_factory=list)  # root + descendants
    children: Dict[int, List[Span]] = field(default_factory=dict)

    @property
    def outcome(self) -> str:
        return str(self.root.attrs.get("outcome", ""))

    def named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def tier_seconds(self) -> Dict[str, float]:
        """Total time per tier span name (``service.`` prefix stripped)."""
        out: Dict[str, float] = {}
        for s in self.spans:
            if s.name in TIER_SPANS:
                short = s.name[len("service."):]
                out[short] = out.get(short, 0.0) + s.duration
        return out


def request_trees(spans: Iterable[Span]) -> Dict[str, RequestTree]:
    """Group spans into per-request trees keyed by request id.

    Roots are :data:`REQUEST_SPAN` spans (front-door driven) or, for
    broker-only callers, :data:`BROKER_SPAN` spans whose parent does not
    resolve to another recorded span.  Descendants are collected through
    ``parent_span_id`` links, which is exactly the cross-thread identity
    the tracer's context handoff maintains.
    """
    all_spans = [s for s in spans if s.span_id]
    by_id = {s.span_id: s for s in all_spans}
    children: Dict[int, List[Span]] = {}
    for s in all_spans:
        if s.parent_span_id in by_id:
            children.setdefault(s.parent_span_id, []).append(s)

    trees: Dict[str, RequestTree] = {}
    for s in all_spans:
        is_root = s.name == REQUEST_SPAN or (
            s.name == BROKER_SPAN and s.parent_span_id not in by_id
        )
        if not is_root:
            continue
        rid = str(s.attrs.get("request_id", f"span-{s.span_id}"))
        tree = RequestTree(request_id=rid, root=s)
        stack = [s]
        while stack:
            cur = stack.pop()
            tree.spans.append(cur)
            kids = sorted(children.get(cur.span_id, []), key=lambda c: c.t0)
            if kids:
                tree.children[cur.span_id] = kids
                stack.extend(kids)
        trees[rid] = tree
    return trees


def validate_request_trees(
    spans: Iterable[Span],
    *,
    expect: Optional[int] = None,
    eps: float = 1e-6,
    max_gap: Optional[float] = 0.25,
) -> List[str]:
    """Structural audit of request span trees; returns problem strings.

    Checks, per request: exactly one root carrying a request id and a
    taxonomy outcome tag; every span name in the taxonomy; every child
    time-contained in its parent (cross-thread timestamps share one
    monotonic clock, so containment is assertable to ``eps``); siblings
    non-overlapping; the tier structure implied by the outcome actually
    present (a ``memory`` outcome without a ``service.memory`` span means
    the instrumentation lost a rung); and — the *gapless* requirement —
    the broker span's direct children accounting for its duration up to
    ``max_gap`` of untracked bookkeeping.
    """
    span_list = [s for s in spans if s.name in SPAN_TAXONOMY or s.span_id]
    problems: List[str] = []
    for s in span_list:
        if s.name.startswith("service.") and s.name not in SPAN_TAXONOMY:
            problems.append(f"span name {s.name!r} not in the service taxonomy")
    trees = request_trees(span_list)
    if expect is not None and len(trees) != expect:
        problems.append(f"expected {expect} request trees, found {len(trees)}")

    #: outcome -> tier span that must appear somewhere in the tree
    required = {
        "memory": "service.memory",
        "store": "service.store.read",
        "inspected": "service.inspect",
        "coalesced": "service.coalesce_wait",
    }
    reachable = {s.span_id for t in trees.values() for s in t.spans}
    for s in span_list:
        if s.span_id and s.span_id not in reachable and s.name in SPAN_TAXONOMY:
            if s.name not in (REQUEST_SPAN, BROKER_SPAN):
                problems.append(f"orphan {s.name!r} span (id {s.span_id}) in no request tree")

    for rid, tree in sorted(trees.items()):
        outcome = tree.outcome
        if outcome not in OUTCOMES:
            problems.append(f"{rid}: root outcome {outcome!r} not in {OUTCOMES}")
        # containment + sibling ordering
        for pid, kids in tree.children.items():
            parent = next(s for s in tree.spans if s.span_id == pid)
            prev_end = None
            for kid in kids:
                if kid.t0 < parent.t0 - eps or kid.t1 > parent.t1 + eps:
                    problems.append(
                        f"{rid}: {kid.name} [{kid.t0:.6f},{kid.t1:.6f}] escapes "
                        f"parent {parent.name} [{parent.t0:.6f},{parent.t1:.6f}]"
                    )
                if prev_end is not None and kid.t0 < prev_end - eps:
                    problems.append(f"{rid}: {kid.name} overlaps its preceding sibling")
                prev_end = kid.t1
        need = required.get(outcome)
        if need and not tree.named(need):
            problems.append(f"{rid}: outcome {outcome!r} but no {need} span")
        if outcome in ("shed", "deadline") and tree.named("service.inspect"):
            # a request that was shed before inspection must not also have
            # inspected; deadline misses may have partially inspected only
            # when the deadline fired inside the chain — flag pure sheds
            if outcome == "shed":
                problems.append(f"{rid}: shed request carries an inspect span")
        # gaplessness of the broker span
        if max_gap is not None:
            for broker in tree.named(BROKER_SPAN):
                kids = tree.children.get(broker.span_id, [])
                covered = sum(k.duration for k in kids)
                if broker.duration - covered > max_gap:
                    problems.append(
                        f"{rid}: broker span has {broker.duration - covered:.3f}s "
                        f"untracked (> {max_gap}s gap budget)"
                    )
    return problems


def tier_breakdown(spans: Iterable[Span]) -> Dict[str, Dict[str, float]]:
    """Aggregate tier time across all request trees.

    Returns ``{tier: {"count": n, "seconds": total}}`` with tier names as
    in :meth:`RequestTree.tier_seconds` — the dashboard's and the replay
    harness's shared attribution shape.
    """
    out: Dict[str, Dict[str, float]] = {}
    for tree in request_trees(spans).values():
        for tier, secs in tree.tier_seconds().items():
            slot = out.setdefault(tier, {"count": 0.0, "seconds": 0.0})
            slot["count"] += 1.0
            slot["seconds"] += secs
    return out


# ----------------------------------------------------------------------
# periodic JSONL snapshots


class MetricsSnapshotter:
    """Append registry snapshots to a JSONL file, manually or on a timer.

    Each line is ``{"seq": n, "elapsed_s": t, "metrics": {...}}`` with
    ``metrics`` in :meth:`MetricsRegistry.as_dict` form — the same shape
    the Prometheus exporter and the dashboard consume, so one artifact
    feeds every read path.  ``start()`` runs a daemon thread snapshotting
    every ``interval`` seconds; ``stop()`` writes one final snapshot.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: Union[str, PathLike],
        *,
        interval: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.registry = registry
        self.path = str(path)
        self.interval = interval
        self._clock = clock
        self._t0 = clock()
        self._seq = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def snapshot(self) -> dict:
        """Write one snapshot line; returns the document written."""
        with self._lock:
            doc = {
                "seq": self._seq,
                "elapsed_s": self._clock() - self._t0,
                "metrics": self.registry.as_dict(),
            }
            self._seq += 1
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(doc, sort_keys=True) + "\n")
        return doc

    def start(self) -> "MetricsSnapshotter":
        if self._thread is not None:
            raise RuntimeError("snapshotter already started")

        def run() -> None:
            while not self._stop.wait(self.interval):
                self.snapshot()

        self._thread = threading.Thread(target=run, daemon=True, name="metrics-snapshot")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.snapshot()  # final state always lands

    def __enter__(self) -> "MetricsSnapshotter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def load_snapshots(path: Union[str, PathLike]) -> List[dict]:
    """Read a snapshot JSONL file back (skips blank lines)."""
    out: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
