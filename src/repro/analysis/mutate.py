"""Mutation harness: inject known-unsafe schedule edits, assert detection.

A verifier is only as good as its ability to *fail* — a checker that
certifies everything is indistinguishable from one that works until the
schedule it waves through corrupts a factorisation under load.  This module
provides four mutation classes, each modelled on a real inspector bug, and
a sweep that asserts every applicable mutation is caught by the dependence
verifier or the race detector:

``swap_across_dependence``
    Exchange the slots of the two endpoints of a cross-partition DAG edge
    (the classic transposed-assignment bug): the consumer now runs a whole
    wavefront before its producer.
``drop_barrier``
    Fuse two adjacent coarsened wavefronts joined by a cross-partition
    edge into one (a lost ``barrier.wait()``), re-numbering cores so the
    result is structurally pristine — only the dependence analyses can see
    the problem.
``reorder_within_partition``
    Swap two dependent vertices inside one width-partition (a broken
    intra-partition topological sort).  Invisible to the race detector by
    design — same partition means sequential — so this class pins the
    verifier's position ordering.
``merge_adjacent_wavefronts``
    Per-core concatenation of two adjacent wavefronts (unsafe coarsening,
    exactly what HDagg's LBP must *not* do): an edge whose endpoints sit on
    different cores becomes a same-wavefront cross-partition dependence.

Every mutant stays structurally valid (full cover, unique cores per level)
— mutations that a cheap shape check could catch would not exercise the
dependence analyses at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.schedule import Schedule, WidthPartition
from ..graph.dag import DAG
from .footprint import Footprint
from .races import detect_races
from .verifier import verify_dependences

__all__ = ["MutationResult", "MUTATIONS", "apply_mutation", "run_mutation_suite"]


def _clone_levels(schedule: Schedule) -> List[List[Tuple[int, np.ndarray]]]:
    return [
        [(part.core, part.vertices.copy()) for part in level] for level in schedule.levels
    ]


def _rebuild(schedule: Schedule, levels: List[List[Tuple[int, np.ndarray]]], tag: str) -> Schedule:
    return Schedule(
        n=schedule.n,
        levels=[
            [WidthPartition(core=c, vertices=v) for c, v in level if v.shape[0]]
            for level in levels
            if any(v.shape[0] for _, v in level)
        ],
        sync=schedule.sync,
        algorithm=f"{schedule.algorithm}+{tag}",
        n_cores=schedule.n_cores,
        fine_grained=schedule.fine_grained,
        meta={"mutation": tag},
    )


def _coordinates(schedule: Schedule) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    return schedule.level_of(), schedule.partition_of(), schedule.position_of()


def _cross_partition_edges(schedule: Schedule, g: DAG) -> Tuple[np.ndarray, np.ndarray]:
    """Edges whose endpoints are in different width-partitions."""
    src, dst = g.edge_list()
    pid = schedule.partition_of()
    keep = pid[src] != pid[dst]
    return src[keep], dst[keep]


def swap_across_dependence(
    schedule: Schedule, g: DAG, rng: np.random.Generator
) -> Optional[Schedule]:
    """Exchange the slots of a cross-partition edge's endpoints."""
    src, dst = _cross_partition_edges(schedule, g)
    if src.shape[0] == 0:
        return None
    e = int(rng.integers(src.shape[0]))
    u, v = int(src[e]), int(dst[e])
    levels = _clone_levels(schedule)
    for level in levels:
        for _, verts in level:
            u_at = np.nonzero(verts == u)[0]
            v_at = np.nonzero(verts == v)[0]
            if u_at.shape[0]:
                verts[u_at[0]] = v
            if v_at.shape[0]:
                verts[v_at[0]] = u
    return _rebuild(schedule, levels, "swap_across_dependence")


def _levels_with_cross_edge(schedule: Schedule, g: DAG, *, same_core: bool) -> List[int]:
    """Level indices ``k`` with an edge into level ``k+1`` that lands on a
    different partition (and, for ``same_core=False``, a different core)."""
    src, dst = g.edge_list()
    level, pid, _ = _coordinates(schedule)
    core = schedule.core_assignment()
    adjacent = level[dst] == level[src] + 1
    cross = pid[src] != pid[dst]
    if not same_core:
        cross &= core[src] != core[dst]
    ks = np.unique(level[src][adjacent & cross])
    return [int(k) for k in ks]


def drop_barrier(schedule: Schedule, g: DAG, rng: np.random.Generator) -> Optional[Schedule]:
    """Fuse levels ``k`` and ``k+1`` (kept as separate partitions)."""
    candidates = _levels_with_cross_edge(schedule, g, same_core=True)
    if not candidates:
        return None
    k = int(candidates[int(rng.integers(len(candidates)))])
    levels = _clone_levels(schedule)
    merged = levels[k] + levels[k + 1]
    # renumber cores: duplicate core ids within a level are a *structural*
    # defect, which would let the shape check mask the dependence bug
    merged = [(i, verts) for i, (_, verts) in enumerate(merged)]
    levels[k : k + 2] = [merged]
    return _rebuild(schedule, levels, "drop_barrier")


def reorder_within_partition(
    schedule: Schedule, g: DAG, rng: np.random.Generator
) -> Optional[Schedule]:
    """Swap a dependent pair inside one width-partition."""
    src, dst = g.edge_list()
    _, pid, pos = _coordinates(schedule)
    intra = pid[src] == pid[dst]
    if not np.any(intra):
        return None
    picks = np.nonzero(intra)[0]
    e = int(picks[int(rng.integers(picks.shape[0]))])
    u, v = int(src[e]), int(dst[e])
    levels = _clone_levels(schedule)
    for level in levels:
        for _, verts in level:
            u_at = np.nonzero(verts == u)[0]
            if u_at.shape[0]:
                v_at = np.nonzero(verts == v)[0]
                if v_at.shape[0] == 0:
                    continue
                verts[u_at[0]], verts[v_at[0]] = v, u
                return _rebuild(schedule, levels, "reorder_within_partition")
    return None


def merge_adjacent_wavefronts(
    schedule: Schedule, g: DAG, rng: np.random.Generator
) -> Optional[Schedule]:
    """Per-core concatenation of levels ``k`` and ``k+1`` (unsafe coarsening)."""
    candidates = _levels_with_cross_edge(schedule, g, same_core=False)
    if not candidates:
        return None
    k = int(candidates[int(rng.integers(len(candidates)))])
    levels = _clone_levels(schedule)
    by_core: Dict[int, List[np.ndarray]] = {}
    order: List[int] = []
    for idx, (core, verts) in enumerate(levels[k] + levels[k + 1]):
        slot = core if core >= 0 else -(idx + 1)  # dynamic partitions stay separate
        if slot not in by_core:
            by_core[slot] = []
            order.append(slot)
        by_core[slot].append(verts)
    merged = [
        (slot if slot >= 0 else -1, np.concatenate(by_core[slot])) for slot in order
    ]
    levels[k : k + 2] = [merged]
    return _rebuild(schedule, levels, "merge_adjacent_wavefronts")


#: mutation class name -> mutator ``(schedule, g, rng) -> Schedule | None``.
MUTATIONS: Dict[str, Callable[[Schedule, DAG, np.random.Generator], Optional[Schedule]]] = {
    "swap_across_dependence": swap_across_dependence,
    "drop_barrier": drop_barrier,
    "reorder_within_partition": reorder_within_partition,
    "merge_adjacent_wavefronts": merge_adjacent_wavefronts,
}


@dataclass
class MutationResult:
    """Outcome of injecting one mutation class into one schedule."""

    name: str
    applied: bool
    caught: bool
    caught_by: Tuple[str, ...] = ()
    detail: str = ""

    @property
    def escaped(self) -> bool:
        """An applied mutation no analysis flagged — the bad outcome."""
        return self.applied and not self.caught


def apply_mutation(
    name: str, schedule: Schedule, g: DAG, *, seed: int = 0
) -> Optional[Schedule]:
    """Apply one named mutation; ``None`` when inapplicable to this schedule."""
    return MUTATIONS[name](schedule, g, np.random.default_rng(seed))


def run_mutation_suite(
    schedule: Schedule,
    g: DAG,
    fp: Optional[Footprint] = None,
    *,
    seed: int = 0,
    names: Optional[List[str]] = None,
) -> List[MutationResult]:
    """Inject every mutation class; record which analysis caught each.

    A mutant counts as *caught* when the dependence verifier refutes it or
    (footprint given) the race detector flags it.  Inapplicable mutations
    (e.g. no intra-partition edge to reorder in a pure wavefront schedule)
    are reported with ``applied=False`` and do not count against the kill
    rate.
    """
    results: List[MutationResult] = []
    for name in names if names is not None else sorted(MUTATIONS):
        mutant = apply_mutation(name, schedule, g, seed=seed)
        if mutant is None:
            results.append(MutationResult(name=name, applied=False, caught=False))
            continue
        caught_by: List[str] = []
        detail = ""
        dep = verify_dependences(mutant, g, max_witnesses=1, stamp_meta=False)
        if not dep.ok:
            caught_by.append("verifier")
            detail = dep.witnesses[0].describe() if dep.witnesses else (dep.structural_error or "")
        if fp is not None:
            races = detect_races(mutant, fp, max_witnesses=1, stamp_meta=False)
            if not races.ok:
                caught_by.append("races")
                if not detail and races.witnesses:
                    detail = races.witnesses[0].describe()
        results.append(
            MutationResult(
                name=name,
                applied=True,
                caught=bool(caught_by),
                caught_by=tuple(caught_by),
                detail=detail,
            )
        )
    return results
