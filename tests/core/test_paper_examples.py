"""Worked-example tests in the spirit of the paper's Figures 1-3.

The figures' full edge lists are not recoverable from the text, so these
tests use `paper_like_dag` (see conftest) — a 13-vertex DAG engineered to
exhibit the same phenomena the figures illustrate — and assert the
*described* behaviours: transitive edges removed, subtrees found and
grouped, wavefronts merged until balance breaks, fewer barriers than plain
wavefront scheduling.
"""

import numpy as np
import pytest

from repro.core import hdagg, lbp_coarsen, subtree_grouping
from repro.graph import (
    coarsen_dag,
    compute_wavefronts,
    transitive_reduction_two_hop,
)
from repro.schedulers import SCHEDULERS


def test_transitive_edges_removed(paper_like_dag):
    g = paper_like_dag
    r = transitive_reduction_two_hop(g)
    assert not r.has_edge(1, 3)  # via 2
    assert not r.has_edge(5, 8)  # via 7
    assert not r.has_edge(9, 12)  # via 11
    assert r.n_edges == g.n_edges - 3


def test_subtrees_found_after_reduction(paper_like_dag):
    """Vertices with a single outgoing edge chain into their sink's group —
    the {11, 12}-style groups of Figure 2(b)."""
    r = transitive_reduction_two_hop(paper_like_dag)
    grouping = subtree_grouping(r)
    sets = {frozenset(g.tolist()) for g in grouping.groups}
    assert frozenset({10}) in sets or any(10 in s and len(s) > 1 for s in sets)
    # 12's only parent 11 has out-degree 1 -> grouped, like the paper's {11, 12}
    assert any({11, 12} <= s for s in sets)
    # fewer groups than vertices: aggregation really happened
    assert grouping.n_groups < paper_like_dag.n


def test_hdagg_uses_fewer_barriers_than_wavefront(paper_like_dag):
    g = paper_like_dag
    cost = np.ones(g.n)
    waves = compute_wavefronts(g)
    s = hdagg(g, cost, 2, epsilon=0.6)
    s.validate(g)
    assert s.n_levels < waves.n_levels  # Figure 1(e): 3 barriers vs 5


def test_all_five_schedules_valid_on_example(paper_like_dag):
    """Figure 1: every algorithm produces a correct schedule for the DAG."""
    g = paper_like_dag
    cost = np.ones(g.n)
    for name in ("hdagg", "wavefront", "spmp", "lbc", "dagp", "mkl", "serial"):
        builder = SCHEDULERS[name]
        s = builder(g, cost, 2) if name != "serial" else builder(g, cost)
        s.validate(g)


def test_lbp_merge_then_cut(paper_like_dag):
    """The LBP walk merges early waves and cuts when balance breaks, like
    the highlighted path of Figure 3."""
    r = transitive_reduction_two_hop(paper_like_dag)
    grouping = subtree_grouping(r)
    g2 = coarsen_dag(r, grouping)
    cost = grouping.group_costs(np.ones(paper_like_dag.n))
    res = lbp_coarsen(g2, cost, p=2, epsilon=0.34)
    assert 1 <= len(res.coarsened) < res.waves.n_levels


def test_schedule_structure_matches_figure2d_style(paper_like_dag):
    """Coarsened wavefronts hold width-partitions that run one per core."""
    s = hdagg(paper_like_dag, np.ones(13), 2, epsilon=0.6)
    for level in s.levels:
        cores = [part.core for part in level if part.core >= 0]
        assert len(cores) == len(set(cores))
        assert len(level) <= 2 or s.fine_grained
