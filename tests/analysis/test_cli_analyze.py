"""The ``hdagg-bench analyze`` entry point and its harness integration."""

import json

import pytest

from repro.analysis.cli import analyze_grid, analyze_main
from repro.suite.cli import main as suite_main
from repro.suite.matrices import SUITE

SMALL = "mesh2d-s"
FAST = ["--matrices", SMALL, "--kernels", "sptrsv", "--schedulers", "hdagg", "wavefront",
        "--cores", "2"]


def test_analyze_clean_exit_zero(capsys):
    assert analyze_main(FAST) == 0
    out = capsys.readouterr()
    assert "ok" in out.out and "0 findings" in out.err


def test_analyze_via_suite_cli_dispatch(capsys):
    assert suite_main(["analyze"] + FAST) == 0
    assert "0 findings" in capsys.readouterr().err


def test_analyze_requires_a_selection(capsys):
    assert analyze_main([]) == 2
    assert "nothing to analyze" in capsys.readouterr().err


def test_analyze_rejects_unknown_names(capsys):
    assert analyze_main(["--matrices", SMALL, "--kernels", "nope"]) == 2
    assert analyze_main(["--matrices", SMALL, "--schedulers", "nope"]) == 2


def test_analyze_json_dump(tmp_path, capsys):
    path = tmp_path / "analyze.json"
    assert analyze_main(FAST + ["--mutate", "--json", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert payload["n_findings"] == 0
    row = payload["rows"][0]
    assert row["ok"] and row["verifier"]["ok"] and row["races"]["ok"]
    assert row["mutations"]["caught"] == row["mutations"]["applied"]
    assert not row["mutations"]["escaped"]


def test_analyze_trace_mode(capsys):
    assert analyze_main(FAST + ["--trace"]) == 0


def test_analyze_grid_rows_cover_the_grid():
    specs = [s for s in SUITE if s.name == SMALL]
    rows = analyze_grid(specs, kernels=("sptrsv", "spic0"), schedulers=["hdagg", "mkl"],
                        cores=2)
    combos = {(r["kernel"], r["algorithm"]) for r in rows}
    # MKL is SpTRSV-only: it must be dropped from the factorisation kernels
    assert combos == {("sptrsv", "hdagg"), ("sptrsv", "mkl"), ("spic0", "hdagg")}
    assert all(r["ok"] for r in rows)


def test_analyze_grid_rejects_footprintless_kernel():
    specs = [s for s in SUITE if s.name == SMALL]
    with pytest.raises(KeyError, match="footprint"):
        analyze_grid(specs, kernels=("gauss_seidel",), schedulers=["hdagg"])


def test_harness_records_carry_verify_timing():
    """Acceptance: verifier runtime lands in RunRecord.stage_seconds."""
    from repro.suite.harness import Harness

    spec = next(s for s in SUITE if s.name == SMALL)
    records = Harness(machines=["laptop4"], kernels=["sptrsv"]).run_suite([spec])
    assert records
    for r in records:
        if not r.schedule_cached:
            assert r.stage_seconds.get("verify", 0.0) > 0.0
