"""The :class:`Pass` and :class:`PassGroup` model, and the artifact context.

A *pass* is one inspector stage with a declared
:class:`~repro.passes.contracts.Contract`; a *pass group* is an ordered
list of passes plus the artifacts and invariants the driver supplies — a
scheduler is a pass group (pymtl3-style: ``SimpleSim`` is to pymtl3 what
``hdagg`` is to this registry).  Groups are plain data: they can be
constructed ill-formed on purpose, which is exactly what
:func:`repro.statan.verify_pipeline` exists to reject before execution.

Pass implementations follow two hard rules (both machine-checked):

* **No input mutation** — a pass reads artifacts from the
  :class:`PassContext` and returns *new* products; it never mutates what
  it read (``statan`` lint rule L008 enforces the idiom, and the
  ``input-immutable`` invariant documents it in contracts).
* **Honest products** — the mapping returned by ``run`` must carry
  exactly the artifacts the contract declares under ``produces``; the
  executor refuses anything else at runtime, the verifier at plan time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from .contracts import Contract

__all__ = ["Pass", "PassGroup", "PassContext", "MissingArtifactError"]

#: incremental-repair policies a pass can declare (see
#: :func:`repro.passes.incremental.plan_repair`)
REPAIR_POLICIES = ("recompute", "splice", "replay")


class MissingArtifactError(KeyError):
    """A pass (or caller) asked the context for an artifact that is absent."""

    def __init__(self, name: str, available: Tuple[str, ...]) -> None:
        super().__init__(name)
        self.artifact = name
        self.available = available

    def __str__(self) -> str:
        return (
            f"artifact {self.artifact!r} is not in the context "
            f"(available: {sorted(self.available)})"
        )


class PassContext:
    """Artifact store threaded through one pipeline execution.

    Holds the named artifacts plus the runtime collaborators a pass may
    need (the stage timer, the backend spec, the pipeline options).  The
    context is the *only* channel between passes — passes never call each
    other directly.
    """

    def __init__(
        self,
        artifacts: Optional[Mapping[str, Any]] = None,
        *,
        timer: Any = None,
        spec: Any = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self._artifacts: Dict[str, Any] = dict(artifacts or {})
        self.timer = timer
        self.spec = spec
        self.options: Dict[str, Any] = dict(options or {})

    def has(self, name: str) -> bool:
        return name in self._artifacts

    def get(self, name: str) -> Any:
        try:
            return self._artifacts[name]
        except KeyError:
            raise MissingArtifactError(name, tuple(self._artifacts)) from None

    __getitem__ = get

    def put(self, name: str, value: Any) -> None:
        self._artifacts[name] = value

    def names(self) -> Tuple[str, ...]:
        return tuple(self._artifacts)


@dataclass(frozen=True)
class Pass:
    """One inspector stage with its contract and instrumentation metadata.

    ``run`` takes the context and returns the produced artifacts as a
    mapping (``{"ReducedDAG": ...}``); the executor stores them.  The
    observability / resilience metadata mirrors the idioms the inline
    inspector used: ``timer_label`` names the :class:`StageTimer` stage,
    ``span`` the ``inspect/<stage>`` span, ``fault_label`` the
    ``inspector.stage`` fault-injection label.  ``stage`` binds the pass
    to the backend registry (tier selection + the differential oracle);
    ``tiers`` is the set of tiers the pass declares it can execute under.
    ``repair`` is the incremental policy: ``recompute`` (cheap, re-run
    exactly), ``splice`` (diff-driven partial recomputation), or
    ``replay`` (reuse verbatim when inputs are clean).
    """

    name: str
    contract: Contract
    run: Callable[[PassContext], Mapping[str, Any]]
    stage: Optional[str] = None
    tiers: Tuple[str, ...] = field(default=())
    timer_label: Optional[str] = None
    span: Optional[str] = None
    span_attrs: Optional[Callable[[PassContext], Dict[str, Any]]] = None
    fault_label: Optional[str] = None
    repair: str = "recompute"

    def __post_init__(self) -> None:
        if self.repair not in REPAIR_POLICIES:
            raise ValueError(
                f"unknown repair policy {self.repair!r}; expected one of {REPAIR_POLICIES}"
            )


@dataclass(frozen=True)
class PassGroup:
    """An ordered pass list plus the driver's side of the contract.

    ``inputs`` are the artifacts the driver seeds the context with;
    ``assumes`` the invariants the driver guarantees on them (kernels
    build id-topological, acyclic DAGs); ``outputs`` what the group must
    have produced when it finishes.  Groups are registered per scheduler
    in :mod:`repro.passes.registry`.
    """

    name: str
    passes: Tuple[Pass, ...]
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...] = ("Schedule",)
    assumes: Tuple[str, ...] = ()
    description: str = ""

    def pass_named(self, name: str) -> Pass:
        for p in self.passes:
            if p.name == name:
                return p
        raise KeyError(f"no pass named {name!r} in group {self.name!r}")
