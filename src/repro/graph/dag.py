"""CSR-backed directed acyclic graph used by every inspector algorithm.

Vertices are the iterations of the sparse kernel's outermost loop; a directed
edge ``i -> j`` means iteration ``i`` must complete before iteration ``j``
(``i`` is a *parent* of ``j``), matching the paper's notation in Section IV-A.

The DAGs produced from triangular sparse kernels have a convenient property:
every edge satisfies ``src < dst`` (iteration order is a topological order).
We call this *id-topological*.  The inspectors exploit it for one-pass level
computation; :meth:`DAG.is_id_topological` checks it and
:mod:`repro.graph.topological` provides the general path.

Storage is out-edge CSR (``indptr``/``indices``); the in-edge (parent) CSR is
materialised lazily and cached, since step 1 of HDagg and transitive
reduction are parent-driven.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..sparse.csr import INDEX_DTYPE

__all__ = ["DAG", "gather_slices"]


def gather_slices(indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Concatenate ``indices[indptr[v]:indptr[v+1]]`` for all ``v`` in ``nodes``.

    This is the vectorized ragged gather used by frontier expansions (BFS,
    Kahn levels, component sweeps): no Python-level loop over ``nodes``.
    """
    nodes = np.asarray(nodes, dtype=INDEX_DTYPE)
    if nodes.size == 0:
        return np.empty(0, dtype=indices.dtype)
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    # offset of each output position within its slice
    cum = np.cumsum(counts)
    within = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(cum - counts, counts)
    return indices[np.repeat(starts, counts) + within]


class DAG:
    """Directed acyclic graph over ``n`` integer vertices in out-edge CSR form.

    Parameters
    ----------
    n:
        Number of vertices.
    indptr, indices:
        Out-edge CSR arrays: children of ``v`` are
        ``indices[indptr[v]:indptr[v+1]]``, sorted ascending, duplicate-free.
    check:
        Validate the invariants (sortedness, ranges).  Acyclicity is *not*
        checked here (it is O(V+E)); use
        :func:`repro.graph.topological.topological_order` when needed.
    """

    __slots__ = ("n", "indptr", "indices", "_in_ptr", "_in_idx")

    def __init__(self, n: int, indptr, indices, *, check: bool = True) -> None:
        self.n = int(n)
        self.indptr = np.ascontiguousarray(indptr, dtype=INDEX_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        self._in_ptr: np.ndarray | None = None
        self._in_idx: np.ndarray | None = None
        if check:
            self._validate()
        self.indptr.flags.writeable = False
        self.indices.flags.writeable = False

    def _validate(self) -> None:
        if self.indptr.shape[0] != self.n + 1 or self.indptr[0] != 0:
            raise ValueError("bad indptr")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        m = int(self.indptr[-1])
        if self.indices.shape[0] != m:
            raise ValueError("indices length mismatch")
        if m:
            if self.indices.min() < 0 or self.indices.max() >= self.n:
                raise ValueError("vertex id out of range")
            if m > 1:
                interior = np.ones(m - 1, dtype=bool)
                boundaries = self.indptr[1:-1]
                interior[boundaries[(boundaries > 0) & (boundaries < m)] - 1] = False
                if np.any((np.diff(self.indices) <= 0) & interior):
                    raise ValueError("children must be strictly increasing per vertex")
        # no self-loops
        row_of = np.repeat(np.arange(self.n, dtype=INDEX_DTYPE), np.diff(self.indptr))
        if np.any(row_of == self.indices):
            raise ValueError("self-loop detected")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, src, dst, *, dedup: bool = True) -> "DAG":
        """Build from parallel edge arrays ``src[i] -> dst[i]``."""
        src = np.asarray(src, dtype=INDEX_DTYPE)
        dst = np.asarray(dst, dtype=INDEX_DTYPE)
        if src.shape != dst.shape:
            raise ValueError("src/dst length mismatch")
        if src.size:
            pair = np.stack([src, dst], axis=1)
            if dedup:
                pair = np.unique(pair, axis=0)
            else:
                order = np.lexsort((dst, src))
                pair = pair[order]
            src, dst = pair[:, 0], pair[:, 1]
        indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        return cls(n, indptr, dst)

    @classmethod
    def empty(cls, n: int) -> "DAG":
        """DAG with ``n`` vertices and no edges."""
        return cls(n, np.zeros(n + 1, dtype=INDEX_DTYPE), np.empty(0, dtype=INDEX_DTYPE), check=False)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return int(self.indptr[-1])

    def children(self, v: int) -> np.ndarray:
        """Out-neighbours of ``v`` (view)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def out_degree(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.indptr)

    def _build_in_edges(self) -> None:
        counts = np.bincount(self.indices, minlength=self.n)
        in_ptr = np.zeros(self.n + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=in_ptr[1:])
        src_of = np.repeat(np.arange(self.n, dtype=INDEX_DTYPE), np.diff(self.indptr))
        order = np.argsort(self.indices, kind="stable")
        self._in_ptr = in_ptr
        self._in_idx = src_of[order]

    @property
    def in_ptr(self) -> np.ndarray:
        """In-edge CSR pointer (parents of ``v`` at ``in_idx[in_ptr[v]:in_ptr[v+1]]``)."""
        if self._in_ptr is None:
            self._build_in_edges()
        return self._in_ptr

    @property
    def in_idx(self) -> np.ndarray:
        """In-edge CSR indices, sorted per vertex (stable construction)."""
        if self._in_idx is None:
            self._build_in_edges()
        return self._in_idx

    def parents(self, v: int) -> np.ndarray:
        """In-neighbours of ``v`` (view)."""
        return self.in_idx[self.in_ptr[v] : self.in_ptr[v + 1]]

    def in_degree(self) -> np.ndarray:
        """In-degree of every vertex."""
        return np.diff(self.in_ptr)

    def edge_list(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(src, dst)`` arrays of all edges in CSR order."""
        src = np.repeat(np.arange(self.n, dtype=INDEX_DTYPE), np.diff(self.indptr))
        return src, self.indices.copy()

    def sinks(self) -> np.ndarray:
        """Vertices with no outgoing edges (Algorithm 1, Line 2 seeds)."""
        return np.nonzero(np.diff(self.indptr) == 0)[0].astype(INDEX_DTYPE)

    def sources(self) -> np.ndarray:
        """Vertices with no incoming edges (wavefront 0)."""
        return np.nonzero(self.in_degree() == 0)[0].astype(INDEX_DTYPE)

    def reverse(self) -> "DAG":
        """DAG with every edge flipped."""
        return DAG(self.n, self.in_ptr.copy(), self.in_idx.copy(), check=False)

    def is_id_topological(self) -> bool:
        """True when every edge satisfies ``src < dst``."""
        src, dst = self.edge_list()
        return bool(np.all(src < dst))

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search in ``children(u)``."""
        ch = self.children(u)
        k = np.searchsorted(ch, v)
        return bool(k < ch.shape[0] and ch[k] == v)

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(src, dst)`` pairs — for tests and tiny examples only."""
        for v in range(self.n):
            for c in self.children(v):
                yield v, int(c)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DAG(n={self.n}, edges={self.n_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DAG):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:
        raise TypeError("DAG is not hashable")
