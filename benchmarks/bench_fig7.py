"""Figure 7: load-imbalance ratio per matrix/algorithm (SpILU0, Intel).

The ratio counts (coarsened) wavefronts with fewer independent workloads
than cores.  Paper shape: DAGP worst, LBC pinned at ~50% (two coarsened
wavefronts, one starved), SpMP/Wavefront lowest, HDagg in between.
"""

import numpy as np

from _common import write_report
from repro.suite import fig7_imbalance_ratio, format_table


def test_fig7(benchmark, records_intel, output_dir):
    headers, rows, data = benchmark(
        fig7_imbalance_ratio, records_intel, kernel="spilu0", machine="intel20"
    )
    write_report(
        output_dir,
        "fig7_intel20",
        format_table(headers, rows, title="Figure 7: load imbalance ratio (SpILU0, intel20)"),
    )

    def avg(algo):
        vals = [v for v in data[algo].values() if np.isfinite(v)]
        return float(np.mean(vals))

    # DAGP has the highest imbalance ratio (paper: "DAGP has the highest
    # load imbalance ratio compared to other algorithms").
    assert avg("dagp") >= max(avg(a) for a in ("hdagg", "spmp", "wavefront")) - 0.05
    # LBC's two-wavefront structure pins it near 50%.
    assert 0.25 <= avg("lbc") <= 0.75
    # every ratio is a valid fraction
    for algo, vals in data.items():
        for v in vals.values():
            assert 0.0 <= v <= 1.0
