"""Incremental re-inspection: repair a schedule after a small pattern change.

Solver pipelines re-factorize: a few rows of the factor change (pivot
perturbation, partial refactorization, mesh-local updates) while the rest
of the sparsity pattern — and therefore the dependence DAG, the subtree
grouping, and most of the LBP walk — is untouched.  A full re-inspection
pays the whole Algorithm-1 pipeline again; this module repairs the cached
inspection instead:

1. :class:`PatternDelta` names the row-level difference (rows added,
   removed, or retained-with-changed-columns) via a monotone old→new row
   map; :func:`diff_dag` builds one and :func:`changed_rows` extracts the
   structurally-changed retained rows.
2. :func:`repair_schedule` re-runs only the cheap global stages (two-hop
   reduction, subtree grouping — both fractions of the pipeline), then
   *diffs* everything downstream: it matches old groups to new groups,
   marks the dirty ones, splices the coarsened DAG ``G''`` row-by-row
   (clean rows are id-remapped from the old ``G''``), re-walks LBP only
   across the dirty wavefront window (reusing the old walk's prefix and
   suffix verbatim — the walk's state fully resets at every cut, so clean
   cut-to-cut spans replay bit-for-bit), and re-expands only the window's
   coarsened wavefronts.
3. :class:`IncrementalScheduleCache` wires this into the structure-keyed
   schedule cache: an exact-key miss whose *parameter family* (kernel,
   algorithm, ``p``, ``epsilon``, backend, options) was seen before
   becomes a repair instead of a full inspection.

The contract is strict: when ``mode == "repaired"`` the output schedule is
**bit-identical** to a full re-inspection of the new pattern (enforced by
the hypothesis suite in ``tests/core/test_incremental.py``).  Every guard
that cannot cheaply prove identity falls back to ``mode == "full"``, which
is simply a fresh :func:`inspect_with_artifacts` call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph.coarsen import Grouping, identity_grouping
from ..graph.dag import DAG, gather_slices
from ..graph.wavefronts import compute_wavefronts
from ..passes import build_hdagg_group, plan_repair
from ..sparse.csr import INDEX_DTYPE
from .backends import BackendSpec, resolve_stage
from .hdagg import _expand_cw, _grouping_csr, _hdagg_pipeline
from .lbp import CoarsenedWavefront, LBPDecision, LBPResult, _RangeComponents
from .pgp import DEFAULT_EPSILON, pgp
from .schedule import Schedule, WidthPartition
from .schedule_cache import ScheduleCache

__all__ = [
    "PatternDelta",
    "diff_dag",
    "changed_rows",
    "InspectionArtifacts",
    "inspect_with_artifacts",
    "RepairResult",
    "repair_schedule",
    "IncrementalScheduleCache",
    "family_key",
]

_FAMILY_KEY_VERSION = b"repro-family-key-v1\0"

#: pipeline options a repair understands; anything else forces a full run
_DEFAULT_OPTIONS = {
    "aggregate": True,
    "transitive_reduce": True,
    "bin_pack": True,
    "group_cost_cap_fraction": 0.25,
    "sync": "barrier",
}


# ----------------------------------------------------------------------
# Pattern deltas
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PatternDelta:
    """Row-level difference between an old and a new sparsity pattern.

    ``row_map[i]`` is the new row id of old row ``i``, or ``-1`` when the
    row was removed.  The map must be strictly increasing over retained
    rows — row insertion and deletion preserve the relative order of the
    survivors, which is what lets the repair path reuse sorted vertex
    arrays without re-sorting.  New rows are exactly the new ids missing
    from the map's image.
    """

    n_old: int
    n_new: int
    row_map: np.ndarray

    def __post_init__(self) -> None:
        rm = np.ascontiguousarray(self.row_map, dtype=INDEX_DTYPE)
        object.__setattr__(self, "row_map", rm)
        if rm.shape[0] != self.n_old:
            raise ValueError(f"row_map has length {rm.shape[0]}, expected {self.n_old}")
        kept = rm[rm >= 0]
        if kept.size:
            if int(kept.max()) >= self.n_new:
                raise ValueError("row_map target out of range")
            if kept.size > 1 and np.any(np.diff(kept) <= 0):
                raise ValueError("row_map must be strictly increasing on retained rows")

    @classmethod
    def identity(cls, n: int) -> "PatternDelta":
        """Same row count, same numbering (columns may still have changed)."""
        return cls(n, n, np.arange(n, dtype=INDEX_DTYPE))

    @property
    def retained_old(self) -> np.ndarray:
        """Old ids of retained rows (ascending)."""
        return np.flatnonzero(self.row_map >= 0).astype(INDEX_DTYPE, copy=False)

    @property
    def retained_new(self) -> np.ndarray:
        """New ids of retained rows, aligned with :attr:`retained_old`."""
        return self.row_map[self.retained_old]

    @property
    def removed(self) -> np.ndarray:
        """Old ids of removed rows."""
        return np.flatnonzero(self.row_map < 0).astype(INDEX_DTYPE, copy=False)

    @property
    def added(self) -> np.ndarray:
        """New ids of added rows."""
        mask = np.ones(self.n_new, dtype=bool)
        mask[self.retained_new] = False
        return np.flatnonzero(mask).astype(INDEX_DTYPE, copy=False)

    @property
    def is_identity(self) -> bool:
        """True when no rows were added or removed (ids are unchanged)."""
        return self.n_old == self.n_new and self.removed.size == 0


def diff_dag(g_old: DAG, g_new: DAG, row_map: Optional[np.ndarray] = None) -> PatternDelta:
    """Delta between two dependence DAGs.

    Without ``row_map`` the DAGs must have equal vertex counts and rows
    are matched by id; pass an explicit map when rows were inserted or
    deleted (the caller knows the renumbering, the DAGs alone do not).
    """
    if row_map is None:
        if g_old.n != g_new.n:
            raise ValueError(
                f"row_map required when vertex counts differ ({g_old.n} vs {g_new.n})"
            )
        return PatternDelta.identity(g_old.n)
    return PatternDelta(g_old.n, g_new.n, np.asarray(row_map, dtype=INDEX_DTYPE))


def changed_rows(g_old: DAG, g_new: DAG, delta: PatternDelta) -> np.ndarray:
    """New ids of retained rows whose out-edge lists differ.

    Old targets are pushed through ``delta.row_map`` before comparison, so
    an edge to a removed vertex — or to a renumbered one that moved — reads
    as a change.  Fully vectorized: rows with equal lengths are compared as
    one flat gather, mismatches mapped back to their row via ``np.repeat``.
    """
    old_ids = delta.retained_old
    new_ids = delta.row_map[old_ids]
    if old_ids.size == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    cnt_old = g_old.indptr[old_ids + 1] - g_old.indptr[old_ids]
    cnt_new = g_new.indptr[new_ids + 1] - g_new.indptr[new_ids]
    diff_len = cnt_old != cnt_new
    same = ~diff_len
    sel_old, sel_new = old_ids[same], new_ids[same]
    bad = np.zeros(sel_old.shape[0], dtype=bool)
    a = gather_slices(g_old.indptr, g_old.indices, sel_old)
    if a.size:
        b = gather_slices(g_new.indptr, g_new.indices, sel_new)
        mismatch = delta.row_map[a] != b
        if mismatch.any():
            rows = np.repeat(
                np.arange(sel_old.shape[0], dtype=INDEX_DTYPE), cnt_old[same]
            )
            bad[np.bincount(rows[mismatch], minlength=sel_old.shape[0]) > 0] = True
    return np.sort(np.concatenate((new_ids[diff_len], sel_new[bad])))


# ----------------------------------------------------------------------
# Inspection artifacts
# ----------------------------------------------------------------------
@dataclass
class InspectionArtifacts:
    """Every intermediate Algorithm-1 product, kept for later repair."""

    g: DAG
    cost: np.ndarray
    p: int
    epsilon: float
    g_base: DAG  # reduced DAG (== g when reduction/aggregation disabled)
    grouping: Grouping
    g2: DAG  # coarsened DAG G''
    group_cost: np.ndarray
    lbp: LBPResult
    schedule: Schedule
    backend: str
    options: dict = field(default_factory=lambda: dict(_DEFAULT_OPTIONS))


def inspect_with_artifacts(
    g: DAG,
    cost: np.ndarray,
    p: int,
    epsilon: float = DEFAULT_EPSILON,
    *,
    backend: "BackendSpec | str | None" = None,
    **options,
) -> InspectionArtifacts:
    """Full HDagg inspection that keeps its intermediates.

    Identical to :func:`repro.core.hdagg.hdagg` (same pipeline call, same
    schedule) but returns the stage products a later
    :func:`repair_schedule` needs.  ``options`` accepts the :func:`hdagg`
    keyword switches (``aggregate``, ``transitive_reduce``, ``bin_pack``,
    ``group_cost_cap_fraction``, ``sync``).
    """
    unknown = set(options) - set(_DEFAULT_OPTIONS)
    if unknown:
        raise TypeError(f"unknown inspection options: {sorted(unknown)}")
    opts = dict(_DEFAULT_OPTIONS)
    opts.update(options)
    schedule, internals = _hdagg_pipeline(g, cost, p, epsilon, backend=backend, **opts)
    empty_lbp = LBPResult(
        coarsened=[],
        waves=compute_wavefronts(DAG.empty(0)),
        fine_grained=False,
        accumulated_pgp=0.0,
        decisions=[],
    )
    return InspectionArtifacts(
        g=g,
        cost=np.asarray(cost, dtype=np.float64),
        p=p,
        epsilon=epsilon,
        g_base=internals.get("g_base", g),
        grouping=internals.get("grouping", identity_grouping(g.n)),
        g2=internals.get("g2", DAG.empty(0)),
        group_cost=internals.get("group_cost", np.empty(0, dtype=np.float64)),
        lbp=internals.get("lbp", empty_lbp),
        schedule=schedule,
        backend=internals["backend"],
        options=opts,
    )


@dataclass
class RepairResult:
    """Outcome of :func:`repair_schedule`.

    ``mode`` is ``"repaired"`` (diff-driven splice; output bit-identical
    to a full re-inspection) or ``"full"`` (a guard fired and a fresh
    inspection ran instead — ``stats["reason"]`` says which).  Either way
    ``artifacts`` describes the *new* pattern and can seed the next repair.
    """

    schedule: Schedule
    mode: str
    artifacts: InspectionArtifacts
    stats: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# Repair
# ----------------------------------------------------------------------
def _full_repair(
    old: InspectionArtifacts,
    g_new: DAG,
    cost_new: np.ndarray,
    reason: str,
) -> RepairResult:
    art = inspect_with_artifacts(
        g_new, cost_new, old.p, old.epsilon, backend=old.backend, **old.options
    )
    return RepairResult(
        schedule=art.schedule, mode="full", artifacts=art, stats={"reason": reason}
    )


def _map_cw(cw: CoarsenedWavefront, pi_old2new: np.ndarray, identity: bool) -> CoarsenedWavefront:
    """Old coarsened wavefront under the group renumbering (order-preserving)."""
    if identity:
        return cw
    comps = [np.ascontiguousarray(pi_old2new[c]) for c in cw.components]
    return CoarsenedWavefront(
        wave_lo=cw.wave_lo, wave_hi=cw.wave_hi, components=comps, packing=cw.packing
    )


def _map_level(
    level: List[WidthPartition], row_map: np.ndarray, identity: bool
) -> List[WidthPartition]:
    """Old schedule level under the vertex renumbering (order-preserving)."""
    if identity:
        return level
    return [
        WidthPartition(core=part.core, vertices=row_map[part.vertices])
        for part in level
    ]


def repair_schedule(
    old: InspectionArtifacts,
    g_new: DAG,
    cost_new: np.ndarray,
    delta: Optional[PatternDelta] = None,
    *,
    max_dirty_fraction: float = 0.25,
) -> RepairResult:
    """Repair ``old``'s schedule for the new pattern ``(g_new, cost_new)``.

    ``delta`` relates old rows to new rows; ``None`` means identity when
    the vertex counts match (the factorization-update case) and otherwise
    forces a full inspection.  When more than ``max_dirty_fraction`` of the
    groups are dirty the delta is too large for splicing to pay off and a
    full inspection runs instead.

    The repair recomputes the two cheap global stages exactly (two-hop
    reduction and subtree grouping — both depend globally on the pattern
    via the cost-cap, so recomputing them is what keeps the bit-identity
    proof local), then splices everything downstream around the dirty set.
    The recompute/splice boundary is not hard-coded: it is read off the
    hdagg pass group's declared ``repair`` policies via
    :func:`repro.passes.plan_repair` (a pass whose contracts changed
    policy would make the plan disagree with this implementation, which
    falls back to a full inspection rather than splice wrongly), and the
    plan is stamped into ``stats["plan"]``.
    """
    cost_new = np.asarray(cost_new, dtype=np.float64)
    if cost_new.shape[0] != g_new.n:
        raise ValueError(f"cost has length {cost_new.shape[0]}, expected {g_new.n}")
    if delta is None:
        if g_new.n != old.g.n:
            return _full_repair(old, g_new, cost_new, "row map required for size change")
        delta = PatternDelta.identity(g_new.n)
    if delta.n_old != old.g.n or delta.n_new != g_new.n:
        raise ValueError(
            f"delta shape ({delta.n_old}->{delta.n_new}) does not match "
            f"DAGs ({old.g.n}->{g_new.n})"
        )
    if old.g.n == 0 or g_new.n == 0:
        return _full_repair(old, g_new, cost_new, "empty pattern")
    if old.schedule.fine_grained:
        return _full_repair(old, g_new, cost_new, "fine-grained schedule")
    if len(old.schedule.levels) != len(old.lbp.coarsened):
        return _full_repair(old, g_new, cost_new, "schedule/LBP shape mismatch")

    t_start = time.perf_counter()
    seconds: Dict[str, float] = {}
    opts = old.options
    p, epsilon = old.p, old.epsilon
    spec = BackendSpec.coerce(old.backend)

    # ---- repair plan from the pass-group contracts --------------------
    # A pattern delta dirties the DAG and Cost inputs; the plan buckets
    # the group's passes by their declared repair policy.  This splice
    # implementation handles exactly {coarsen, lbp, expand} — anything
    # else means the group's contracts moved out from under us.
    group = build_hdagg_group(
        aggregate=opts["aggregate"],
        transitive_reduce=opts["transitive_reduce"],
        bin_pack=opts["bin_pack"],
    )
    plan = plan_repair(group, ("DAG", "Cost"))
    if plan.splice != ("coarsen", "lbp", "expand") or plan.replay:
        return _full_repair(old, g_new, cost_new, f"unsupported repair plan {plan}")
    plan_stats = {
        "recompute": list(plan.recompute),
        "splice": list(plan.splice),
        "replay": list(plan.replay),
    }

    # ---- exact recompute of the cheap global stages -------------------
    t0 = time.perf_counter()
    if opts["aggregate"]:
        reduce_fn, _ = resolve_stage(spec, "reduce")
        aggregate_fn, _ = resolve_stage(spec, "aggregate")
        g_base_new = reduce_fn(g_new) if opts["transitive_reduce"] else g_new
        cap_frac = opts["group_cost_cap_fraction"]
        cap = cap_frac * float(cost_new.sum()) / p if cap_frac is not None else None
        grouping_new = aggregate_fn(g_base_new, cost_new, cap)
    else:
        g_base_new = g_new
        grouping_new = identity_grouping(g_new.n)
    seconds["aggregate"] = time.perf_counter() - t0

    # ---- diff: dirty vertices, group matching, dirty groups -----------
    t0 = time.perf_counter()
    ro, rn = delta.retained_old, delta.retained_new
    dirty_vertex = np.zeros(g_new.n, dtype=bool)
    dirty_vertex[changed_rows(old.g_base, g_base_new, delta)] = True
    dirty_vertex[rn[old.cost[ro] != cost_new[rn]]] = True
    dirty_vertex[delta.added] = True

    labels_new = grouping_new.labels
    labels_old = old.grouping.labels
    n_groups_new = grouping_new.n_groups
    n_groups_old = old.grouping.n_groups
    gptr, gflat = _grouping_csr(grouping_new)
    sizes_new = np.diff(gptr)
    # per new group: the old label of every member (or -1 for added rows);
    # a group matches an old one iff the labels agree and the sizes do too
    ol = np.full(g_new.n, -1, dtype=INDEX_DTYPE)
    ol[rn] = labels_old[ro]
    ol_sorted = ol[gflat]
    gmin = np.minimum.reduceat(ol_sorted, gptr[:-1])
    gmax = np.maximum.reduceat(ol_sorted, gptr[:-1])
    sizes_old = np.bincount(labels_old, minlength=n_groups_old)
    matched = (gmin >= 0) & (gmin == gmax)
    matched[matched] &= sizes_old[gmin[matched]] == sizes_new[matched]
    pi_new2old = np.where(matched, gmin, np.int64(-1)).astype(INDEX_DTYPE, copy=False)
    mids = np.flatnonzero(matched)
    if mids.size > 1 and np.any(np.diff(pi_new2old[mids]) <= 0):
        return _full_repair(old, g_new, cost_new, "group renumbering not monotone")
    pi_old2new = np.full(n_groups_old, -1, dtype=INDEX_DTYPE)
    pi_old2new[pi_new2old[mids]] = mids
    identity_pi = (
        n_groups_old == n_groups_new
        and mids.size == n_groups_new
        and bool(np.array_equal(pi_new2old, np.arange(n_groups_new)))
    )

    # a group's G'' row is stale when its membership changed, a member's
    # reduced row or cost changed, or an out-edge target changed label
    dirty_group = ~matched
    dirty_group[labels_new[dirty_vertex]] = True
    src, dst = g_base_new.edge_list()
    gs, gd = labels_new[src], labels_new[dst]
    bad_target = ~matched[gd]
    if bad_target.any():
        dirty_group[gs[bad_target]] = True
    n_dirty = int(dirty_group.sum())
    seconds["diff"] = time.perf_counter() - t0
    if n_dirty > max_dirty_fraction * n_groups_new:
        return _full_repair(
            old,
            g_new,
            cost_new,
            f"dirty fraction {n_dirty}/{n_groups_new} exceeds {max_dirty_fraction}",
        )

    # ---- coarsen splice: G'' rows and group costs ---------------------
    t0 = time.perf_counter()
    clean_ids = np.flatnonzero(~dirty_group)
    old_len = np.diff(old.g2.indptr)
    edge_mask = dirty_group[gs] & (gs != gd)
    if edge_mask.any():
        pair = np.unique(np.stack((gs[edge_mask], gd[edge_mask]), axis=1), axis=0)
        dsrc, ddst = pair[:, 0], pair[:, 1]
    else:
        dsrc = ddst = np.empty(0, dtype=INDEX_DTYPE)
    lengths = np.bincount(dsrc, minlength=n_groups_new).astype(INDEX_DTYPE, copy=False)
    lengths[clean_ids] = old_len[pi_new2old[clean_ids]]
    indptr2 = np.zeros(n_groups_new + 1, dtype=INDEX_DTYPE)
    np.cumsum(lengths, out=indptr2[1:])
    indices2 = np.empty(int(indptr2[-1]), dtype=INDEX_DTYPE)
    if dsrc.size:
        # pairs are sorted by (src, dst); per-src runs land contiguously
        within = np.arange(dsrc.shape[0], dtype=INDEX_DTYPE) - np.searchsorted(
            dsrc, dsrc
        )
        indices2[indptr2[dsrc] + within] = ddst
    if clean_ids.size:
        orow = pi_new2old[clean_ids]
        vals = pi_old2new[gather_slices(old.g2.indptr, old.g2.indices, orow)]
        if vals.size and int(vals.min()) < 0:
            # a clean group's row references an unmatched target group: the
            # dirtiness propagation missed something — never expected, but
            # fall back rather than emit a corrupt DAG
            return _full_repair(old, g_new, cost_new, "clean row maps out of range")
        cnts = old_len[orow]
        total = int(cnts.sum())
        if total:
            cum = np.cumsum(cnts)
            dest = np.repeat(indptr2[clean_ids], cnts) + (
                np.arange(total, dtype=INDEX_DTYPE) - np.repeat(cum - cnts, cnts)
            )
            indices2[dest] = vals
    g2_new = DAG(n_groups_new, indptr2, indices2, check=False)

    group_cost_new = np.empty(n_groups_new, dtype=np.float64)
    group_cost_new[clean_ids] = old.group_cost[pi_new2old[clean_ids]]
    dirty_ids = np.flatnonzero(dirty_group)
    if dirty_ids.size:
        # np.add.at in ascending vertex order over just the dirty groups'
        # members reproduces the full group_costs accumulation bit-for-bit
        acc = np.zeros(n_groups_new, dtype=np.float64)
        vmask = dirty_group[labels_new]
        np.add.at(acc, labels_new[vmask], cost_new[vmask])
        group_cost_new[dirty_ids] = acc[dirty_ids]
    seconds["coarsen"] = time.perf_counter() - t0

    # ---- wavefront cleanliness and the dirty window -------------------
    t0 = time.perf_counter()
    waves_new = compute_wavefronts(g2_new)
    l_new, l_old = waves_new.n_levels, old.lbp.waves.n_levels
    lvl_new, lvl_old = waves_new.level, old.lbp.waves.level
    group_clean = matched & ~dirty_group
    group_clean &= lvl_old[np.maximum(pi_new2old, 0)] == lvl_new
    m = min(l_old, l_new)
    wave_clean = np.zeros(l_new, dtype=bool)
    if m:
        unclean_at = np.bincount(lvl_new[~group_clean], minlength=l_new)
        wave_clean[:m] = (unclean_at[:m] == 0) & (
            waves_new.sizes()[:m] == old.lbp.waves.sizes()[:m]
        )
    old_cws = old.lbp.coarsened
    old_dec = list(old.lbp.decisions or [])
    old_cut_index = {cw.wave_lo: k for k, cw in enumerate(old_cws)}
    last_old = len(old_cws) - 1

    def reusable(k: int) -> bool:
        """Can old coarsened wavefront ``k`` replay verbatim?

        Its whole span must be clean, and so must the wave its failed
        merge candidate peeked at (``wave_hi``); the last old wavefront
        has no failed candidate but must still end the new walk.
        """
        cw = old_cws[k]
        if k == last_old:
            return cw.wave_hi == l_new and bool(
                np.all(wave_clean[cw.wave_lo : cw.wave_hi])
            )
        return cw.wave_hi < l_new and bool(
            np.all(wave_clean[cw.wave_lo : cw.wave_hi + 1])
        )

    # Merge loop over cut-to-cut segments.  Invariant at the top: the full
    # walk on the new inputs has a cut exactly at ``pos`` (or starts
    # there).  Clean old segments cut at an old cut position replay
    # verbatim (the walk's state fully resets at a cut); dirty stretches
    # are re-walked live until they re-synchronise with an old cut.
    coarsened_new: List[CoarsenedWavefront] = []
    dec_new: List[LBPDecision] = []
    #: per-emitted-wavefront origin: old index when replayed, -1 when live
    origin: List[int] = []
    cc = None
    pos = 0
    while pos < l_new:
        k = old_cut_index.get(pos)
        if k is not None and reusable(k):
            cw = old_cws[k]
            coarsened_new.append(_map_cw(cw, pi_old2new, identity_pi))
            origin.append(k)
            # decisions for waves pos+1 .. wave_hi (incl. the cut at
            # wave_hi that ended this segment, when there is one)
            stop = cw.wave_hi if k != last_old else l_new - 1
            dec_new.extend(old_dec[pos:stop])
            pos = cw.wave_hi
            continue
        # live walk from the cut at ``pos`` until the next cut
        if cc is None:
            cc = _RangeComponents(g2_new, waves_new, group_cost_new, p)
        # Clean-prefix skip: when an old coarsened wavefront also started
        # at ``pos``, every clean wave at its front was merged by the old
        # walk, and the walk state is path-independent (components are
        # canonical minima, packing orders by (root, vertex)).  Seeding
        # the whole clean prefix in one union pass and replaying the old
        # merge decisions verbatim is therefore bit-identical to stepping
        # wave by wave — only the genuinely dirty tail is walked live.
        w = pos + 1
        if k is not None:
            stop_old = min(old_cws[k].wave_hi, l_new)
            w = pos
            while w < stop_old and wave_clean[w]:
                w += 1
            w = max(w, pos + 1)
        cc.seed(pos, w)
        dec_new.extend(old_dec[pos : w - 1])
        prev = cc.candidate()
        i = w
        cut_at = None
        while i < l_new:
            cc.extend(i + 1)
            cand = cc.candidate()
            score = pgp(cand.packing.loads)
            if score > epsilon:
                dec_new.append(LBPDecision(wave=i, pgp=score, merged=False))
                cut_at = i
                break
            dec_new.append(LBPDecision(wave=i, pgp=score, merged=True))
            prev = cand
            i += 1
        coarsened_new.append(prev.materialize())
        origin.append(-1)
        pos = cut_at if cut_at is not None else l_new
    n_reused = sum(1 for k in origin if k >= 0)

    # Lines 36-38 over the final list; loads of reused wavefronts are the
    # old float arrays, so the Python-sum accumulation replays bit-for-bit
    total_mean = sum(float(cw.packing.loads.mean()) for cw in coarsened_new)
    total_max = sum(float(cw.packing.loads.max()) for cw in coarsened_new)
    accumulated = 1.0 - total_mean / total_max if total_max > 0 else 0.0
    fine = bool(opts["bin_pack"]) is False or accumulated > epsilon
    lbp_new = LBPResult(
        coarsened=coarsened_new,
        waves=waves_new,
        fine_grained=fine,
        accumulated_pgp=accumulated,
        decisions=dec_new,
    )
    seconds["lbp"] = time.perf_counter() - t0

    # ---- expansion splice ---------------------------------------------
    t0 = time.perf_counter()
    gsize = np.diff(gptr)
    identity_rows = delta.is_identity
    levels: List[List[WidthPartition]] = []
    if fine != old.schedule.fine_grained:
        # the packing flag flipped: bucket shapes changed everywhere
        for cw in coarsened_new:
            if cw.components:
                parts = _expand_cw(cw, fine, gptr, gflat, gsize, p)
                if parts:
                    levels.append(parts)
    else:
        for cw, org in zip(coarsened_new, origin):
            if org >= 0:
                levels.append(
                    _map_level(old.schedule.levels[org], delta.row_map, identity_rows)
                )
            elif cw.components:
                parts = _expand_cw(cw, fine, gptr, gflat, gsize, p)
                if parts:
                    levels.append(parts)
    meta = {
        "n_groups": n_groups_new,
        "n_edges_original": g_new.n_edges,
        "n_edges_reduced": g_base_new.n_edges,
        "n_coarse_vertices": g2_new.n,
        "n_coarse_wavefronts": len(coarsened_new),
        "n_wavefronts": l_new,
        "accumulated_pgp": accumulated,
        "cut_positions": lbp_new.cut_positions,
        "epsilon": epsilon,
        "backend": spec.effective().describe(),
    }
    schedule = Schedule(
        n=g_new.n,
        levels=levels,
        sync=opts["sync"],
        algorithm="hdagg",
        n_cores=p,
        fine_grained=fine,
        meta=meta,
    )
    seconds["expand"] = time.perf_counter() - t0
    seconds["total"] = time.perf_counter() - t_start
    schedule.meta["stage_seconds"] = dict(seconds)

    artifacts = InspectionArtifacts(
        g=g_new,
        cost=cost_new,
        p=p,
        epsilon=epsilon,
        g_base=g_base_new,
        grouping=grouping_new,
        g2=g2_new,
        group_cost=group_cost_new,
        lbp=lbp_new,
        schedule=schedule,
        backend=spec.effective().describe(),
        options=dict(opts),
    )
    stats = {
        "n_groups": n_groups_new,
        "n_dirty_groups": n_dirty,
        "n_matched_groups": int(mids.size),
        "n_reused_cws": n_reused,
        "n_live_cws": len(coarsened_new) - n_reused,
        "seconds": seconds,
        "plan": plan_stats,
    }
    return RepairResult(schedule=schedule, mode="repaired", artifacts=artifacts, stats=stats)


# ----------------------------------------------------------------------
# Cache wiring
# ----------------------------------------------------------------------
def family_key(
    *,
    kernel: str = "",
    algorithm: str = "hdagg",
    p: int,
    epsilon: float | None = None,
    backend: str = "",
    label: str = "",
    options: dict | None = None,
) -> str:
    """Digest of one *parameter family* — everything in a schedule key
    except the pattern itself.  Two inspection problems in the same family
    differ only by their DAG, which is exactly when repair applies.

    ``label`` scopes the family to one logical matrix (the harness passes
    the dataset name): unrelated patterns that merely share parameters
    would otherwise repair against each other's artifacts — safe (the
    dirty-fraction guard falls back to a full inspection) but wasted diff
    work.
    """
    payload = repr(
        (
            kernel,
            algorithm,
            int(p),
            None if epsilon is None else float(epsilon),
            backend,
            label,
            sorted((options or {}).items()),
        )
    )
    h = sha256(_FAMILY_KEY_VERSION)
    h.update(payload.encode("utf-8"))
    return h.hexdigest()


class IncrementalScheduleCache(ScheduleCache):
    """Schedule cache whose near-misses become repairs.

    On top of the exact structure-keyed LRU store, each *family* (see
    :func:`family_key`) keeps the latest :class:`InspectionArtifacts`.  An
    exact-key miss with a family hit runs :func:`repair_schedule` against
    the stored artifacts instead of a full inspection; the repaired (or
    fallback-full) artifacts replace the family entry either way, so a
    drifting pattern keeps repairing against its most recent ancestor.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        super().__init__(max_entries)
        self._families: Dict[str, InspectionArtifacts] = {}
        self.repairs = 0
        self.repair_fulls = 0

    def put_artifacts(self, family: str, artifacts: InspectionArtifacts) -> None:
        """Seed (or refresh) a family's repair ancestor."""
        self._families[family] = artifacts

    def artifacts_for(self, family: str) -> Optional[InspectionArtifacts]:
        return self._families.get(family)

    def acquire(
        self,
        key: str,
        family: str,
        g: DAG,
        cost: np.ndarray,
        *,
        p: int,
        epsilon: float = DEFAULT_EPSILON,
        backend: "BackendSpec | str | None" = None,
        delta: Optional[PatternDelta] = None,
        **options,
    ) -> Tuple[Schedule, str]:
        """Schedule for ``(g, cost)`` under the family's parameters.

        Returns ``(schedule, source)`` with ``source`` one of ``"hit"``
        (exact key), ``"repaired"`` (family near-miss, diff-spliced), or
        ``"full"`` (fresh inspection — first sighting of the family, or a
        repair guard fired).  Both stores are updated on every miss.
        """
        hit = self.get(key)
        if hit is not None:
            return hit, "hit"
        old = self._families.get(family)
        if old is not None:
            result = repair_schedule(old, g, cost, delta=delta)
            if result.mode == "repaired":
                self.repairs += 1
            else:
                self.repair_fulls += 1
            self._families[family] = result.artifacts
            self.put(key, result.schedule)
            return result.schedule, result.mode
        art = inspect_with_artifacts(g, cost, p, epsilon, backend=backend, **options)
        self._families[family] = art
        self.put(key, art.schedule)
        return art.schedule, "full"

    def clear(self) -> None:
        super().clear()
        self._families.clear()
        self.repairs = 0
        self.repair_fulls = 0
