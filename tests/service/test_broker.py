"""ScheduleBroker: the resolution ladder, single-flight, shedding, healing.

Concurrency tests block the leader inside a patched
``inspect_with_fallback`` and release it with events, so every interleaving
is forced rather than raced.
"""

import threading
import time

import pytest

from repro.analysis.verifier import assert_schedule_safe
from repro.resilience.faults import FaultPlan, FaultSpec, armed
from repro.resilience.retry import RetryExhausted
from repro.service import (
    AdmissionRejected,
    DeadlineExceeded,
    ScheduleBroker,
    ServiceRejected,
)
from repro.service import broker as broker_mod
from repro.store import ScheduleStore


class SlowInspect:
    """Patchable stand-in that blocks until released, counting calls."""

    def __init__(self, monkeypatch):
        self.real = broker_mod.inspect_with_fallback
        self.calls = 0
        self.entered = threading.Event()
        self.release = threading.Event()
        monkeypatch.setattr(broker_mod, "inspect_with_fallback", self)

    def __call__(self, algorithm, g, cost, p, **kwargs):
        self.calls += 1
        self.entered.set()
        assert self.release.wait(10), "test never released the inspector"
        return self.real(algorithm, g, cost, p, **kwargs)


def wait_for_waiters(event: threading.Event, n: int, timeout: float = 5.0) -> None:
    """Block until ``n`` threads wait on ``event`` (CPython internals; falls
    back to a fixed sleep if the attribute shape ever changes)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            waiters = len(event._cond._waiters)
        except AttributeError:
            time.sleep(0.3)
            return
        if waiters >= n:
            return
        time.sleep(0.005)
    raise AssertionError(f"never saw {n} waiters on the flight")


class TestResolutionLadder:
    def test_miss_then_memory(self, request_a):
        broker = ScheduleBroker()
        first = broker.request(request_a)
        assert first.source == "inspected"
        assert not first.degraded
        assert_schedule_safe(first.schedule, request_a.g)
        second = broker.request(request_a)
        assert second.source == "memory"
        assert second.schedule is first.schedule
        s = broker.stats
        assert (s.requests, s.inspected, s.memory_hits) == (2, 1, 1)
        assert s.hit_rate == 0.5

    def test_store_hit_survives_process_restart(self, tmp_path, request_a):
        root = tmp_path / "store"
        ScheduleBroker(ScheduleStore(root)).request(request_a)
        # "new process": fresh broker, fresh cache, same disk
        broker = ScheduleBroker(ScheduleStore(root))
        result = broker.request(request_a)
        assert result.source == "store"
        assert_schedule_safe(result.schedule, request_a.g)
        assert broker.request(request_a).source == "memory"  # promoted to L1

    def test_distinct_requests_get_distinct_keys(self, request_a, request_b):
        assert request_a.key() != request_b.key()
        broker = ScheduleBroker()
        broker.request(request_a)
        assert broker.request(request_b).source == "inspected"

    def test_result_payload_is_structured(self, request_a):
        d = ScheduleBroker().request(request_a).as_dict()
        assert d["source"] == "inspected"
        assert d["requested"] == "hdagg"
        assert d["n_levels"] > 0 and d["seconds"] >= 0


class TestSingleFlight:
    def test_concurrent_requests_coalesce_onto_one_inspection(self, request_a, monkeypatch):
        slow = SlowInspect(monkeypatch)
        broker = ScheduleBroker()
        results, errors = {}, {}

        def go(i):
            try:
                results[i] = broker.request(request_a)
            except BaseException as exc:  # pragma: no cover - failure path
                errors[i] = exc

        leader = threading.Thread(target=go, args=(0,))
        leader.start()
        assert slow.entered.wait(5)
        followers = [threading.Thread(target=go, args=(i,)) for i in (1, 2, 3)]
        for t in followers:
            t.start()
        with broker._flights_lock:
            (flight,) = broker._flights.values()
        wait_for_waiters(flight.done, 3)
        slow.release.set()
        leader.join(10)
        for t in followers:
            t.join(10)
        assert errors == {}
        assert slow.calls == 1, "single-flight must coalesce onto one inspection"
        assert results[0].source == "inspected"
        assert sorted(r.source for i, r in results.items() if i) == ["coalesced"] * 3
        for r in results.values():
            assert r.schedule is results[0].schedule
        assert broker.stats.coalesced == 3

    def test_leader_failure_propagates_to_followers(self, request_a, monkeypatch):
        slow = SlowInspect(monkeypatch)
        broker = ScheduleBroker()
        boom = RuntimeError("inspector exploded")

        def exploding(algorithm, g, cost, p, **kwargs):
            slow.entered.set()
            assert slow.release.wait(10)
            raise boom

        monkeypatch.setattr(broker_mod, "inspect_with_fallback", exploding)
        outcomes = {}

        def go(i):
            try:
                outcomes[i] = broker.request(request_a)
            except BaseException as exc:
                outcomes[i] = exc

        threads = [threading.Thread(target=go, args=(0,))]
        threads[0].start()
        assert slow.entered.wait(5)
        threads.append(threading.Thread(target=go, args=(1,)))
        threads[1].start()
        with broker._flights_lock:
            (flight,) = broker._flights.values()
        wait_for_waiters(flight.done, 1)
        slow.release.set()
        for t in threads:
            t.join(10)
        # RuntimeError is not in the retry set, so it propagates as-is —
        # to the leader directly and to every follower via the flight
        assert all(v is boom for v in outcomes.values()), outcomes
        # the flight is cleaned up: the key is retryable afterwards
        monkeypatch.setattr(broker_mod, "inspect_with_fallback", slow.real)
        assert broker.request(request_a).source == "inspected"


class TestAdmissionControl:
    def test_excess_inspections_are_shed_with_structure(self, request_a, request_b, monkeypatch):
        slow = SlowInspect(monkeypatch)
        broker = ScheduleBroker(max_inflight=1)
        t = threading.Thread(target=broker.request, args=(request_a,))
        t.start()
        assert slow.entered.wait(5)
        with pytest.raises(AdmissionRejected) as exc_info:
            broker.request(request_b)
        payload = exc_info.value.as_dict()
        assert payload["reason"] == "admission_full"
        assert payload["capacity"] == 1 and payload["inflight"] == 1
        assert isinstance(exc_info.value, ServiceRejected)
        slow.release.set()
        t.join(10)
        assert broker.stats.rejected == 1
        # capacity freed: the shed key now serves fine
        assert broker.request(request_b).source == "inspected"

    def test_cache_hits_are_never_shed(self, request_a, request_b, monkeypatch):
        broker = ScheduleBroker(max_inflight=1)
        broker.request(request_a)  # primes L1
        slow = SlowInspect(monkeypatch)
        t = threading.Thread(target=broker.request, args=(request_b,))
        t.start()
        assert slow.entered.wait(5)
        assert broker.request(request_a).source == "memory"  # sails through
        slow.release.set()
        t.join(10)


class TestDeadlines:
    def test_expired_deadline_rejects_before_inspection(self, request_a):
        request_a.deadline = 0.0
        broker = ScheduleBroker()
        with pytest.raises(DeadlineExceeded) as exc_info:
            broker.request(request_a)
        assert exc_info.value.as_dict()["reason"] == "deadline_exceeded"
        assert broker.stats.rejected == 1

    def test_remaining_deadline_becomes_the_degradation_budget(self, request_a, monkeypatch):
        """The wiring the ISSUE names: what's left of the request deadline
        when inspection starts is handed to inspect_with_fallback as its
        hdagg→wavefront→serial budget."""
        now = [100.0]
        seen = {}
        real = broker_mod.inspect_with_fallback

        def spy(algorithm, g, cost, p, **kwargs):
            seen["budget"] = kwargs["budget"]
            return real(algorithm, g, cost, p, **kwargs)

        monkeypatch.setattr(broker_mod, "inspect_with_fallback", spy)
        broker = ScheduleBroker(clock=lambda: now[0])
        request_a.deadline = 2.5
        broker.request(request_a)  # the fake clock never advances
        assert seen["budget"] == pytest.approx(2.5)

    def test_follower_deadline_expires_while_waiting(self, request_a, monkeypatch):
        slow = SlowInspect(monkeypatch)
        broker = ScheduleBroker()
        t = threading.Thread(target=broker.request, args=(request_a,))
        t.start()
        assert slow.entered.wait(5)
        late = ServeRequest_copy(request_a, deadline=0.05)
        with pytest.raises(DeadlineExceeded) as exc_info:
            broker.request(late)
        assert exc_info.value.as_dict()["waited"] >= 0.05
        slow.release.set()
        t.join(10)


def ServeRequest_copy(req, **overrides):
    from dataclasses import replace

    return replace(req, **overrides)


class TestFaultTolerance:
    def test_worker_crash_is_retried(self, request_a):
        broker = ScheduleBroker(retry_base_delay=0.0)
        plan = FaultPlan([FaultSpec("service.worker_crash", "raise", at=0)])
        with armed(plan):
            result = broker.request(request_a)
        assert result.source == "inspected"
        assert_schedule_safe(result.schedule, request_a.g)
        assert broker.stats.retries == 1

    def test_persistent_worker_crash_exhausts_retries(self, request_a):
        broker = ScheduleBroker(retry_base_delay=0.0, store_retries=2)
        plan = FaultPlan([FaultSpec("service.worker_crash", "raise", at=0, times=-1)])
        with armed(plan):
            with pytest.raises(RetryExhausted):
                broker.request(request_a)
        assert broker.stats.retries == 2

    def test_corrupted_l1_hit_heals(self, request_a):
        broker = ScheduleBroker()
        broker.request(request_a)
        plan = FaultPlan([FaultSpec("schedule_cache.get", "corrupt", at=0)])
        with armed(plan):
            result = broker.request(request_a)
        # the corrupt hit was refuted, invalidated, and re-resolved
        assert result.source == "inspected"
        assert_schedule_safe(result.schedule, request_a.g)
        assert broker.request(request_a).source == "memory"  # slot healed

    def test_unsafe_store_record_is_quarantined_not_served(self, tmp_path, request_a, request_b):
        store = ScheduleStore(tmp_path / "store", durable=False)
        foreign = ScheduleBroker().request(request_b).schedule
        store.put(request_a.key(), foreign)  # decodes fine, wrong DAG
        broker = ScheduleBroker(store)
        result = broker.request(request_a)
        assert result.source == "inspected"
        assert_schedule_safe(result.schedule, request_a.g)
        assert [e.reason for e in store.events] == [
            "failed assert_schedule_safe for request DAG"
        ]

    def test_transient_store_read_errors_are_retried(self, tmp_path, request_a):
        real = ScheduleStore(tmp_path / "store", durable=False)
        ScheduleBroker(real).request(request_a)  # populate

        class Flaky:
            def __init__(self, inner, failures):
                self.inner, self.failures = inner, failures

            def get(self, key):
                if self.failures:
                    raise self.failures.pop()
                return self.inner.get(key)

            def put(self, key, s):
                self.inner.put(key, s)

            def quarantine_key(self, key, reason):
                return self.inner.quarantine_key(key, reason)

        broker = ScheduleBroker(
            Flaky(ScheduleStore(tmp_path / "store"), [OSError("EIO")]),
            retry_base_delay=0.0,
        )
        result = broker.request(request_a)
        assert result.source == "store"
        assert broker.stats.retries == 1

    def test_store_down_degrades_to_inspection(self, request_a):
        class Down:
            def get(self, key):
                raise OSError("store unreachable")

            def put(self, key, s):
                raise OSError("store unreachable")

            def quarantine_key(self, key, reason):
                return False

        broker = ScheduleBroker(Down(), retry_base_delay=0.0, store_retries=1)
        result = broker.request(request_a)  # must not raise
        assert result.source == "inspected"
        assert_schedule_safe(result.schedule, request_a.g)

    def test_degraded_schedules_are_not_persisted(self, tmp_path, request_a, monkeypatch):
        """The harness's never-cache-degraded rule holds on the serving
        path too: a degraded outcome serves but does not poison the store."""
        from repro.resilience.degrade import InspectionOutcome

        real = broker_mod.inspect_with_fallback

        def degrading(algorithm, g, cost, p, **kwargs):
            out = real("wavefront", g, cost, p)
            return InspectionOutcome(
                schedule=out.schedule, algorithm="wavefront", requested=algorithm,
                degraded=True, degraded_from=algorithm, failures=(),
            )

        monkeypatch.setattr(broker_mod, "inspect_with_fallback", degrading)
        store = ScheduleStore(tmp_path / "store", durable=False)
        broker = ScheduleBroker(store)
        result = broker.request(request_a)
        assert result.degraded and result.algorithm == "wavefront"
        assert broker.stats.degraded == 1
        assert store.get(request_a.key()) is None
