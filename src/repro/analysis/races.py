"""Memory-footprint race detector for schedules.

Two iterations placed in the same coarsened wavefront but different
width-partitions may execute concurrently under either sync model.  If
their footprints overlap on any location and at least one of the two
accesses is a write, the schedule admits a data race — a wrong numerical
answer under load, with no error raised.

The detector is *static* (no execution) and *independent of the DAG*: it
consumes only the schedule coordinates and a :class:`~.footprint.Footprint`
derived directly from the matrix structure.  That independence is the
point — an inspector fed a mis-constructed DAG produces a schedule that
passes every edge-level check, because the edges themselves are wrong; the
footprints re-derive the ground truth the DAG was supposed to encode.

Algorithm: flatten all accesses to ``(location, level, partition,
is_write, iteration)`` tuples, sort by ``(location, level)`` — O(A log A)
for A total accesses — and flag every group that spans >= 2 partitions and
contains >= 1 write.  Exactly one sort, no pairwise enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core.schedule import Schedule
from ..runtime.perf import StageTimer
from .footprint import Footprint

__all__ = ["RaceWitness", "RaceReport", "detect_races"]

#: ``Schedule.meta["stage_seconds"]`` key for race-detection time.
RACES_STAGE = "race_detect"


@dataclass(frozen=True)
class RaceWitness:
    """One conflicting pair: a write and a concurrent access to one location."""

    location: int
    level: int
    writer: int
    writer_partition: int
    other: int
    other_partition: int
    other_is_write: bool

    def describe(self) -> str:
        kind = "write/write" if self.other_is_write else "write/read"
        return (
            f"race ({kind}) at location {self.location}, wavefront {self.level}: "
            f"iteration {self.writer} (partition {self.writer_partition}) vs "
            f"iteration {self.other} (partition {self.other_partition})"
        )

    def as_dict(self) -> dict:
        return {
            "location": self.location,
            "level": self.level,
            "writer": self.writer,
            "writer_partition": self.writer_partition,
            "other": self.other,
            "other_partition": self.other_partition,
            "other_is_write": self.other_is_write,
        }


@dataclass
class RaceReport:
    """Outcome of :func:`detect_races`."""

    ok: bool
    n_accesses: int
    n_conflicting_groups: int
    witnesses: List[RaceWitness] = field(default_factory=list)
    seconds: float = 0.0

    def describe(self) -> str:
        if self.ok:
            return (
                f"race-free: {self.n_accesses} accesses checked "
                f"({self.seconds * 1e3:.2f} ms)"
            )
        lines = [f"RACES: {self.n_conflicting_groups} conflicting (location, wavefront) groups"]
        lines.extend(f"  {w.describe()}" for w in self.witnesses)
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "n_accesses": self.n_accesses,
            "n_conflicting_groups": self.n_conflicting_groups,
            "witnesses": [w.as_dict() for w in self.witnesses],
            "seconds": self.seconds,
        }


def _witness_from_group(
    loc: int,
    lvl: int,
    its: np.ndarray,
    pids: np.ndarray,
    isw: np.ndarray,
) -> RaceWitness:
    """Pick a (writer, cross-partition access) pair out of one flagged group."""
    writers = np.nonzero(isw)[0]
    # a writer whose partition differs from some other access in the group
    for w in writers.tolist():
        cross = np.nonzero(pids != pids[w])[0]
        if cross.shape[0]:
            # prefer a conflicting write over a read for the second endpoint
            cross_w = cross[isw[cross]]
            o = int(cross_w[0]) if cross_w.shape[0] else int(cross[0])
            return RaceWitness(
                location=loc,
                level=lvl,
                writer=int(its[w]),
                writer_partition=int(pids[w]),
                other=int(its[o]),
                other_partition=int(pids[o]),
                other_is_write=bool(isw[o]),
            )
    raise AssertionError("flagged group without a cross-partition writer pair")


def detect_races(
    schedule: Schedule,
    fp: Footprint,
    *,
    max_witnesses: int = 16,
    stamp_meta: bool = True,
) -> RaceReport:
    """Statically flag same-wavefront cross-partition footprint conflicts.

    With ``stamp_meta`` the detection wall-clock is accumulated into
    ``schedule.meta["stage_seconds"]["race_detect"]``.
    """
    if fp.n != schedule.n:
        raise ValueError(f"footprint covers {fp.n} iterations, schedule has {schedule.n}")
    timer = StageTimer()
    with timer.stage(RACES_STAGE):
        level = schedule.level_of()
        pid = schedule.partition_of()
        it = np.concatenate(
            [
                np.repeat(np.arange(fp.n, dtype=np.int64), np.diff(fp.read_ptr)),
                np.repeat(np.arange(fp.n, dtype=np.int64), np.diff(fp.write_ptr)),
            ]
        )
        loc = np.concatenate([fp.read_loc, fp.write_loc]).astype(np.int64)
        isw = np.concatenate(
            [
                np.zeros(fp.read_loc.shape[0], dtype=bool),
                np.ones(fp.write_loc.shape[0], dtype=bool),
            ]
        )
        lv = level[it].astype(np.int64)
        pd = pid[it].astype(np.int64)
        n_acc = int(loc.shape[0])
        witnesses: List[RaceWitness] = []
        flagged = np.empty(0, dtype=np.int64)
        if n_acc:
            witnesses, flagged = _find_conflicts(
                loc, lv, pd, it, isw, schedule.n_levels, max_witnesses
            )
    report = RaceReport(
        ok=flagged.shape[0] == 0,
        n_accesses=n_acc,
        n_conflicting_groups=int(flagged.shape[0]),
        witnesses=witnesses,
        seconds=timer.total,
    )
    if stamp_meta:
        stages = schedule.meta.setdefault("stage_seconds", {})
        stages[RACES_STAGE] = stages.get(RACES_STAGE, 0.0) + timer.total
    return report


def _find_conflicts(
    loc: np.ndarray,
    lv: np.ndarray,
    pd: np.ndarray,
    it: np.ndarray,
    isw: np.ndarray,
    n_levels: int,
    max_witnesses: int,
) -> tuple:
    """Sort-and-scan over the access table; returns (witnesses, flagged groups)."""
    n_acc = int(loc.shape[0])
    # group key: (location, level); sort secondary by partition so the
    # distinct-partition count per group is a neighbour comparison
    key = loc * np.int64(max(1, n_levels)) + lv
    order = np.lexsort((pd, key))
    key_s, pd_s, isw_s = key[order], pd[order], isw[order]
    new_group = np.empty(n_acc, dtype=bool)
    new_group[0] = True
    np.not_equal(key_s[1:], key_s[:-1], out=new_group[1:])
    starts = np.nonzero(new_group)[0]
    # per-group: any write, and >= 2 distinct partitions
    gid = np.cumsum(new_group) - 1
    n_groups = int(starts.shape[0])
    has_write = np.zeros(n_groups, dtype=bool)
    np.logical_or.at(has_write, gid, isw_s)
    pd_change = np.empty(n_acc, dtype=bool)
    pd_change[0] = False
    np.not_equal(pd_s[1:], pd_s[:-1], out=pd_change[1:])
    pd_change &= ~new_group
    multi_pid = np.zeros(n_groups, dtype=bool)
    np.logical_or.at(multi_pid, gid, pd_change)
    flagged = np.nonzero(has_write & multi_pid)[0]

    witnesses: List[RaceWitness] = []
    if flagged.shape[0]:
        it_s, lv_s, loc_s = it[order], lv[order], loc[order]
        ends = np.concatenate([starts[1:], [n_acc]])
        for gk in flagged[:max_witnesses].tolist():
            s, e = int(starts[gk]), int(ends[gk])
            witnesses.append(
                _witness_from_group(
                    int(loc_s[s]), int(lv_s[s]), it_s[s:e], pd_s[s:e], isw_s[s:e]
                )
            )
    return witnesses, flagged
