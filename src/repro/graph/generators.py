"""Synthetic DAG generators: structure families without a matrix behind them.

The kernel builders produce DAGs from matrices; these generators produce the
*shape classes* directly — layered random DAGs, forests, chains, fans,
series-parallel compositions — for scheduler unit tests, fuzzing, and
benchmarks that want to vary DAG structure independently of sparsity
patterns.  All are id-topological (every edge ``src < dst``) to match the
kernel builders' contract, and all are seeded/deterministic.
"""

from __future__ import annotations

import numpy as np

from .dag import DAG

__all__ = [
    "layered_dag",
    "random_forest",
    "chain_dag",
    "fan_dag",
    "series_parallel_dag",
]


def layered_dag(
    n_layers: int,
    layer_width: int,
    *,
    edge_prob: float = 0.3,
    seed: int = 0,
) -> DAG:
    """Random layered DAG: edges only between consecutive layers.

    Its wavefronts equal the layers exactly, so level-based schedulers see
    ``n_layers`` levels of ``layer_width`` vertices — the cleanest testbed
    for coarsening behaviour.
    """
    if n_layers < 1 or layer_width < 1:
        raise ValueError("n_layers and layer_width must be >= 1")
    rng = np.random.default_rng(seed)
    n = n_layers * layer_width
    src_list = []
    dst_list = []
    for layer in range(n_layers - 1):
        lo = layer * layer_width
        hi = lo + layer_width
        mask = rng.random((layer_width, layer_width)) < edge_prob
        # guarantee every next-layer vertex has at least one parent so the
        # wavefront structure is exactly the layers
        for j in range(layer_width):
            if not mask[:, j].any():
                mask[rng.integers(layer_width), j] = True
        s, d = np.nonzero(mask)
        src_list.append(s + lo)
        dst_list.append(d + hi)
    if not src_list:
        return DAG.empty(n)
    return DAG.from_edges(
        n, np.concatenate(src_list), np.concatenate(dst_list), dedup=False
    )


def random_forest(n: int, *, n_roots: int = 1, seed: int = 0) -> DAG:
    """Random forest with edges child -> parent (parents have larger ids).

    Every non-root vertex gets exactly one out-edge to a random
    larger-id vertex; the last ``n_roots`` vertices are sinks.  This is the
    tree-DAG regime (LBC's home, HDagg step 1's degenerate case).
    """
    if n_roots < 1 or n_roots > n:
        raise ValueError("need 1 <= n_roots <= n")
    rng = np.random.default_rng(seed)
    src = []
    dst = []
    for v in range(n - n_roots):
        parent = int(rng.integers(v + 1, n))
        src.append(v)
        dst.append(parent)
    return DAG.from_edges(n, src, dst, dedup=False)


def chain_dag(n: int) -> DAG:
    """A single path ``0 -> 1 -> ... -> n-1`` (zero parallelism)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return DAG.from_edges(n, list(range(n - 1)), list(range(1, n)))


def fan_dag(n_sources: int, *, gather: bool = True) -> DAG:
    """``n_sources`` independent vertices optionally gathered by one sink.

    Maximal width (and, with ``gather``, the heaviest possible in-degree) —
    the bin-packing stress shape.
    """
    if n_sources < 1:
        raise ValueError("n_sources must be >= 1")
    if not gather:
        return DAG.empty(n_sources)
    n = n_sources + 1
    return DAG.from_edges(
        n, list(range(n_sources)), [n_sources] * n_sources, dedup=False
    )


def series_parallel_dag(depth: int, *, branching: int = 2, seed: int = 0) -> DAG:
    """Recursive series-parallel DAG between one source and one sink.

    At each level the block either chains two sub-blocks (series) or runs
    ``branching`` sub-blocks between shared endpoints (parallel); the
    recursion bottoms out at single edges.  Classic scheduling-theory
    shapes with well-understood optimal makespans.
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    counter = [1]  # next fresh vertex id; 0 is the global source

    def build(u: int, d: int) -> int:
        """Build a block hanging from ``u``; returns its exit vertex."""
        if d == 0:
            v = counter[0]
            counter[0] += 1
            edges.append((u, v))
            return v
        if rng.random() < 0.5:  # series
            mid = build(u, d - 1)
            return build(mid, d - 1)
        # parallel: branches join at a fresh vertex
        exits = [build(u, d - 1) for _ in range(branching)]
        join = counter[0]
        counter[0] += 1
        for e in exits:
            edges.append((e, join))
        return join

    build(0, depth)
    n = counter[0]
    src = [e[0] for e in edges]
    dst = [e[1] for e in edges]
    return DAG.from_edges(n, src, dst)
