"""``hdagg-bench``: command-line driver for the evaluation suite.

Examples::

    hdagg-bench --experiment table1 --machines intel20 amd64
    hdagg-bench --experiment fig5 --quick
    hdagg-bench --experiment all --kernels sptrsv --json results.json
    hdagg-bench --list

``--quick`` restricts the dataset to one small matrix per family, which is
what CI and the test-suite smoke checks use.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from . import figures, tables
from .harness import Harness
from .matrices import SUITE, small_suite
from .reporting import dump_json, format_kv, format_table

__all__ = ["main", "build_parser", "run_experiment"]

EXPERIMENTS = ("table1", "table2", "table3", "fig4", "fig5", "fig6", "fig7", "fig8",
               "fig9", "dataset", "scaling")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="hdagg-bench", description=__doc__)
    p.add_argument("--experiment", default="all", choices=EXPERIMENTS + ("all",))
    p.add_argument("--machines", nargs="+", default=["intel20"],
                   help="machine models (intel20, amd64, laptop4)")
    p.add_argument("--kernels", nargs="+", default=["sptrsv", "spic0", "spilu0"])
    p.add_argument("--quick", action="store_true", help="small per-family subset")
    p.add_argument("--matrices", nargs="+", default=None, help="restrict to named matrices")
    p.add_argument("--epsilon", type=float, default=None, help="HDagg/LBC balance threshold")
    p.add_argument("--ordering", default="nd", choices=["nd", "rcm", "natural", "random"])
    p.add_argument("--json", default=None, help="dump raw records + results to a JSON file")
    p.add_argument("--save-records", default=None, help="persist run records for later --load-records")
    p.add_argument("--load-records", default=None,
                   help="skip the grid run and regenerate experiments from saved records")
    p.add_argument("--jobs", type=int, default=1,
                   help="fork workers for the grid run (1 = serial)")
    p.add_argument("--journal", default=None,
                   help="JSONL checkpoint file; each finished matrix is flushed so a "
                        "killed run can be resumed with --resume")
    p.add_argument("--resume", action="store_true",
                   help="resume from an existing --journal file (replays finished "
                        "matrices verbatim, runs only the rest)")
    p.add_argument("--faults", type=int, default=None, metavar="SEED",
                   help="arm a deterministic chaos FaultPlan with this seed "
                        "(failures are isolated into structured rows)")
    p.add_argument("--list", action="store_true", help="list the dataset and exit")
    return p


def _select_specs(args) -> List:
    specs = small_suite() if args.quick else list(SUITE)
    if args.matrices:
        by_name = {s.name: s for s in SUITE}
        specs = [by_name[m] for m in args.matrices]
    return specs


def run_experiment(records, name: str) -> str:
    """Format one experiment's output from precomputed records."""
    out: List[str] = []
    # table2/3 and the figures analyse one machine and one kernel; follow
    # the paper's defaults when present in the records, else fall back to
    # whatever was run (table1 aggregates across everything itself)
    machines = sorted({r.machine for r in records})
    machine = "intel20" if "intel20" in machines else (machines[0] if machines else "intel20")
    kernels = sorted({r.kernel for r in records})
    analysis_kernel = "spilu0" if "spilu0" in kernels else (kernels[0] if kernels else "spilu0")
    if name == "table1":
        h, rows, _ = tables.table1_speedups(records)
        out.append(format_table(h, rows, title="Table I: average speedup of HDagg over baselines"))
    elif name == "table2":
        h, rows, _ = tables.table2_metric_improvements(records, kernel=analysis_kernel, machine=machine)
        out.append(format_table(h, rows, title="Table II: metric improvements (SpILU0, intel20)"))
    elif name == "table3":
        h, rows, _ = tables.table3_categories(records, kernel=analysis_kernel, machine=machine)
        out.append(format_table(h, rows, title="Table III: category breakdown vs SpMP/Wavefront"))
    elif name == "fig4":
        h, rows, data = figures.fig4_pgp_vs_pg(records, kernel="sptrsv" if "sptrsv" in kernels else analysis_kernel, machine=machine)
        out.append(format_table(h, rows, title="Figure 4: PGP vs measured PG (SpTRSV)"))
        out.append(format_kv({"R^2": data["r_squared"], "slope": data["slope"]}))
    elif name == "fig5":
        for kernel, (h, rows, _) in figures.fig5_per_matrix_speedups(records, machine=machine).items():
            out.append(format_table(h, rows, title=f"Figure 5: HDagg speedup per matrix ({kernel})"))
    elif name == "fig6":
        h, rows, _ = figures.fig6_performance_metrics(records, kernel=analysis_kernel, machine=machine)
        out.append(format_table(h, rows, title="Figure 6: performance metrics (SpILU0, intel20)"))
    elif name == "fig7":
        h, rows, _ = figures.fig7_imbalance_ratio(records, kernel=analysis_kernel, machine=machine)
        out.append(format_table(h, rows, title="Figure 7: load imbalance ratio (lower is better)"))
    elif name == "fig8":
        h, rows, data = figures.fig8_speedup_vs_locality(records, kernel=analysis_kernel, machine=machine)
        out.append(format_table(h, rows, title="Figure 8: speedup vs locality improvement"))
        out.append(format_kv({"R^2": data["r_squared"], "slope": data["slope"]}))
    elif name == "fig9":
        h, rows, data = figures.fig9_nre(records, machine=machine)
        out.append(format_table(h, rows, title="Figure 9: NRE per matrix (SpTRSV)"))
        out.append(format_kv(data["sptrsv"], title="average NRE (SpTRSV)"))
        out.append(format_kv({k: v["hdagg"] for k, v in data.items() if k != "sptrsv"},
                             title="average NRE of HDagg (factorisations)"))
    else:
        raise ValueError(f"unknown experiment {name!r}")
    return "\n\n".join(out)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "analyze":
        from ..analysis.cli import analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "trace":
        from ..observability.trace_cli import trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "perf":
        from ..perflab.cli import perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "lint":
        from ..statan.cli import lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "service":
        from ..service.cli import service_main

        return service_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list:
        for s in SUITE:
            print(f"{s.name:14s} {s.family}")
        return 0
    specs = _select_specs(args)
    if args.experiment == "dataset":
        from .dataset_report import dataset_report

        print(dataset_report(specs, ordering=args.ordering))
        return 0
    if args.experiment == "scaling":
        from ..kernels import KERNELS
        from ..runtime.machine import MACHINES
        from ..sparse.ordering import apply_ordering
        from ..sparse.triangular import lower_triangle
        from .sweeps import strong_scaling

        machine = MACHINES[args.machines[0]]
        kernel = KERNELS[args.kernels[0]]
        spec = specs[0]
        a, _ = apply_ordering(spec.build(), args.ordering)
        operand = lower_triangle(a) if kernel.name == "sptrsv" else a
        g = kernel.dag(operand)
        cost = kernel.cost(operand)
        counts = sorted({1, 2, 4, machine.n_cores // 2, machine.n_cores})
        points = strong_scaling(g, cost, kernel.memory_model(operand, g), machine,
                                core_counts=counts)
        rows = [[p.algorithm, p.n_cores, p.speedup, p.efficiency] for p in points]
        print(format_table(["algorithm", "cores", "speedup", "efficiency"], rows,
                           title=f"Strong scaling: {spec.name}, {kernel.name}, {machine.name}"))
        return 0
    if args.resume and not args.journal:
        print("# --resume requires --journal", file=sys.stderr)
        return 2
    if args.load_records:
        from .storage import load_records

        records = load_records(args.load_records)
        print(f"# loaded {len(records)} records from {args.load_records}", file=sys.stderr)
    else:
        kwargs = {}
        if args.epsilon is not None:
            kwargs["epsilon"] = args.epsilon
        harness = Harness(machines=args.machines, kernels=args.kernels,
                          ordering=args.ordering, **kwargs)
        journal = None
        if args.journal:
            from ..resilience.journal import JournalError, RunJournal

            try:
                journal = RunJournal(args.journal,
                                     fingerprint=harness.config_fingerprint(specs),
                                     resume=args.resume)
            except JournalError as exc:
                print(f"# {exc}", file=sys.stderr)
                return 2
            if args.resume and journal.completed:
                print(f"# resuming: {len(journal.completed)} matrices already in "
                      f"{args.journal}", file=sys.stderr)
        plan = None
        if args.faults is not None:
            from ..resilience.faults import FaultPlan

            plan = FaultPlan.chaos(args.faults)
            print(f"# chaos plan (seed {args.faults}):", file=sys.stderr)
            for line in plan.describe().splitlines():
                print(f"#   {line}", file=sys.stderr)
        from ..resilience.faults import armed

        isolate = plan is not None or journal is not None
        failures: List = []
        t0 = time.time()
        try:
            with armed(plan):
                records = harness.run_suite(
                    specs,
                    progress=True,
                    n_jobs=args.jobs,
                    isolate_failures=isolate,
                    failures=failures,
                    journal=journal,
                )
        finally:
            if journal is not None:
                journal.close()
        print(f"# {len(records)} records in {time.time() - t0:.1f}s", file=sys.stderr)
        for f in failures:
            print(f"# FAILED {f.describe()}", file=sys.stderr)
        if failures:
            print(f"# {len(failures)} matrices failed (isolated)", file=sys.stderr)
    if args.save_records:
        from .storage import save_records

        save_records(records, args.save_records)
        print(f"# saved records to {args.save_records}", file=sys.stderr)
    # "dataset" and "scaling" are handled above; exclude them from "all"
    names = (
        tuple(e for e in EXPERIMENTS if e not in ("dataset", "scaling"))
        if args.experiment == "all"
        else (args.experiment,)
    )
    results = {}
    for name in names:
        try:
            print(run_experiment(records, name))
            print()
            results[name] = "ok"
        except Exception as exc:  # surface which experiment failed, keep going
            print(f"[{name}] failed: {exc}", file=sys.stderr)
            results[name] = f"error: {exc}"
    if args.json:
        from .storage import record_to_blob

        dump_json({"records": [record_to_blob(r, encode_floats=False) for r in records],
                   "status": results}, args.json)
        print(f"# wrote {args.json}", file=sys.stderr)
    return 0 if all(v == "ok" for v in results.values()) else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
