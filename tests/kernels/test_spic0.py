"""Tests for the SpIC0 kernel."""

import numpy as np
import pytest

from repro.kernels import KernelError, SpIC0, ic0_defect, spic0_in_order, spic0_reference
from repro.sparse import csr_from_dense, lower_triangle


@pytest.fixture
def kernel():
    return SpIC0()


class TestReference:
    def test_tiny_matches_dense_cholesky(self, tiny_spd):
        """When the pattern has no fill, IC(0) == exact Cholesky."""
        factor = spic0_reference(tiny_spd)
        np.testing.assert_allclose(
            factor.to_dense(), np.linalg.cholesky(tiny_spd.to_dense()), rtol=1e-12
        )

    def test_dense_spd_matches_cholesky(self, rng):
        dense = rng.random((8, 8))
        spd = dense @ dense.T + 8 * np.eye(8)
        a = csr_from_dense(spd)
        factor = spic0_reference(a)
        np.testing.assert_allclose(factor.to_dense(), np.linalg.cholesky(spd), rtol=1e-10)

    def test_defect_zero_on_pattern(self, all_small_matrices, kernel):
        for name, a in all_small_matrices.items():
            factor = spic0_reference(a)
            assert ic0_defect(a, factor) < 1e-12, name

    def test_factor_structure_is_lower_pattern(self, mesh):
        factor = spic0_reference(mesh)
        low = lower_triangle(mesh)
        np.testing.assert_array_equal(factor.indptr, low.indptr)
        np.testing.assert_array_equal(factor.indices, low.indices)

    def test_positive_diagonal(self, mesh):
        factor = spic0_reference(mesh)
        assert np.all(factor.diagonal() > 0)

    def test_non_spd_raises(self):
        a = csr_from_dense(np.array([[1.0, 2.0], [2.0, 1.0]]))  # indefinite
        with pytest.raises(KernelError, match="pivot"):
            spic0_reference(a)

    def test_missing_diagonal_raises(self):
        a = csr_from_dense(np.array([[1.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(KernelError, match="diagonal"):
            spic0_reference(a)


class TestInOrder:
    def test_identity_order_matches(self, mesh):
        ref = spic0_reference(mesh)
        got = spic0_in_order(mesh, np.arange(mesh.n_rows))
        np.testing.assert_allclose(got.data, ref.data, rtol=1e-12)

    def test_topological_order_matches(self, irregular, kernel):
        from repro.graph import topological_order

        order = topological_order(kernel.dag(irregular))
        ref = spic0_reference(irregular)
        got = spic0_in_order(irregular, order)
        np.testing.assert_allclose(got.data, ref.data, rtol=1e-10)

    def test_violation_raises(self, mesh):
        with pytest.raises(KernelError, match="factored before"):
            spic0_in_order(mesh, np.arange(mesh.n_rows)[::-1].copy())

    def test_non_permutation_rejected(self, mesh):
        with pytest.raises(KernelError, match="permutation"):
            spic0_in_order(mesh, np.zeros(mesh.n_rows, dtype=int))


class TestInspectorInterface:
    def test_cost_positive_and_grows_with_deps(self, mesh, kernel):
        c = kernel.cost(mesh)
        assert np.all(c >= 1)
        # later rows (more lower neighbours) cost at least as much as row 0
        assert c.max() > c[0]

    def test_memory_model_edges_use_source_rows(self, mesh, kernel):
        g = kernel.dag(mesh)
        m = kernel.memory_model(mesh, g)
        m.validate(g)
        src, _ = g.edge_list()
        low = lower_triangle(mesh)
        from repro.kernels import lines_of_rows

        per_row, _ = lines_of_rows(low)
        np.testing.assert_array_equal(m.edge_lines, per_row[src].astype(float))

    def test_verify_detects_wrong_factor(self, tiny_spd, kernel):
        factor = spic0_reference(tiny_spd)
        bad = factor.with_data(factor.data * 1.5)
        assert kernel.verify(tiny_spd, bad) > 0.1
