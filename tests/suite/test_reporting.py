"""Tests for the reporting helpers."""

import json
import math

import pytest

from repro.suite.reporting import dump_json, fmt, format_kv, format_table, geomean


class TestFmt:
    def test_floats_rounded(self):
        assert fmt(1.23456) == "1.23"
        assert fmt(1.23456, digits=3) == "1.235"

    def test_large_floats_compact(self):
        assert fmt(1234567.0) == "1.23e+06"

    def test_nonfinite(self):
        assert fmt(float("inf")) == "inf"
        assert fmt(float("nan")) == "-"

    def test_bool(self):
        assert fmt(True) == "yes"
        assert fmt(False) == "no"

    def test_other_types(self):
        assert fmt("text") == "text"
        assert fmt(7) == "7"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "val"], [["a", 1.0], ["long-name", 22.5]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        # numeric column right-aligned: both rows end at the same offset
        assert lines[2].rstrip().endswith("1.00")
        assert lines[3].rstrip().endswith("22.50")

    def test_title_underlined(self):
        out = format_table(["a"], [[1]], title="My Table")
        lines = out.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestFormatKv:
    def test_basic(self):
        out = format_kv({"alpha": 1.5, "b": "x"}, title="vals")
        assert out.splitlines()[0] == "vals"
        assert "alpha : 1.50" in out
        assert "b     : x" in out

    def test_empty(self):
        assert format_kv({}) == ""


class TestDumpJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.json"
        dump_json({"a": [1, 2], "b": 1.5}, str(path))
        assert json.loads(path.read_text()) == {"a": [1, 2], "b": 1.5}

    def test_nonfinite_survives(self, tmp_path):
        # python-json extension: Infinity literal round-trips through loads
        path = tmp_path / "x.json"
        dump_json({"v": float("inf")}, str(path))
        assert json.loads(path.read_text())["v"] == float("inf")

    def test_numpy_arrays(self, tmp_path):
        import numpy as np

        path = tmp_path / "x.json"
        dump_json({"v": np.arange(3)}, str(path))
        assert json.loads(path.read_text())["v"] == [0, 1, 2]


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_skips_nonfinite_and_nonpositive(self):
        assert geomean([4.0, float("inf"), 0.0, -1.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0
