"""Evaluation metrics: the paper's locality / load-balance / sync trio plus
structural indicators, NRE, and correlation fits."""

from .correlation import LinearFit, linear_fit, r_squared
from .load_balance import imbalance_ratio, level_widths, measured_pg
from .locality import avg_memory_access_latency, locality_improvement
from .nre import INSPECTOR_CONSTANTS, inspector_cost_model, inspector_operations, nre, two_hop_ops
from .parallelism import (
    DagShape,
    avg_nnz_per_wavefront,
    average_parallelism,
    dag_shape,
    span_speedup_bound,
    weighted_critical_path,
)
from .reuse import ReuseProfile, reuse_profile
from .synchronization import barrier_equivalent, equivalent_p2p_syncs, sync_improvement

__all__ = [
    "measured_pg",
    "imbalance_ratio",
    "level_widths",
    "avg_memory_access_latency",
    "locality_improvement",
    "equivalent_p2p_syncs",
    "sync_improvement",
    "barrier_equivalent",
    "average_parallelism",
    "avg_nnz_per_wavefront",
    "dag_shape",
    "weighted_critical_path",
    "span_speedup_bound",
    "DagShape",
    "reuse_profile",
    "ReuseProfile",
    "nre",
    "inspector_cost_model",
    "inspector_operations",
    "two_hop_ops",
    "INSPECTOR_CONSTANTS",
    "linear_fit",
    "r_squared",
    "LinearFit",
]
