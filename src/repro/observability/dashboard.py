"""Self-contained HTML service dashboard (``hdagg-bench service dash``).

The dashboard is rendered offline from the artifacts a telemetry replay
(or any :class:`~repro.observability.telemetry.MetricsSnapshotter` user)
leaves behind — no server, no network, one HTML file that opens anywhere:

* ``metrics.jsonl`` — periodic registry snapshots; the time axis for
  every sparkline (drawn with :func:`repro.perflab.report.sparkline`,
  the same SVG renderer the perf-lab reports use);
* ``replay.json`` (optional) — the replay report plus the request-tree
  validation verdict, rendered as a header card.

The text twin ``hdagg-bench service stats`` prints the same summary —
:func:`service_summary` is the shared extraction step, so the terminal
and the HTML never disagree about what the metrics say.
"""

from __future__ import annotations

import html
import json
from os import PathLike
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..perflab.report import sparkline
from .metrics import Histogram
from .telemetry import TIERS, load_snapshots

#: Latency-outcome labels (``service.latency.outcome.*`` in the catalog).
_LATENCY_OUTCOMES = ("ok", "degraded", "shed", "deadline")

__all__ = [
    "SERVICE_COUNTERS",
    "STORE_METRICS",
    "service_summary",
    "format_stats",
    "dashboard_html",
    "render_dashboard",
]

#: Service counters shown on the overview panel, in display order.
SERVICE_COUNTERS = (
    "requests",
    "memory_hits",
    "store_hits",
    "inspected",
    "coalesced",
    "rejected",
    "degraded",
    "retries",
    "sheds.frontdoor",
    "sheds.broker",
    "deadline_misses",
    "store_write_errors",
)

#: Store-health metrics (counters and gauges) shown on the store panel.
STORE_METRICS = (
    "store.writes",
    "store.hits",
    "store.misses",
    "store.evictions",
    "store.quarantined",
    "store.quarantine_count",
    "store.shard_occupancy",
    "store.occupancy_bytes",
    "store.manifest_repairs",
    "store.manifest_rebuilds",
    "store.codec_errors",
)

_QUANTILES = (0.5, 0.9, 0.99)


def _value(metrics: dict, name: str) -> Optional[float]:
    blob = metrics.get(name)
    if isinstance(blob, dict) and "value" in blob:
        return float(blob["value"])
    return None


def _histogram(metrics: dict, name: str) -> Optional[Histogram]:
    blob = metrics.get(name)
    if isinstance(blob, dict) and blob.get("type") == "histogram":
        return Histogram.from_dict(name, blob)
    return None


def _latency_row(metrics: dict, name: str) -> Optional[dict]:
    hist = _histogram(metrics, name)
    if hist is None or hist.count == 0:
        return None
    row: Dict[str, Union[int, float, None]] = {"count": hist.count, "mean_seconds": hist.mean}
    for q in _QUANTILES:
        row[f"p{int(q * 100)}_seconds"] = hist.quantile(q)
    return row


def service_summary(metrics: dict) -> dict:
    """Structured service summary from one registry-``as_dict`` blob.

    The single extraction step behind both ``service stats`` (text) and
    ``service dash`` (HTML): service counters, per-tier / per-outcome
    latency quantiles, queue-wait and coalesce fan-in digests, and the
    store-health metrics.  Absent metrics are simply omitted — a summary
    over a registry that never served traffic is the empty-ish dict, not
    an error.
    """
    counters = {}
    for name in SERVICE_COUNTERS:
        v = _value(metrics, f"service.{name}")
        if v is not None:
            counters[name] = int(v)
    tiers = {}
    for tier in TIERS:
        row = _latency_row(metrics, f"service.latency.tier.{tier}")
        if row is not None:
            tiers[tier] = row
    served = sum(r["count"] for r in tiers.values())
    for row in tiers.values():
        row["share"] = row["count"] / served if served else 0.0
    outcomes = {}
    for outcome in _LATENCY_OUTCOMES:
        row = _latency_row(metrics, f"service.latency.outcome.{outcome}")
        if row is not None:
            outcomes[outcome] = row
    summary = {
        "counters": counters,
        "tiers": tiers,
        "outcomes": outcomes,
        "store": {},
    }
    queue = _latency_row(metrics, "service.queue_wait_seconds")
    if queue is not None:
        summary["queue_wait"] = queue
    fanin = _histogram(metrics, "service.coalesce_fanin")
    if fanin is not None and fanin.count:
        summary["coalesce_fanin"] = {
            "count": fanin.count,
            "mean": fanin.mean,
            "max": fanin.max,
        }
    for name in STORE_METRICS:
        v = _value(metrics, name)
        if v is not None:
            summary["store"][name.split(".", 1)[1]] = v
    return summary


def _fmt_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    return f"{seconds * 1e3:.3f} ms"


def format_stats(summary: dict) -> str:
    """Render a :func:`service_summary` as aligned terminal text."""
    lines: List[str] = []
    counters = summary.get("counters", {})
    if counters:
        lines.append("service counters")
        for name, value in counters.items():
            lines.append(f"  {name:18s} {value:>10d}")
    for section, label in (("tiers", "latency by tier"), ("outcomes", "latency by outcome")):
        rows = summary.get(section, {})
        if rows:
            lines.append(f"{label} (count / p50 / p99)")
            for name, row in sorted(rows.items()):
                share = f"  {row['share']:6.1%}" if "share" in row else ""
                lines.append(
                    f"  {name:12s} {row['count']:>8d}  "
                    f"{_fmt_seconds(row.get('p50_seconds')):>12s}  "
                    f"{_fmt_seconds(row.get('p99_seconds')):>12s}{share}"
                )
    queue = summary.get("queue_wait")
    if queue:
        lines.append(
            f"queue wait   p50 {_fmt_seconds(queue.get('p50_seconds'))}  "
            f"p99 {_fmt_seconds(queue.get('p99_seconds'))}"
        )
    fanin = summary.get("coalesce_fanin")
    if fanin:
        lines.append(
            f"coalesce     flights {fanin['count']}  mean fan-in {fanin['mean']:.2f}  "
            f"max {fanin['max']:.0f}"
        )
    store = summary.get("store", {})
    if store:
        lines.append("store health")
        for name, value in store.items():
            lines.append(f"  {name:18s} {value:>10.0f}")
    if not lines:
        lines.append("no service metrics recorded")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
_CSS = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 72em; color: #1a1a1a; padding: 0 1em; }
h1, h2 { font-weight: 600; }
table { border-collapse: collapse; margin: 1em 0; width: 100%; }
th, td { border: 1px solid #d0d0d0; padding: 0.35em 0.6em; text-align: left; }
th { background: #f2f2f2; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.ok { color: #006400; font-weight: 600; }
.bad { color: #b30000; font-weight: 700; }
.muted { color: #777; }
code { background: #f5f5f5; padding: 0 0.25em; }
svg.spark { vertical-align: middle; }
.cards { display: flex; flex-wrap: wrap; gap: 0.8em; margin: 1em 0; }
.card { border: 1px solid #d0d0d0; border-radius: 6px; padding: 0.5em 0.9em;
        min-width: 8em; }
.card .v { font-size: 1.5em; font-weight: 600; }
.card .k { color: #777; font-size: 0.85em; }
"""


def _series(snapshots: Sequence[dict], name: str) -> List[Optional[float]]:
    """Per-snapshot trajectory of one metric (counter/gauge value,
    histogram count) — the sparkline input."""
    out: List[Optional[float]] = []
    for snap in snapshots:
        blob = snap.get("metrics", {}).get(name)
        if not isinstance(blob, dict):
            out.append(None)
        elif blob.get("type") == "histogram":
            out.append(float(blob.get("count", 0)))
        else:
            out.append(_value(snap.get("metrics", {}), name))
    return out


def dashboard_html(
    snapshots: Sequence[dict],
    *,
    title: str = "Service dashboard",
    replay: Optional[dict] = None,
) -> str:
    """Render the dashboard from snapshot lines (+ optional replay report).

    ``snapshots`` come from :func:`~repro.observability.telemetry.load_snapshots`;
    the final snapshot supplies the summary numbers and the whole
    sequence supplies the sparkline trajectories.  Entirely
    self-contained — inline CSS, inline SVG, zero network access.
    """
    esc = html.escape
    metrics = snapshots[-1].get("metrics", {}) if snapshots else {}
    summary = service_summary(metrics)
    elapsed = snapshots[-1].get("elapsed_s", 0.0) if snapshots else 0.0
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{esc(title)}</title><style>{_CSS}</style></head><body>",
        f"<h1>{esc(title)}</h1>",
        f"<p class='muted'>{len(snapshots)} snapshots over {elapsed:.1f}s; "
        f"{len(metrics)} metrics in the final registry.</p>",
    ]
    if replay is not None:
        report = replay.get("report", replay)
        problems = replay.get("span_problems", [])
        verdict = (
            "<span class='ok'>request trees valid</span>"
            if not problems
            else f"<span class='bad'>{len(problems)} span problems</span>"
        )
        parts.append("<div class='cards'>")
        for key, label in (
            ("n_ok", "served"),
            ("n_rejected", "shed"),
            ("n_degraded", "degraded"),
        ):
            if key in report:
                parts.append(
                    f"<div class='card'><div class='v'>{report[key]}</div>"
                    f"<div class='k'>{label}</div></div>"
                )
        if "hit_rate" in report:
            parts.append(
                f"<div class='card'><div class='v'>{report['hit_rate']:.1%}</div>"
                "<div class='k'>hit rate</div></div>"
            )
        parts.append(f"<div class='card'><div class='v'>{verdict}</div>"
                     "<div class='k'>trace check</div></div>")
        parts.append("</div>")
        for problem in problems[:10]:
            parts.append(f"<p class='bad'><code>{esc(str(problem))}</code></p>")
    counters = summary.get("counters", {})
    if counters:
        parts.append("<h2>Service</h2><table><tr><th>counter</th>"
                     "<th>total</th><th>trajectory</th></tr>")
        for name, value in counters.items():
            traj = _series(snapshots, f"service.{name}")
            parts.append(
                f"<tr><td><code>service.{esc(name)}</code></td>"
                f"<td class='num'>{value}</td><td>{sparkline(traj)}</td></tr>"
            )
        parts.append("</table>")
    for section, heading in (
        ("tiers", "Latency by tier"),
        ("outcomes", "Latency by outcome"),
    ):
        rows = summary.get(section, {})
        if not rows:
            continue
        parts.append(f"<h2>{heading}</h2><table><tr><th>{section[:-1]}</th>"
                     "<th>count</th><th>p50</th><th>p90</th><th>p99</th>"
                     + ("<th>share</th>" if section == "tiers" else "")
                     + "<th>trajectory</th></tr>")
        prefix = "tier" if section == "tiers" else "outcome"
        for name, row in sorted(rows.items()):
            traj = _series(snapshots, f"service.latency.{prefix}.{name}")
            share = (
                f"<td class='num'>{row['share']:.1%}</td>" if "share" in row else ""
            )
            parts.append(
                f"<tr><td><code>{esc(name)}</code></td>"
                f"<td class='num'>{row['count']}</td>"
                f"<td class='num'>{_fmt_seconds(row.get('p50_seconds'))}</td>"
                f"<td class='num'>{_fmt_seconds(row.get('p90_seconds'))}</td>"
                f"<td class='num'>{_fmt_seconds(row.get('p99_seconds'))}</td>"
                f"{share}<td>{sparkline(traj)}</td></tr>"
            )
        parts.append("</table>")
    extras = []
    queue = summary.get("queue_wait")
    if queue:
        extras.append(
            f"queue wait: p50 {_fmt_seconds(queue.get('p50_seconds'))}, "
            f"p99 {_fmt_seconds(queue.get('p99_seconds'))} over {queue['count']} requests"
        )
    fanin = summary.get("coalesce_fanin")
    if fanin:
        extras.append(
            f"coalesce fan-in: mean {fanin['mean']:.2f}, max {fanin['max']:.0f} "
            f"over {fanin['count']} led flights"
        )
    if extras:
        parts.append("<p>" + "; ".join(esc(e) for e in extras) + ".</p>")
    store = summary.get("store", {})
    if store:
        parts.append("<h2>Store health</h2><table><tr><th>metric</th>"
                     "<th>value</th><th>trajectory</th></tr>")
        for name, value in store.items():
            traj = _series(snapshots, f"store.{name}")
            parts.append(
                f"<tr><td><code>store.{esc(name)}</code></td>"
                f"<td class='num'>{value:.0f}</td><td>{sparkline(traj)}</td></tr>"
            )
        parts.append("</table>")
    parts.append("</body></html>")
    return "".join(parts)


def render_dashboard(
    telemetry_dir: Union[str, PathLike],
    out_path: Union[str, PathLike, None] = None,
    *,
    title: str = "Service dashboard",
) -> Path:
    """Read a telemetry directory and write ``dashboard.html`` into it.

    The directory is whatever ``run_replay_with_telemetry`` (or a manual
    snapshotter) produced: ``metrics.jsonl`` is required, ``replay.json``
    is picked up when present.  Returns the written path.
    """
    root = Path(telemetry_dir)
    metrics_path = root / "metrics.jsonl"
    if not metrics_path.exists():
        raise FileNotFoundError(f"{metrics_path}: no metrics snapshots to render")
    snapshots = load_snapshots(metrics_path)
    replay = None
    replay_path = root / "replay.json"
    if replay_path.exists():
        replay = json.loads(replay_path.read_text(encoding="utf-8"))
    out = Path(out_path) if out_path is not None else root / "dashboard.html"
    out.write_text(dashboard_html(snapshots, title=title, replay=replay), encoding="utf-8")
    return out
