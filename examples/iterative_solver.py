#!/usr/bin/env python
"""Iterative solver: the workload that amortises the inspector (Figure 9).

Preconditioned conjugate gradient with an IC(0) preconditioner applies the
same two triangular solves at every iteration — "these overheads are
quickly amortized in iterative solvers where a kernel is executed tens of
thousands of times" (Section V-B).  This example:

1. factors A with schedule-driven SpIC0;
2. runs CG and PCG, counting kernel executions;
3. evaluates Equation 2's NRE with the modelled inspector cost and the
   simulated per-execution gain, showing the break-even point.

Run:  python examples/iterative_solver.py
"""

import numpy as np

from repro import INTEL20, hdagg, simulate
from repro.kernels import SpIC0, SpTRSV
from repro.kernels.sptrsv import sptrsv_levelwise, sptrsv_transpose_levelwise
from repro.metrics import inspector_cost_model, nre
from repro.schedulers import serial_schedule
from repro.sparse import apply_ordering, conjugate_gradient, poisson2d


def main() -> None:
    a, _ = apply_ordering(poisson2d(40, seed=3), "nd")
    rng = np.random.default_rng(0)
    b = rng.normal(size=a.n_rows)
    print(f"system: n={a.n_rows}, nnz={a.nnz}")

    # ---- factor with a schedule-driven SpIC0 ------------------------
    ic0 = SpIC0()
    g = ic0.dag(a)
    schedule = hdagg(g, ic0.cost(a), INTEL20.n_cores)
    factor = ic0.execute_in_order(a, schedule.execution_order())
    print(f"IC(0) defect: {ic0.verify(a, factor):.2e}")

    from repro.graph import compute_wavefronts

    waves = compute_wavefronts(g)  # shared by both triangular sweeps

    def preconditioner(r):
        y = sptrsv_levelwise(factor, r, waves)  # L y = r (forward sweep)
        return sptrsv_transpose_levelwise(factor, y, waves)  # L^T z = y

    # ---- CG vs PCG ---------------------------------------------------
    plain = conjugate_gradient(a, b, tol=1e-10)
    pcg = conjugate_gradient(a, b, preconditioner=preconditioner, tol=1e-10)
    print(f"CG  iterations: {plain.iterations} (converged={plain.converged})")
    print(f"PCG iterations: {pcg.iterations} (converged={pcg.converged})")
    solves_performed = 2 * pcg.iterations  # L and L^T per iteration

    # ---- when does the inspector pay for itself? ---------------------
    trsv = SpTRSV()
    low = factor
    g_trsv = trsv.dag(low)
    cost = trsv.cost(low)
    mem = trsv.memory_model(low, g_trsv)
    sched = hdagg(g_trsv, cost, INTEL20.n_cores)
    serial = simulate(serial_schedule(g_trsv, cost), g_trsv, cost, mem, INTEL20.scaled(1))
    parallel = simulate(sched, g_trsv, cost, mem, INTEL20)
    insp = inspector_cost_model("hdagg", g_trsv, sched)
    required = nre(insp, serial, parallel)
    print(
        f"SpTRSV speedup {serial.makespan_cycles / parallel.makespan_cycles:.2f}x; "
        f"NRE = {required:.1f} kernel executions to amortise the inspector"
    )
    print(
        f"this PCG run performs {solves_performed} triangular solves -> "
        f"inspector amortised {solves_performed / max(required, 1e-9):.1f}x over"
        if solves_performed > required
        else f"this run performs {solves_performed} solves; a longer solve "
        f"(or more right-hand sides) amortises the inspector"
    )


if __name__ == "__main__":
    main()
