"""Cross-cutting contract tests: every scheduler x every matrix family."""

import numpy as np
import pytest

from repro.graph import dag_from_matrix_lower, verify_schedule_order
from repro.kernels import KERNELS
from repro.schedulers import SCHEDULERS, get_scheduler
from repro.sparse import lower_triangle

ALGOS = ["hdagg", "wavefront", "spmp", "lbc", "dagp", "mkl", "serial"]


def build(name, g, cost, p):
    builder = SCHEDULERS[name]
    return builder(g, cost, p) if name != "serial" else builder(g, cost)


@pytest.mark.parametrize("name", ALGOS)
def test_schedule_contract(name, all_small_matrices):
    """Partition-cover, dependence safety, and a valid topological order."""
    for mname, a in all_small_matrices.items():
        g = dag_from_matrix_lower(a)
        cost = KERNELS["spilu0"].cost(a)
        s = build(name, g, cost, 4)
        s.validate(g)
        assert verify_schedule_order(g, s.execution_order()), (name, mname)
        assert s.n == g.n


@pytest.mark.parametrize("name", ALGOS)
def test_deterministic(name, mesh_nd):
    g = dag_from_matrix_lower(mesh_nd)
    cost = KERNELS["spilu0"].cost(mesh_nd)
    s1, s2 = build(name, g, cost, 4), build(name, g, cost, 4)
    assert s1.execution_order().tolist() == s2.execution_order().tolist()


@pytest.mark.parametrize("name", [a for a in ALGOS if a != "serial"])
def test_numerics_via_interleaved_execution(name, mesh_nd, rng):
    """Adversarial interleaving within levels must still compute correctly."""
    from repro.runtime import execute_schedule

    kernel = KERNELS["sptrsv"]
    low = lower_triangle(mesh_nd)
    g = kernel.dag(low)
    s = build(name, g, kernel.cost(low), 4)
    b = rng.normal(size=mesh_nd.n_rows)
    ref = kernel.reference(low, b)
    for seed in (0, 1, 2):
        got = execute_schedule(kernel, low, s, b, interleave_seed=seed)
        np.testing.assert_allclose(got, ref, rtol=1e-10, err_msg=f"{name} seed={seed}")


def test_registry_contents():
    for name in ALGOS:
        assert name in SCHEDULERS
    assert get_scheduler("hdagg") is SCHEDULERS["hdagg"]


def test_registry_unknown():
    with pytest.raises(KeyError, match="available"):
        get_scheduler("nope")


@pytest.mark.parametrize("name", [a for a in ALGOS if a != "serial"])
def test_p_equals_one_collapses(name, mesh):
    g = dag_from_matrix_lower(mesh)
    s = build(name, g, np.ones(g.n), 1)
    s.validate(g)
    for level in s.levels:
        assert len(level) == 1 or all(part.core in (0, -1) for part in level)


@pytest.mark.parametrize("name", [a for a in ALGOS if a != "serial"])
def test_more_cores_than_vertices(name):
    from repro.sparse import poisson2d

    a = poisson2d(3, seed=1)  # 9 vertices
    g = dag_from_matrix_lower(a)
    s = build(name, g, np.ones(9), 32)
    s.validate(g)
