"""Machine models: the simulated stand-ins for the paper's testbeds.

The evaluation machines (Section V) are a 20-core Intel Xeon Gold 6248
(2.5 GHz, 28 MB LLC) and a 64-core AMD EPYC 7742 (2.25 GHz, 256 MB LLC).
Neither the silicon nor its PAPI counters are available to a pure-Python
reproduction, so :class:`MachineConfig` captures the handful of parameters
the paper's three metrics actually depend on:

* ``n_cores`` — width of the schedule;
* ``cache_lines_per_core`` — private capacity of the per-core LRU model
  (L2 plus the core's LLC share, in 64-byte lines);
* ``hit_cycles`` / ``miss_cycles`` — the two levels of the memory-latency
  model, whose access-weighted mean is the paper's "average memory access
  latency" locality metric;
* ``cycles_per_cost_unit`` — compute cycles per non-zero touched;
* ``p2p_sync_cycles`` — cost of one point-to-point synchronisation; a
  global barrier costs ``p * log2(p)`` of these, the same conversion the
  paper uses to compare sync counts (Section V-A).

The constants are order-of-magnitude hardware values; every comparison in
the harness is *relative* (HDagg vs baseline on the same machine model), so
shapes are insensitive to their exact calibration.

**Dataset scaling.**  The paper's matrices span 5.1e5 - 5.9e7 non-zeros;
the pure-Python suite scales them down by roughly ``DATASET_SCALE = 64x``
to keep inspection tractable (DESIGN.md).  Two derived constants keep the
*regimes* of the scaled pair faithful to the real pair:

* ``CACHE_SCALE`` divides the physical per-core cache capacities.  What
  matters for locality is the reuse *reach* — how many wavefronts back a
  dependence can still hit.  Footprint-per-level scales sub-linearly with
  matrix size (levels grow with the critical path), so capacity must
  shrink faster than size; 256x places the large third of the suite in
  the capacity-bound regime and the small third in the cache-resident
  regime, the same split the paper's Table III buckets exhibit.
* ``SYNC_SCALE`` divides the physical synchronisation latencies, keeping
  the work-per-level : barrier-cost ratio of the scaled pair at the
  testbed's few-percent level instead of letting barriers dominate the
  much smaller scaled levels.

Both constants are calibrated once, globally — never per algorithm or per
matrix — so all comparisons remain like-for-like.  EXPERIMENTS.md records
the calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MachineConfig", "INTEL20", "AMD64", "LAPTOP4", "MACHINES", "DATASET_SCALE", "CACHE_SCALE", "SYNC_SCALE"]

#: Factor by which the matrix suite is scaled down vs the paper's dataset.
DATASET_SCALE = 64

#: Divisor applied to physical cache capacities (see module docstring).
CACHE_SCALE = 256

#: Divisor applied to physical synchronisation latencies (see module docstring).
SYNC_SCALE = 20


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of one simulated multicore machine."""

    name: str
    n_cores: int
    cache_lines_per_core: int
    hit_cycles: float = 4.0
    miss_cycles: float = 150.0
    cycles_per_cost_unit: float = 2.0
    p2p_sync_cycles: float = 100.0
    #: Optional memory-bandwidth contention: each concurrently active core
    #: inflates miss latency by this fraction (0 = unthrottled, the default
    #: calibration; see docs/MODEL.md "what the model does not capture").
    bandwidth_contention: float = 0.0

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        if self.cache_lines_per_core < 1:
            raise ValueError("cache_lines_per_core must be >= 1")

    @property
    def barrier_cycles(self) -> float:
        """Cost of one global barrier: ``p * log2(p)`` point-to-point syncs.

        This is the paper's equivalence rule for counting synchronisation,
        applied to latency as well (tree-structured barrier).
        """
        p = self.n_cores
        return p * max(1.0, math.log2(p)) * self.p2p_sync_cycles

    def scaled(self, n_cores: int) -> "MachineConfig":
        """Same machine with a different active core count.

        LLC is shared, so the per-core share grows as cores shrink; the
        private-L2 part is approximated as 40% of the configured capacity.
        """
        private = int(0.4 * self.cache_lines_per_core)
        shared_total = (self.cache_lines_per_core - private) * self.n_cores
        return MachineConfig(
            name=f"{self.name}@{n_cores}",
            n_cores=n_cores,
            cache_lines_per_core=private + shared_total // n_cores,
            hit_cycles=self.hit_cycles,
            miss_cycles=self.miss_cycles,
            cycles_per_cost_unit=self.cycles_per_cost_unit,
            p2p_sync_cycles=self.p2p_sync_cycles,
            bandwidth_contention=self.bandwidth_contention,
        )


def _lines(n_bytes: float) -> int:
    return int(n_bytes // 64)


#: Intel Xeon Gold 6248 stand-in: 20 cores, 1 MB private L2 + 28 MB shared
#: LLC, capacities divided by DATASET_SCALE (see module docstring).
INTEL20 = MachineConfig(
    name="intel20",
    n_cores=20,
    cache_lines_per_core=_lines((1.0 * 2**20 + 28 * 2**20 / 20) / CACHE_SCALE),
    hit_cycles=4.0,
    miss_cycles=150.0,
    cycles_per_cost_unit=2.0,
    p2p_sync_cycles=100.0 / SYNC_SCALE,
)

#: AMD EPYC 7742 stand-in: 64 cores, 512 KB private L2 + 256 MB shared LLC,
#: capacities divided by DATASET_SCALE (see module docstring).
AMD64 = MachineConfig(
    name="amd64",
    n_cores=64,
    cache_lines_per_core=_lines((0.5 * 2**20 + 256 * 2**20 / 64) / CACHE_SCALE),
    hit_cycles=4.0,
    miss_cycles=200.0,
    cycles_per_cost_unit=2.0,
    p2p_sync_cycles=120.0 / SYNC_SCALE,
)

#: Small 4-core model for tests: a tiny cache makes locality effects visible
#: on test-sized matrices.
LAPTOP4 = MachineConfig(
    name="laptop4",
    n_cores=4,
    cache_lines_per_core=128,
    hit_cycles=4.0,
    miss_cycles=120.0,
    cycles_per_cost_unit=2.0,
    p2p_sync_cycles=80.0 / SYNC_SCALE,
)

#: Registry used by the harness/CLI.
MACHINES = {m.name: m for m in (INTEL20, AMD64, LAPTOP4)}
