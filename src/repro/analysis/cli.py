"""``hdagg-bench analyze``: certify schedules across the suite.

Runs the static analyses over a (matrix x kernel x scheduler) grid:

* dependence verifier — every DAG edge ordered by the schedule;
* memory-footprint race detector — no same-wavefront cross-partition
  footprint conflict (independent of the DAG construction);
* optional happens-before trace check (``--trace``) — execute through the
  threaded runtime and replay the event log through vector clocks;
* optional mutation harness (``--mutate``) — inject the known-unsafe
  schedule edits and fail unless every applicable mutation is caught.

Exit status is non-zero on any finding (or escaped mutant), which is what
the CI smoke job keys on.  Examples::

    hdagg-bench analyze --suite --quick
    hdagg-bench analyze --suite --kernels sptrsv --schedulers hdagg lbc
    hdagg-bench analyze --suite --quick --trace --mutate --json analyze.json
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional

from ..kernels import KERNELS
from ..schedulers import SCHEDULERS
from ..sparse.ordering import apply_ordering
from ..sparse.triangular import lower_triangle
from .footprint import FOOTPRINTS, kernel_footprint
from .mutate import run_mutation_suite
from .races import detect_races
from .tracecheck import TraceRecorder, check_trace
from .verifier import verify_dependences

__all__ = ["analyze_main", "build_analyze_parser", "analyze_grid"]

#: kernels with a footprint model — the grid the smoke job certifies.
DEFAULT_KERNELS = ("sptrsv", "spic0", "spilu0")


def build_analyze_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="hdagg-bench analyze", description=__doc__)
    p.add_argument("--suite", action="store_true", help="run over the evaluation dataset")
    p.add_argument("--quick", action="store_true", help="small per-family subset")
    p.add_argument("--matrices", nargs="+", default=None, help="restrict to named matrices")
    p.add_argument("--kernels", nargs="+", default=list(DEFAULT_KERNELS))
    p.add_argument("--schedulers", nargs="+", default=None,
                   help="scheduler names (default: every registered scheduler)")
    p.add_argument("--cores", type=int, default=8, help="core count to schedule for")
    p.add_argument("--epsilon", type=float, default=None, help="HDagg/LBC balance threshold")
    p.add_argument("--ordering", default="nd", choices=["nd", "rcm", "natural", "random"])
    p.add_argument("--trace", action="store_true",
                   help="also execute through the threaded runtime and check the trace")
    p.add_argument("--timeline", action="store_true",
                   help="also collect the simulator's per-core model timeline and "
                        "report its load-balance / sync summary per combination")
    p.add_argument("--mutate", action="store_true",
                   help="also run the mutation harness and fail on escaped mutants")
    p.add_argument("--max-witnesses", type=int, default=4)
    p.add_argument("--json", default=None, help="dump per-combination results to a JSON file")
    p.add_argument("--out-dir", default=None,
                   help="artifact directory (created if missing); a relative "
                        "--json path is placed inside it, and omitting --json "
                        "writes analyze.json there — same convention as "
                        "'trace --out-dir' and 'perf report --out-dir'")
    return p


def _schedulers_for(names: Optional[List[str]], kernel: str) -> List[str]:
    chosen = list(names) if names else sorted(SCHEDULERS)
    # MKL's SpIC0/SpILU0 are not parallel (Section V): same rule as the harness
    return [a for a in chosen if not (a == "mkl" and kernel != "sptrsv")]


def analyze_grid(
    specs,
    *,
    kernels=DEFAULT_KERNELS,
    schedulers: Optional[List[str]] = None,
    cores: int = 8,
    epsilon: Optional[float] = None,
    ordering: str = "nd",
    trace: bool = False,
    mutate: bool = False,
    timeline: bool = False,
    max_witnesses: int = 4,
    progress=None,
) -> List[Dict]:
    """Certify every (matrix, kernel, scheduler) combination; returns rows.

    Each row carries ``ok`` plus the individual analysis outcomes; callers
    (CLI, tests, CI) decide how to render or fail.
    """
    rows: List[Dict] = []
    for spec in specs:
        t_prep = time.perf_counter()
        try:
            ordered, _ = apply_ordering(spec.build(), ordering)
        except Exception as exc:
            # a broken matrix must not kill the rest of the grid: emit one
            # structured error row and move on
            row = _error_row(spec.name, "*", "*", exc, time.perf_counter() - t_prep)
            rows.append(row)
            if progress is not None:
                progress(row)
            continue
        for kname in kernels:
            if kname not in FOOTPRINTS:
                raise KeyError(f"kernel {kname!r} has no footprint model")
            kernel = KERNELS[kname]
            operand = lower_triangle(ordered) if kname == "sptrsv" else ordered
            g = kernel.dag(operand)
            cost = kernel.cost(operand)
            fp = kernel_footprint(kname, operand)
            for algo in _schedulers_for(schedulers, kname):
                t0 = time.perf_counter()
                try:
                    kwargs = {}
                    if epsilon is not None and algo in ("hdagg", "lbc"):
                        kwargs["epsilon"] = epsilon
                    schedule = SCHEDULERS[algo](g, cost, cores, **kwargs)
                    dep = verify_dependences(schedule, g, max_witnesses=max_witnesses)
                    races = detect_races(schedule, fp, max_witnesses=max_witnesses)
                    row: Dict = {
                        "matrix": spec.name,
                        "kernel": kname,
                        "algorithm": algo,
                        "n": g.n,
                        "n_edges": g.n_edges,
                        "verifier": dep.as_dict(),
                        "races": races.as_dict(),
                        "ok": dep.ok and races.ok,
                    }
                    if trace:
                        recorder = TraceRecorder()
                        run_trace_ok, trace_detail = _trace_one(schedule, g, cost, recorder)
                        row["trace"] = {"ok": run_trace_ok, "detail": trace_detail,
                                        "n_events": len(recorder)}
                        row["ok"] = row["ok"] and run_trace_ok
                    if timeline:
                        row["timeline"] = _timeline_one(
                            schedule, g, cost, kernel, operand, cores
                        )
                    if mutate:
                        results = run_mutation_suite(schedule, g, fp)
                        escaped = [r.name for r in results if r.escaped]
                        row["mutations"] = {
                            "applied": sum(1 for r in results if r.applied),
                            "caught": sum(1 for r in results if r.caught),
                            "escaped": escaped,
                        }
                        row["ok"] = row["ok"] and not escaped
                    row["seconds"] = time.perf_counter() - t0
                except Exception as exc:
                    row = _error_row(spec.name, kname, algo, exc,
                                     time.perf_counter() - t0,
                                     n=g.n, n_edges=g.n_edges)
                rows.append(row)
                if progress is not None:
                    progress(row)
    return rows


def _error_row(matrix: str, kernel: str, algorithm: str, exc: BaseException,
               seconds: float, *, n: int = 0, n_edges: int = 0) -> Dict:
    """Structured row for a combination that raised instead of analysing."""
    return {
        "matrix": matrix,
        "kernel": kernel,
        "algorithm": algorithm,
        "n": n,
        "n_edges": n_edges,
        "ok": False,
        "error": f"{type(exc).__name__}: {exc}",
        "seconds": seconds,
    }


def _timeline_one(schedule, g, cost, kernel, operand, cores) -> Dict:
    """Model-timeline summary for one combination (opt-in via --timeline)."""
    from ..observability.reports import sync_breakdown
    from ..runtime.machine import MACHINES
    from ..runtime.simulator import simulate

    memory = kernel.memory_model(operand, g)
    sim = simulate(schedule, g, cost, memory, MACHINES["intel20"].scaled(cores),
                   collect_timeline=True)
    breakdown = sync_breakdown(sim.timeline, top=3)
    return {
        "model_pg": sim.timeline.measured_pg(),
        "makespan_cycles": sim.makespan_cycles,
        "busy_cycles": breakdown["busy"],
        "barrier_wait_cycles": breakdown["barrier_wait"],
        "p2p_wait_cycles": breakdown["p2p_wait"],
        "idle_cycles": breakdown["idle"],
        "top_dependences": breakdown["top_dependences"],
    }


def _trace_one(schedule, g, cost, recorder) -> tuple:
    """Threaded no-op execution + vector-clock replay of the trace."""
    from ..runtime.threaded import ThreadedExecutionError, run_threaded

    try:
        run_threaded(schedule, g, lambda v: None, cost=cost,
                     deadlock_timeout=10.0, trace=recorder)
    except ThreadedExecutionError as exc:
        return False, f"executor: {exc}"
    report = check_trace(recorder.events, g)
    return report.ok, "" if report.ok else report.describe()


def _format_row(row: Dict) -> str:
    status = "ok" if row["ok"] else "FAIL"
    if "error" in row:
        return (
            f"{row['matrix']:>14s} {row['kernel']:>7s} {row['algorithm']:>9s} "
            f"{status:>4s} ({row['seconds'] * 1e3:7.1f} ms) error={row['error']}"
        )
    extra = ""
    if not row["verifier"]["ok"]:
        extra += f" dep-violations={row['verifier']['n_violations']}"
    if not row["races"]["ok"]:
        extra += f" race-groups={row['races']['n_conflicting_groups']}"
    if "trace" in row and not row["trace"]["ok"]:
        extra += " trace=FAIL"
    if "mutations" in row:
        m = row["mutations"]
        extra += f" mutants={m['caught']}/{m['applied']}"
        if m["escaped"]:
            extra += f" escaped={','.join(m['escaped'])}"
    if "timeline" in row:
        t = row["timeline"]
        extra += f" model-pg={t['model_pg']:.3f}"
    return (
        f"{row['matrix']:>14s} {row['kernel']:>7s} {row['algorithm']:>9s} "
        f"{status:>4s} ({row['seconds'] * 1e3:7.1f} ms){extra}"
    )


def analyze_main(argv=None) -> int:
    args = build_analyze_parser().parse_args(argv)
    from ..suite.matrices import SUITE, small_suite

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        if args.json is None:
            args.json = os.path.join(args.out_dir, "analyze.json")
        elif not os.path.isabs(args.json):
            args.json = os.path.join(args.out_dir, args.json)

    if args.matrices:
        by_name = {s.name: s for s in SUITE}
        specs = [by_name[m] for m in args.matrices]
    elif args.suite or args.quick:
        specs = small_suite() if args.quick else list(SUITE)
    else:
        print("nothing to analyze: pass --suite, --quick, or --matrices", file=sys.stderr)
        return 2
    for k in args.kernels:
        if k not in KERNELS:
            print(f"unknown kernel {k!r}", file=sys.stderr)
            return 2
    if args.schedulers:
        for a in args.schedulers:
            if a not in SCHEDULERS:
                print(f"unknown scheduler {a!r}; available: {sorted(SCHEDULERS)}",
                      file=sys.stderr)
                return 2

    rows = analyze_grid(
        specs,
        kernels=tuple(args.kernels),
        schedulers=args.schedulers,
        cores=args.cores,
        epsilon=args.epsilon,
        ordering=args.ordering,
        trace=args.trace,
        mutate=args.mutate,
        timeline=args.timeline,
        max_witnesses=args.max_witnesses,
        progress=lambda row: print(_format_row(row), flush=True),
    )
    n_bad = sum(1 for r in rows if not r["ok"])
    verify_s = sum(r["verifier"]["seconds"] for r in rows if "verifier" in r)
    races_s = sum(r["races"]["seconds"] for r in rows if "races" in r)
    print(
        f"# {len(rows)} combinations, {n_bad} findings "
        f"(verifier {verify_s:.2f}s, race detector {races_s:.2f}s)",
        file=sys.stderr,
    )
    if args.json:
        from ..suite.reporting import dump_json

        dump_json({"rows": rows, "n_findings": n_bad}, args.json)
        print(f"# wrote {args.json}", file=sys.stderr)
    for row in rows:
        if row["ok"]:
            continue
        if "error" in row:
            print(f"  error [{row['matrix']}/{row['kernel']}/{row['algorithm']}]: "
                  f"{row['error']}", file=sys.stderr)
            continue
        for w in row["verifier"]["witnesses"]:
            print(f"  witness [{row['matrix']}/{row['kernel']}/{row['algorithm']}]: {w}",
                  file=sys.stderr)
        for w in row["races"]["witnesses"]:
            print(f"  race [{row['matrix']}/{row['kernel']}/{row['algorithm']}]: {w}",
                  file=sys.stderr)
    return 1 if n_bad else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(analyze_main())
