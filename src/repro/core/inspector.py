"""Cached inspector: reuse the expensive analysis across schedule requests.

The inspector-executor pattern splits cost into analyse-once / run-many.
Within the analysis itself there is a second split this class exploits:
the transitive reduction and subtree grouping depend only on the DAG (and
the cost vector via the group cap), while the LBP coarsening also depends
on the core count and the balance threshold.  ``HDaggInspector`` caches
the former, so sweeping ``p`` or ``epsilon`` (autotuning, the ablation
benchmarks, a solver picking its thread count at run time) pays the
two-hop reduction once instead of per request.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..graph.coarsen import Grouping, coarsen_dag
from ..graph.dag import DAG
from ..graph.transitive_reduction import transitive_reduction_two_hop
from .aggregation import subtree_grouping
from .hdagg import expand_lbp_to_schedule
from .lbp import lbp_coarsen
from .pgp import DEFAULT_EPSILON
from .schedule import Schedule

__all__ = ["HDaggInspector"]


class HDaggInspector:
    """Analyse a DAG once; emit HDagg schedules for many ``(p, epsilon)``.

    Parameters mirror :func:`repro.core.hdagg.hdagg`; the grouping cap is
    resolved per request (it depends on ``p``), so the step-1 grouping is
    cached per distinct cap value — for the default fractional cap that
    means one grouping per requested core count, each computed from the
    cached reduced DAG.
    """

    def __init__(
        self,
        g: DAG,
        cost: np.ndarray,
        *,
        transitive_reduce: bool = True,
        group_cost_cap_fraction: float | None = 0.25,
    ) -> None:
        self.g = g
        self.cost = np.asarray(cost, dtype=np.float64)
        if self.cost.shape[0] != g.n:
            raise ValueError(f"cost has length {self.cost.shape[0]}, expected {g.n}")
        self.group_cost_cap_fraction = group_cost_cap_fraction
        self._reduced: DAG = transitive_reduction_two_hop(g) if transitive_reduce else g
        self._groupings: Dict[float | None, Tuple[Grouping, DAG, np.ndarray]] = {}
        self._schedules: Dict[Tuple[int, float, bool], Schedule] = {}

    # ------------------------------------------------------------------
    @property
    def reduced_dag(self) -> DAG:
        """The cached two-hop-reduced DAG (step 1's input)."""
        return self._reduced

    def _grouping_for(self, p: int) -> Tuple[Grouping, DAG, np.ndarray]:
        cap = (
            self.group_cost_cap_fraction * float(self.cost.sum()) / p
            if self.group_cost_cap_fraction is not None
            else None
        )
        if cap not in self._groupings:
            grouping = subtree_grouping(self._reduced, self.cost, cap)
            g2 = coarsen_dag(self._reduced, grouping)
            self._groupings[cap] = (grouping, g2, grouping.group_costs(self.cost))
        return self._groupings[cap]

    def schedule(
        self,
        p: int,
        epsilon: float = DEFAULT_EPSILON,
        *,
        bin_pack: bool = True,
    ) -> Schedule:
        """HDagg schedule for ``p`` cores at threshold ``epsilon`` (cached)."""
        key = (p, epsilon, bin_pack)
        if key in self._schedules:
            return self._schedules[key]
        grouping, g2, group_cost = self._grouping_for(p)
        lbp = lbp_coarsen(g2, group_cost, p, epsilon, allow_fine_grained=True)
        if not bin_pack:
            lbp.fine_grained = True
        meta = {
            "n_groups": grouping.n_groups,
            "n_edges_original": self.g.n_edges,
            "n_edges_reduced": self._reduced.n_edges,
            "n_coarse_vertices": g2.n,
            "n_coarse_wavefronts": len(lbp.coarsened),
            "n_wavefronts": lbp.waves.n_levels,
            "accumulated_pgp": lbp.accumulated_pgp,
            "cut_positions": lbp.cut_positions,
            "epsilon": epsilon,
            "cached_inspector": True,
        }
        s = expand_lbp_to_schedule(lbp, grouping, self.g.n, p, meta=meta)
        self._schedules[key] = s
        return s

    def cache_info(self) -> dict:
        """Sizes of the internal caches (observability for tests/tools)."""
        return {
            "groupings": len(self._groupings),
            "schedules": len(self._schedules),
            "reduced_edges": self._reduced.n_edges,
        }
