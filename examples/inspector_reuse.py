#!/usr/bin/env python
"""Inspector reuse and auto-selection — the library-adoption workflow.

Two features a downstream solver actually needs, composed:

* :class:`repro.core.HDaggInspector` analyses a DAG once and emits
  schedules for any ``(cores, epsilon)`` — the expensive transitive
  reduction and subtree grouping are cached across requests;
* :func:`repro.suite.choose_scheduler` picks serial / wavefront / SpMP /
  HDagg by total cost for an expected execution count (MKL's
  ``expected_calls`` knob made explicit, Section V-B economics).

Run:  python examples/inspector_reuse.py
"""

import time

from repro import INTEL20, simulate
from repro.core import HDaggInspector, hdagg
from repro.kernels import KERNELS
from repro.schedulers import serial_schedule
from repro.sparse import apply_ordering, lower_triangle, poisson2d
from repro.suite import choose_scheduler, format_table


def main() -> None:
    a, _ = apply_ordering(poisson2d(56, seed=11), "nd")
    kernel = KERNELS["sptrsv"]
    low = lower_triangle(a)
    g = kernel.dag(low)
    cost = kernel.cost(low)
    memory = kernel.memory_model(low, g)
    print(f"system: n={g.n}, edges={g.n_edges}")

    # ---- cached inspector vs one-shot across a (p, eps) sweep ----------
    sweep = [(p, eps) for p in (4, 8, 16, 20) for eps in (0.1, 0.3, 0.5)]
    t0 = time.perf_counter()
    for p, eps in sweep:
        hdagg(g, cost, p, epsilon=eps)
    one_shot = time.perf_counter() - t0

    t0 = time.perf_counter()
    inspector = HDaggInspector(g, cost)
    for p, eps in sweep:
        inspector.schedule(p, eps)
    cached = time.perf_counter() - t0
    info = inspector.cache_info()
    print(
        f"sweep of {len(sweep)} schedules: one-shot {one_shot * 1e3:.0f} ms, "
        f"cached inspector {cached * 1e3:.0f} ms "
        f"({info['groupings']} groupings / {info['schedules']} schedules cached)"
    )

    # ---- expected-calls-driven scheduler selection ----------------------
    rows = []
    for n_exec in (1, 5, 50, 1000, 100_000):
        choice = choose_scheduler(g, cost, memory, INTEL20, n_exec)
        rows.append(
            [n_exec, choice.algorithm, choice.inspector_cycles, choice.makespan_cycles]
        )
    print()
    print(
        format_table(
            ["expected executions", "chosen", "inspector cycles", "per-run cycles"],
            rows,
            title="scheduler choice vs expected executions (Equation 2 economics)",
        )
    )

    serial = simulate(serial_schedule(g, cost), g, cost, memory, INTEL20.scaled(1))
    best = choose_scheduler(g, cost, memory, INTEL20, 100_000)
    print(
        f"\nat 100k executions the {best.algorithm} schedule runs "
        f"{serial.makespan_cycles / best.makespan_cycles:.2f}x faster than serial"
    )


if __name__ == "__main__":
    main()
