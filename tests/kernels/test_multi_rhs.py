"""Tests for the multi-right-hand-side triangular solve."""

import numpy as np
import pytest

from repro.graph import compute_wavefronts, dag_from_lower_triangular
from repro.kernels import sptrsv_levelwise, sptrsv_levelwise_multi, sptrsv_reference
from repro.sparse import lower_triangle


@pytest.fixture
def low(mesh):
    return lower_triangle(mesh)


def test_matches_per_column_solves(low, rng):
    B = rng.normal(size=(low.n_rows, 5))
    X = sptrsv_levelwise_multi(low, B)
    for k in range(5):
        np.testing.assert_allclose(
            X[:, k], sptrsv_reference(low, B[:, k]), rtol=1e-10
        )


def test_single_column_agrees_with_vector_path(low, rng):
    b = rng.normal(size=low.n_rows)
    X = sptrsv_levelwise_multi(low, b[:, None])
    np.testing.assert_allclose(X[:, 0], sptrsv_levelwise(low, b), rtol=1e-12)


def test_accepts_precomputed_waves(low, rng):
    waves = compute_wavefronts(dag_from_lower_triangular(low))
    B = rng.normal(size=(low.n_rows, 3))
    np.testing.assert_allclose(
        sptrsv_levelwise_multi(low, B, waves),
        sptrsv_levelwise_multi(low, B),
        rtol=1e-12,
    )


def test_residuals_small(low, rng):
    B = rng.normal(size=(low.n_rows, 4))
    X = sptrsv_levelwise_multi(low, B)
    dense = low.to_dense()
    np.testing.assert_allclose(dense @ X, B, rtol=1e-9, atol=1e-10)


def test_shape_validation(low):
    with pytest.raises(ValueError):
        sptrsv_levelwise_multi(low, np.ones(low.n_rows))  # 1-D rejected
    with pytest.raises(ValueError):
        sptrsv_levelwise_multi(low, np.ones((3, 2)))


def test_wide_block(low, rng):
    B = rng.normal(size=(low.n_rows, 32))
    X = sptrsv_levelwise_multi(low, B)
    assert X.shape == B.shape
    np.testing.assert_allclose(low.to_dense() @ X, B, rtol=1e-9, atol=1e-10)
